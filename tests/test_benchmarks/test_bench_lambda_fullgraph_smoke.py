"""Tiny-scale smoke run of the full-graph materialization benchmark.

The full harness is a slow-marked test over a 120k-user streamed workload;
this keeps its plumbing — paired single/sharded ingest, the deployment-clock
slice executor, replay extrapolation, the bit-exactness comparisons inside
every section, the pool sweep through real forked workers, the shared gate
contract, JSON emission — covered by the fast tier.  The speedup and
work-reduction *values* at toy scale are noise (a 400-user graph is dense
enough that a 2-hop cone covers most of it), so those gates' pass/fail
outcome is deliberately not asserted here; the parity gates are bit-exact
at any scale and must hold.
"""

from __future__ import annotations

import importlib
import json
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

SECTIONS = (
    "fullgraph_sweep",
    "replay_baseline",
    "state_parity",
    "pool_sweep",
    "incremental_refresh",
)
GATES = (
    "covered_scale",
    "fullgraph_speedup",
    "replay_state_parity",
    "pool_sweep_parity",
    "incremental_work_reduction",
    "incremental_parity",
)

pytestmark = pytest.mark.sharding


def test_lambda_fullgraph_harness_smoke(tmp_path, monkeypatch, capsys):
    monkeypatch.syspath_prepend(str(BENCHMARKS_DIR))
    bench = importlib.import_module("bench_lambda_fullgraph")

    monkeypatch.setattr(bench, "N_USERS", 400)
    monkeypatch.setattr(bench, "N_EDGES", 2400)
    monkeypatch.setattr(bench, "CHUNK_EDGES", 1000)
    monkeypatch.setattr(bench, "REPLAY_SAMPLE", 64)
    monkeypatch.setattr(bench, "POOL_TARGETS", 48)
    monkeypatch.setattr(bench, "DELTA_EDGES", 2)
    result_path = tmp_path / "BENCH_lambda_fullgraph.json"

    result = bench.run_harness(result_path=result_path)
    capsys.readouterr()  # keep the harness banner out of the test output

    assert set(SECTIONS) <= set(result["sections"])
    sweep = result["sections"]["fullgraph_sweep"]
    assert sweep["covered_users"] == 400
    assert len(sweep["slice_s"]) == bench.POOL_WORKERS
    assert sweep["deploy_s"] <= sweep["single_process_s"]
    assert sweep["rows"] == 400

    # Bit-exactness is scale independent: every parity section must be
    # clean even at toy scale.
    parity = result["sections"]["state_parity"]
    assert parity["mismatched_arrays"] == []
    assert parity["parity"] == 1.0
    pool = result["sections"]["pool_sweep"]
    assert pool["workers"] == bench.POOL_WORKERS
    assert pool["sampled_graph_bitexact_across_shards"] is True
    assert pool["mismatched_arrays"] == []
    assert pool["parity"] == 1.0
    incremental = result["sections"]["incremental_refresh"]
    assert incremental["mismatched_arrays"] == []
    assert incremental["parity"] == 1.0
    assert 0 < incremental["rows_computed"] <= incremental["total_rows"]

    # The shared gate contract attached its verdicts and wrote the JSON.
    assert set(result["gates"]) == set(GATES)
    assert isinstance(result["gates_met"], bool)
    on_disk = json.loads(result_path.read_text())
    assert set(SECTIONS) <= set(on_disk["sections"])


def test_committed_lambda_fullgraph_result_meets_gates():
    """The committed BENCH_lambda_fullgraph.json was green when written."""
    committed = json.loads(
        (BENCHMARKS_DIR.parent / "BENCH_lambda_fullgraph.json").read_text()
    )
    assert committed["gates_met"] is True
    assert committed["sections"]["fullgraph_sweep"]["covered_users"] >= (
        committed["coverage_floor"]
    )
    for name, gate in committed["gates"].items():
        assert gate["value"] >= gate["minimum"], (name, gate)
