"""Tiny-scale smoke run of the parallel training benchmark harness.

The full harness is a slow-marked test; this keeps its plumbing — both
training phases, the bit-exactness parity verdicts, the deployment-clock
arithmetic, the shared gate contract, JSON emission — covered by the fast
tier.  Speedup *values* at toy scale are noise, so the perf gates'
pass/fail outcome is deliberately not asserted here (parity excepted:
bit-exactness is scale independent).
"""

from __future__ import annotations

import importlib
import json
from pathlib import Path

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

GATES = (
    "presample_epoch_speedup",
    "parallel_epoch_speedup_4w",
    "presample_parity",
    "parallel_parity",
)


def test_train_parallel_harness_smoke(tmp_path, monkeypatch, capsys):
    monkeypatch.syspath_prepend(str(BENCHMARKS_DIR))
    bench = importlib.import_module("bench_train_parallel")
    monkeypatch.setattr(bench, "N_NODES", 400)
    monkeypatch.setattr(bench, "AVG_DEGREE", 12)
    monkeypatch.setattr(bench, "EPOCHS", 1)
    monkeypatch.setattr(bench, "BATCH_A", 256)
    monkeypatch.setattr(bench, "BATCH_B", 64)
    monkeypatch.setattr(bench, "SYNC_B", 4)
    result_path = tmp_path / "BENCH_train_parallel.json"

    result = bench.run_harness(result_path=result_path)
    capsys.readouterr()  # keep the harness banner out of the test output

    # Both phases ran every configuration.
    assert set(result["presample_phase"]) == {
        "resample",
        "presample",
        "presample_prefetch",
    }
    assert set(result["parallel_phase"]) == {"0", "1", "2", "4"}
    for row in result["presample_phase"].values():
        assert row["best_epoch_s"] > 0.0
    for workers, row in result["parallel_phase"].items():
        assert row["best_deploy_s"] > 0.0
        if workers != "0":
            stages = row["stage_totals_s"]
            assert stages["workers_busy"] >= stages["workers_critical"] > 0.0

    # Bit-exactness holds at any scale.
    assert result["gates"]["presample_parity"]["value"] == 1.0
    assert result["gates"]["parallel_parity"]["value"] == 1.0

    # The shared gate contract attached its verdicts and wrote the JSON.
    assert set(result["gates"]) == set(GATES)
    assert isinstance(result["gates_met"], bool)
    on_disk = json.loads(result_path.read_text())
    assert set(on_disk["gates"]) == set(GATES)


def test_committed_train_parallel_result_meets_gates():
    """The committed BENCH_train_parallel.json was green when written."""
    committed = json.loads(
        (BENCHMARKS_DIR.parent / "BENCH_train_parallel.json").read_text()
    )
    assert committed["gates_met"] is True
    for name, gate in committed["gates"].items():
        assert gate["value"] >= gate["minimum"], (name, gate)
