"""Tiny-scale smoke run of the lambda serving benchmark harness.

The full harness is a slow-marked test; this keeps its plumbing — the
covered-request builder, the bit-exact parity and ``assert_all_traced``
asserts inside every section, the drift-replay re-baselining, the shared
gate contract, JSON emission — covered by the fast tier.  The work-ratio
and drift *values* at toy scale are noise, so the gates' pass/fail outcome
is deliberately not asserted here (parity excepted: bit-exactness is scale
independent).
"""

from __future__ import annotations

import importlib
import json
from pathlib import Path

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

SECTIONS = ("zero_delta_parity", "work_reduction", "drift_replay")
GATES = ("zero_delta_parity", "delta_path_work_reduction", "drift_margin")


def test_lambda_harness_smoke(tmp_path, monkeypatch, capsys):
    monkeypatch.syspath_prepend(str(BENCHMARKS_DIR))
    bench = importlib.import_module("bench_lambda")
    from repro.datagen import make_d1

    monkeypatch.setattr(bench, "d1_dataset", lambda: make_d1(scale=0.1, seed=0))
    monkeypatch.setattr(bench, "TRAIN_EPOCHS", 2)
    monkeypatch.setattr(bench, "N_REQUESTS", 8)
    monkeypatch.setattr(bench, "N_DRIFT_LOGS", 120)
    result_path = tmp_path / "BENCH_lambda.json"

    result = bench.run_harness(result_path=result_path)
    capsys.readouterr()  # keep the harness banner out of the test output

    # Every section ran and passed its internal asserts (tier/staleness
    # checks, assert_all_traced, zero-staleness bit-exactness — run_harness
    # would have raised otherwise).
    assert set(SECTIONS) <= set(result["sections"])
    parity = result["sections"]["zero_delta_parity"]
    assert parity["requests"] == 8
    assert parity["lambda_hits"] == 8
    assert parity["mismatches"] == 0
    assert parity["parity"] == 1.0  # bit-exactness holds at any scale
    work = result["sections"]["work_reduction"]
    assert work["fresh_sampled_nodes"] > 0
    assert work["lambda_fallthrough_nodes"] == 0  # zero-delta stream
    drift = result["sections"]["drift_replay"]
    assert drift["delta_edges"] > 0
    assert drift["stale_users"] > 0
    assert drift["max_drift"] >= 0.0

    # The shared gate contract attached its verdicts and wrote the JSON.
    assert set(result["gates"]) == set(GATES)
    assert isinstance(result["gates_met"], bool)
    on_disk = json.loads(result_path.read_text())
    assert set(SECTIONS) <= set(on_disk["sections"])


def test_committed_lambda_result_meets_gates():
    """The committed BENCH_lambda.json must have been green when written."""
    committed = json.loads((BENCHMARKS_DIR.parent / "BENCH_lambda.json").read_text())
    assert committed["gates_met"] is True
    for name, gate in committed["gates"].items():
        assert gate["value"] >= gate["minimum"], (name, gate)
