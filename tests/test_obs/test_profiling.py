"""TrainProfiler unit tests plus integration with the training loops."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, NullProfiler, TrainProfiler

pytestmark = pytest.mark.obs


class TestNullProfiler:
    def test_hooks_are_noops(self):
        profiler = NullProfiler()
        with profiler.epoch(0):
            with profiler.stage("forward"):
                pass
            profiler.count_batch(12)
            profiler.record_loss(0.5)
        # No state is accumulated anywhere.
        assert not hasattr(profiler, "epochs")

    def test_context_is_shared(self):
        profiler = NullProfiler()
        assert profiler.epoch(0) is profiler.stage("x")


class TestTrainProfiler:
    def test_epoch_records_profile(self):
        profiler = TrainProfiler()
        with profiler.epoch(0):
            with profiler.stage("forward"):
                pass
            with profiler.stage("forward"):
                pass
            with profiler.stage("backward"):
                pass
            profiler.count_batch(7)
            profiler.count_batch(5)
            profiler.record_loss(0.25)
        assert len(profiler.epochs) == 1
        profile = profiler.epochs[0]
        assert profile.epoch == 0
        assert profile.seconds >= 0.0
        assert profile.loss == 0.25
        assert profile.batches == 2
        assert profile.sampled_nodes == 12
        assert set(profile.stages) == {"forward", "backward"}

    def test_stage_outside_epoch_is_ignored(self):
        profiler = TrainProfiler()
        with profiler.stage("forward"):
            pass
        profiler.count_batch(3)
        profiler.record_loss(1.0)
        assert profiler.epochs == []

    def test_stage_totals_accumulate_across_epochs(self):
        profiler = TrainProfiler()
        for epoch in range(3):
            with profiler.epoch(epoch):
                with profiler.stage("forward"):
                    pass
        totals = profiler.stage_totals()
        assert set(totals) == {"forward"}
        assert totals["forward"] >= 0.0
        assert profiler.total_seconds() == pytest.approx(
            sum(p.seconds for p in profiler.epochs)
        )

    def test_registry_mirroring(self):
        registry = MetricsRegistry()
        profiler = TrainProfiler(registry=registry)
        for epoch in range(2):
            with profiler.epoch(epoch):
                profiler.count_batch(10)
        assert registry.counters["train.epochs"].as_int() == 2
        assert registry.counters["train.batches"].as_int() == 2
        assert registry.counters["train.sampled_nodes"].as_int() == 20
        assert registry.histograms["train.epoch_seconds"].count == 2

    def test_report_mentions_every_stage(self):
        profiler = TrainProfiler()
        with profiler.epoch(0):
            with profiler.stage("forward"):
                pass
            with profiler.stage("validation"):
                pass
        report = profiler.report()
        assert "epochs=1" in report
        assert "forward" in report
        assert "validation" in report


class TestTrainerIntegration:
    def test_train_node_classifier_fills_profiler(self):
        import numpy as np

        from repro import nn
        from repro.core.trainer import TrainConfig, train_node_classifier

        rng = np.random.default_rng(0)
        features = rng.normal(size=(40, 6)).astype(np.float64)
        labels = (features[:, 0] > 0).astype(np.float64)
        train_idx = np.arange(30)
        val_idx = np.arange(30, 40)

        model = nn.MLP(6, [8], 1, rng=np.random.default_rng(7))
        profiler = TrainProfiler(registry=MetricsRegistry())
        config = TrainConfig(epochs=3, min_epochs=1, patience=1)
        train_node_classifier(
            model,
            lambda x: model(x),
            features,
            labels,
            train_idx,
            val_idx,
            config=config,
            profiler=profiler,
        )
        assert 1 <= len(profiler.epochs) <= 3
        for profile in profiler.epochs:
            assert profile.batches >= 1
            assert np.isfinite(profile.loss)
            assert "forward" in profile.stages
            assert "backward" in profile.stages
            assert "step" in profile.stages
            assert "validation" in profile.stages
        registry = profiler.registry
        assert registry.counters["train.epochs"].as_int() == len(profiler.epochs)
        assert registry.histograms["train.epoch_seconds"].count == len(profiler.epochs)
