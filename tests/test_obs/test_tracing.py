"""Span/Tracer unit tests: lifecycle, deterministic ids, active-span stack."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.obs import (
    Span,
    TraceContext,
    Tracer,
    assert_all_traced,
    current_span,
    render_span_tree,
    use_span,
)

pytestmark = pytest.mark.obs


class TestSpanLifecycle:
    def test_finish_sets_duration_and_end(self):
        span = Span(name="s", trace_id="t1", span_id="t1.0", parent_id=None, start=10.0)
        assert not span.closed
        span.finish(2.5)
        assert span.closed
        assert span.duration == 2.5
        assert span.end == 12.5

    def test_double_finish_raises(self):
        span = Span(name="s", trace_id="t1", span_id="t1.0", parent_id=None, start=0.0)
        span.finish(1.0)
        with pytest.raises(RuntimeError):
            span.finish(1.0)

    def test_negative_duration_rejected(self):
        span = Span(name="s", trace_id="t1", span_id="t1.0", parent_id=None, start=0.0)
        with pytest.raises(ValueError):
            span.finish(-0.1)

    def test_child_ids_are_deterministic(self):
        root = Span(name="r", trace_id="t1", span_id="t1.0", parent_id=None, start=0.0)
        a = root.child("a", at=0.0)
        b = root.child("b", at=1.0)
        assert a.span_id == "t1.0.1"
        assert b.span_id == "t1.0.2"
        assert a.parent_id == root.span_id
        assert a.trace_id == root.trace_id

    def test_annotate_incr_and_events(self):
        span = Span(name="s", trace_id="t1", span_id="t1.0", parent_id=None, start=0.0)
        span.annotate("k", "v").incr("ops").incr("ops", 2)
        span.add_event("fault.crash", at=5.0, component="cache")
        assert span.attributes["k"] == "v"
        assert span.attributes["ops"] == 3
        assert span.events == [{"name": "fault.crash", "at": 5.0, "component": "cache"}]

    def test_iter_depth_first_and_find(self):
        root = Span(name="r", trace_id="t1", span_id="t1.0", parent_id=None, start=0.0)
        a = root.child("a", at=0.0)
        a.child("leaf", at=0.0)
        root.child("b", at=1.0)
        names = [s.name for s in root.iter()]
        assert names == ["r", "a", "leaf", "b"]
        assert root.find("leaf") is not None
        assert root.find("missing") is None

    def test_annotate_tree_reaches_every_descendant(self):
        root = Span(name="r", trace_id="t1", span_id="t1.0", parent_id=None, start=0.0)
        root.child("a", at=0.0).child("leaf", at=0.0)
        root.annotate_tree("degradation_reason", "over_budget")
        assert all(
            s.attributes["degradation_reason"] == "over_budget" for s in root.iter()
        )

    def test_context_propagation(self):
        span = Span(name="s", trace_id="t9", span_id="t9.0", parent_id=None, start=0.0)
        ctx = span.context()
        assert ctx == TraceContext(trace_id="t9", span_id="t9.0")


class TestTracer:
    def test_fresh_trace_ids_are_sequential(self):
        tracer = Tracer()
        r1 = tracer.start_trace("request", at=0.0)
        r2 = tracer.start_trace("request", at=1.0)
        assert r1.trace_id == "t00000001"
        assert r2.trace_id == "t00000002"
        assert r1.span_id == "t00000001.0"
        assert r1.parent_id is None

    def test_parent_context_joins_trace(self):
        tracer = Tracer()
        upstream = tracer.start_trace("request", at=0.0)
        joined = tracer.start_trace("request", at=1.0, parent=upstream.context())
        assert joined.trace_id == upstream.trace_id
        assert joined.parent_id == upstream.span_id

    def test_finish_trace_retains_and_counts(self):
        tracer = Tracer()
        root = tracer.start_trace("request", at=0.0)
        assert tracer.open_traces() == 1
        tracer.finish_trace(root, 0.5)
        assert tracer.open_traces() == 0
        assert tracer.traces == [root]

    def test_max_traces_evicts_oldest(self):
        tracer = Tracer(max_traces=2)
        roots = [tracer.start_trace("request", at=float(i)) for i in range(3)]
        for root in roots:
            tracer.finish_trace(root, 0.1)
        assert tracer.traces == roots[1:]

    def test_max_traces_validation(self):
        with pytest.raises(ValueError):
            Tracer(max_traces=0)

    def test_start_trace_attributes(self):
        root = Tracer().start_trace("request", at=0.0, uid=7, txn_id=3)
        assert root.attributes == {"uid": 7, "txn_id": 3}


class TestActiveSpanStack:
    def test_no_active_span_by_default(self):
        assert current_span() is None

    def test_use_span_nesting(self):
        outer = Span(name="o", trace_id="t1", span_id="t1.0", parent_id=None, start=0.0)
        inner = outer.child("i", at=0.0)
        with use_span(outer):
            assert current_span() is outer
            with use_span(inner):
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_use_span_pops_on_exception(self):
        span = Span(name="s", trace_id="t1", span_id="t1.0", parent_id=None, start=0.0)
        with pytest.raises(RuntimeError):
            with use_span(span):
                raise RuntimeError("boom")
        assert current_span() is None


class TestRenderAndInvariants:
    def test_render_span_tree_shows_names_and_durations(self):
        root = Span(name="request", trace_id="t1", span_id="t1.0", parent_id=None, start=0.0)
        child = root.child("bn_sample", at=0.0)
        child.finish(0.087)
        root.finish(0.1)
        text = render_span_tree(root)
        assert "request" in text
        assert "bn_sample" in text
        assert "87.00 ms" in text

    def test_assert_all_traced_accepts_closed_roots(self):
        root = Span(name="r", trace_id="t1", span_id="t1.0", parent_id=None, start=0.0)
        root.finish(0.1)
        assert_all_traced([SimpleNamespace(txn_id=1, span=root)])

    def test_assert_all_traced_rejects_missing_span(self):
        with pytest.raises(AssertionError, match="closed root span"):
            assert_all_traced([SimpleNamespace(txn_id=1, span=None)])

    def test_assert_all_traced_rejects_open_span(self):
        root = Span(name="r", trace_id="t1", span_id="t1.0", parent_id=None, start=0.0)
        with pytest.raises(AssertionError):
            assert_all_traced([SimpleNamespace(txn_id=2, span=root)])
