"""Unit tests for the observability subsystem (repro.obs)."""
