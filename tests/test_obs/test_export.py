"""JSONL exporter round-trip tests and span-derived latency-table checks."""

from __future__ import annotations

import pytest

from repro.obs import (
    Tracer,
    latency_table_from_spans,
    load_spans_jsonl,
    rebuild_trees,
    span_to_dict,
    write_spans_jsonl,
)

pytestmark = pytest.mark.obs


def make_trace(tracer, durations):
    """One request trace with the three pipeline stages plus a fallback."""
    sampling, features, prediction, fallback = durations
    root = tracer.start_trace("request", at=0.0, uid=1)
    at = 0.0
    for name, seconds in (
        ("bn_sample", sampling),
        ("feature_fetch", features),
        ("inference", prediction),
        ("fallback", fallback),
    ):
        span = root.child(name, at=at)
        span.incr("ops", 2)
        span.add_event("fault.latency", at=at, component=name)
        span.finish(seconds)
        at += seconds
    tracer.finish_trace(root, at)
    return root


class TestRoundTrip:
    def test_write_load_rebuild_is_lossless(self, tmp_path):
        tracer = Tracer()
        # Values chosen to be awkward in binary float.
        root = make_trace(tracer, (0.1, 0.2, 0.30000000000000004, 1e-17))
        path = tmp_path / "trace.jsonl"
        assert write_spans_jsonl([root], path) == 5

        rows = load_spans_jsonl(path)
        assert len(rows) == 5
        trees = rebuild_trees(rows)
        assert len(trees) == 1

        original = [span_to_dict(s) for s in root.iter()]
        rebuilt = [{k: v for k, v in node.items() if k != "children"} for node in _dfs(trees[0])]
        assert rebuilt == original

    def test_floats_survive_exactly(self, tmp_path):
        tracer = Tracer()
        odd = 0.1 + 0.2  # 0.30000000000000004
        root = tracer.start_trace("request", at=odd)
        root.finish(odd)
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl([root], path)
        (row,) = load_spans_jsonl(path)
        assert row["start"] == odd
        assert row["duration"] == odd
        assert row["end"] == root.end

    def test_rebuild_preserves_depth_first_child_order(self, tmp_path):
        tracer = Tracer()
        root = make_trace(tracer, (0.1, 0.2, 0.3, 0.0))
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl([root], path)
        (tree,) = rebuild_trees(load_spans_jsonl(path))
        names = [child["name"] for child in tree["children"]]
        assert names == ["bn_sample", "feature_fetch", "inference", "fallback"]

    def test_multiple_traces_keep_file_order(self, tmp_path):
        tracer = Tracer()
        roots = [make_trace(tracer, (0.1, 0.2, 0.3, 0.0)) for _ in range(3)]
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(roots, path)
        trees = rebuild_trees(load_spans_jsonl(path))
        assert [t["trace_id"] for t in trees] == [r.trace_id for r in roots]


class TestLatencyTable:
    def test_table_sums_stage_durations(self):
        tracer = Tracer()
        root = make_trace(tracer, (0.1, 0.2, 0.3, 0.05))
        (row,) = latency_table_from_spans(_as_trees([root]))
        sampling, features, prediction, total = row
        assert sampling == 0.1
        assert features == 0.2
        assert prediction == 0.3 + 0.05
        assert total == sampling + features + prediction

    def test_fallback_folds_into_prediction_slot(self):
        tracer = Tracer()
        root = make_trace(tracer, (0.0, 0.0, 0.2, 0.7))
        (row,) = latency_table_from_spans(_as_trees([root]))
        assert row[2] == pytest.approx(0.9)

    def test_unknown_span_names_are_ignored(self):
        tracer = Tracer()
        root = tracer.start_trace("request", at=0.0)
        child = root.child("custom_stage", at=0.0)
        child.finish(5.0)
        tracer.finish_trace(root, 5.0)
        (row,) = latency_table_from_spans(_as_trees([root]))
        assert row == (0.0, 0.0, 0.0, 0.0)


def _as_trees(roots):
    """Flatten live spans to row dicts and rebuild, mimicking a file trip."""
    rows = [span_to_dict(s) for root in roots for s in root.iter()]
    return rebuild_trees(rows)


def _dfs(node):
    yield node
    for child in node["children"]:
        yield from _dfs(child)
