"""MetricsRegistry unit tests: instrument semantics and registry invariants."""

from __future__ import annotations

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry

pytestmark = pytest.mark.obs


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.as_int() == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.set(-1.0)
        assert gauge.value == -1.0


class TestHistogram:
    def test_observe_tracks_exact_count_and_total(self):
        hist = Histogram()
        for value in (0.1, 0.2, 0.3):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(0.6)
        assert hist.mean == pytest.approx(0.2)

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            Histogram().observe(-0.5)

    def test_percentile_over_samples(self):
        hist = Histogram()
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert hist.percentile(99) == pytest.approx(99.0, abs=1.0)

    def test_empty_histogram_defaults(self):
        hist = Histogram()
        assert hist.percentile(95) == 0.0
        assert hist.mean == 0.0

    def test_reservoir_caps_samples_but_not_count(self):
        hist = Histogram(max_samples=10)
        for value in range(25):
            hist.observe(float(value))
        assert hist.count == 25
        assert hist.total == pytest.approx(sum(range(25)))

    def test_max_samples_validation(self):
        with pytest.raises(ValueError):
            Histogram(max_samples=0)


class TestMetricsRegistry:
    def test_create_on_first_use_then_reuse(self):
        registry = MetricsRegistry()
        first = registry.counter("turbo.requests")
        second = registry.counter("turbo.requests")
        assert first is second

    def test_kind_mixing_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_contains_all_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("b").set(1.5)
        registry.histogram("c").observe(0.25)
        snap = registry.snapshot()
        assert snap["counters"]["a"] == 2
        assert snap["gauges"]["b"] == 1.5
        assert snap["histograms"]["c"]["count"] == 1

    def test_render_is_sorted_and_readable(self):
        registry = MetricsRegistry()
        registry.counter("z.late").inc()
        registry.counter("a.early").inc(3)
        text = registry.render()
        assert text.index("a.early") < text.index("z.late")
        assert "3" in text

    def test_histogram_factory_hook(self):
        class Custom(Histogram):
            pass

        registry = MetricsRegistry()
        hist = registry.histogram("h", factory=Custom)
        assert isinstance(hist, Custom)
        assert registry.histogram("h") is hist
