"""Module / layer tests: parameter discovery, modes, forward shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import MLP, Dropout, Linear, Module, ModuleList, Sequential, Tensor


class TestLinear:
    def test_forward_shape_and_affine(self, rng):
        layer = Linear(4, 3, rng)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_parameters_found(self, rng):
        layer = Linear(4, 3, rng)
        params = layer.parameters()
        assert len(params) == 2
        assert {p.shape for p in params} == {(4, 3), (3,)}


class TestModuleMechanics:
    def test_nested_parameter_discovery(self, rng):
        model = Sequential(Linear(4, 8, rng), Linear(8, 2, rng))
        assert len(model.parameters()) == 4

    def test_parameters_in_dict_and_list_attrs(self, rng):
        class Custom(Module):
            def __init__(self):
                super().__init__()
                self.items = [Linear(2, 2, rng)]
                self.table = {"a": Linear(2, 2, rng)}

        assert len(Custom().parameters()) == 4

    def test_train_eval_propagates(self, rng):
        model = Sequential(Dropout(0.5, rng), Linear(2, 2, rng))
        model.eval()
        assert not model.steps[0].training
        model.train()
        assert model.steps[0].training

    def test_zero_grad_clears(self, rng):
        layer = Linear(3, 1, rng)
        layer(Tensor(np.ones((2, 3)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self, rng):
        a = MLP(4, [8], 1, rng)
        b = MLP(4, [8], 1, np.random.default_rng(999))
        state = a.state_dict()
        b.load_state_dict(state)
        x = Tensor(np.ones((3, 4)))
        np.testing.assert_allclose(a(x).numpy(), b(x).numpy())

    def test_load_state_dict_shape_mismatch(self, rng):
        a = MLP(4, [8], 1, rng)
        b = MLP(4, [16], 1, rng)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_num_parameters(self, rng):
        layer = Linear(4, 3, rng)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_modulelist_iteration(self, rng):
        ml = ModuleList([Linear(2, 2, rng)])
        ml.append(Linear(2, 2, rng))
        assert len(ml) == 2
        assert isinstance(ml[1], Linear)


class TestDropout:
    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)

    def test_eval_is_identity(self, rng):
        drop = Dropout(0.9, rng)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(drop(x).numpy(), x.numpy())

    def test_train_scales_survivors(self, rng):
        drop = Dropout(0.5, rng)
        out = drop(Tensor(np.ones((100, 100)))).numpy()
        surviving = out[out > 0]
        np.testing.assert_allclose(surviving, 2.0)
        # Roughly half survive.
        assert 0.35 < (out > 0).mean() < 0.65


class TestMLP:
    def test_output_shape(self, rng):
        model = MLP(6, [16, 8], 2, rng)
        assert model(Tensor(np.zeros((5, 6)))).shape == (5, 2)

    def test_learns_xor_like_separation(self, rng):
        # A linearly-inseparable problem distinguishes MLP from Linear.
        x = rng.normal(size=(400, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(float)
        from repro.nn import Adam, bce_with_logits

        model = MLP(2, [16, 16], 1, rng)
        optimizer = Adam(model.parameters(), lr=0.02)
        for _ in range(300):
            optimizer.zero_grad()
            loss = bce_with_logits(model(Tensor(x)).flatten(), y)
            loss.backward()
            optimizer.step()
        predictions = model(Tensor(x)).flatten().numpy() > 0
        assert (predictions == y.astype(bool)).mean() > 0.9
