"""Sparse matmul op tests."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import Tensor, spmm


class TestSpmm:
    def test_forward_matches_dense(self, rng):
        matrix = sp.random(6, 5, density=0.4, random_state=0, format="csr")
        dense = rng.normal(size=(5, 3))
        out = spmm(matrix, Tensor(dense))
        np.testing.assert_allclose(out.numpy(), matrix.toarray() @ dense)

    def test_gradient_is_transpose_product(self, rng):
        matrix = sp.random(6, 5, density=0.4, random_state=1, format="csr")
        dense = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        spmm(matrix, dense).sum().backward()
        expected = matrix.T.toarray() @ np.ones((6, 2))
        np.testing.assert_allclose(dense.grad, expected)

    def test_rejects_dense_matrix(self):
        with pytest.raises(TypeError):
            spmm(np.ones((2, 2)), Tensor(np.ones((2, 2))))

    def test_composes_with_autograd(self, rng):
        matrix = sp.random(4, 4, density=0.5, random_state=2, format="csr")
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        loss = spmm(matrix, x.tanh()).relu().sum()
        loss.backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()

    def test_empty_matrix_gives_zero(self):
        matrix = sp.csr_matrix((3, 3))
        out = spmm(matrix, Tensor(np.ones((3, 2))))
        np.testing.assert_allclose(out.numpy(), 0.0)


class TestPreparedAggregator:
    def make(self, seed: int = 0) -> "sp.csr_matrix":
        return sp.random(6, 6, density=0.4, random_state=seed, format="csr")

    def test_matches_raw_csr_forward_and_backward(self, rng):
        from repro.nn import PreparedAggregator

        matrix = self.make()
        dense = rng.normal(size=(6, 3))
        x_raw = Tensor(dense, requires_grad=True)
        x_prep = Tensor(dense, requires_grad=True)
        out_raw = spmm(matrix, x_raw)
        out_prep = spmm(PreparedAggregator(matrix), x_prep)
        np.testing.assert_allclose(out_prep.numpy(), out_raw.numpy())
        out_raw.sum().backward()
        out_prep.sum().backward()
        np.testing.assert_allclose(x_prep.grad, x_raw.grad)

    def test_rejects_dense_input(self):
        from repro.nn import PreparedAggregator

        with pytest.raises(TypeError):
            PreparedAggregator(np.ones((3, 3)))

    def test_as_csr_unwraps(self):
        from repro.nn import PreparedAggregator, as_csr

        matrix = self.make()
        prepared = PreparedAggregator(matrix)
        assert as_csr(prepared) is prepared.matrix
        assert (as_csr(matrix) != matrix).nnz == 0


class TestTransposeAccounting:
    def make(self, seed: int = 0) -> "sp.csr_matrix":
        return sp.random(8, 8, density=0.3, random_state=seed, format="csr")

    def test_forward_only_never_converts(self, rng):
        from repro import nn
        from repro.nn import PreparedAggregator

        aggregator = PreparedAggregator(self.make())
        nn.reset_transpose_conversion_count()
        with nn.no_grad():
            for _ in range(4):
                spmm(aggregator, Tensor(rng.normal(size=(8, 2))))
        assert nn.transpose_conversion_count() == 0
        nn.reset_transpose_conversion_count()

    def test_prepared_converts_at_most_once_across_steps(self, rng):
        from repro import nn
        from repro.nn import PreparedAggregator

        aggregators = [PreparedAggregator(self.make(s)) for s in (0, 1, 2)]
        nn.reset_transpose_conversion_count()
        for _ in range(5):  # five "training steps" reusing the aggregators
            x = Tensor(rng.normal(size=(8, 2)), requires_grad=True)
            loss = sum(
                (spmm(a, x).sum() for a in aggregators), start=Tensor(np.zeros(()))
            )
            loss.backward()
        assert nn.transpose_conversion_count() <= len(aggregators)
        nn.reset_transpose_conversion_count()

    def test_raw_csr_converts_per_backward_call(self, rng):
        from repro import nn

        matrix = self.make()
        nn.reset_transpose_conversion_count()
        for _ in range(3):
            x = Tensor(rng.normal(size=(8, 2)), requires_grad=True)
            spmm(matrix, x).sum().backward()
        assert nn.transpose_conversion_count() == 3
        nn.reset_transpose_conversion_count()
