"""Sparse matmul op tests."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import Tensor, spmm


class TestSpmm:
    def test_forward_matches_dense(self, rng):
        matrix = sp.random(6, 5, density=0.4, random_state=0, format="csr")
        dense = rng.normal(size=(5, 3))
        out = spmm(matrix, Tensor(dense))
        np.testing.assert_allclose(out.numpy(), matrix.toarray() @ dense)

    def test_gradient_is_transpose_product(self, rng):
        matrix = sp.random(6, 5, density=0.4, random_state=1, format="csr")
        dense = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        spmm(matrix, dense).sum().backward()
        expected = matrix.T.toarray() @ np.ones((6, 2))
        np.testing.assert_allclose(dense.grad, expected)

    def test_rejects_dense_matrix(self):
        with pytest.raises(TypeError):
            spmm(np.ones((2, 2)), Tensor(np.ones((2, 2))))

    def test_composes_with_autograd(self, rng):
        matrix = sp.random(4, 4, density=0.5, random_state=2, format="csr")
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        loss = spmm(matrix, x.tanh()).relu().sum()
        loss.backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()

    def test_empty_matrix_gives_zero(self):
        matrix = sp.csr_matrix((3, 3))
        out = spmm(matrix, Tensor(np.ones((3, 2))))
        np.testing.assert_allclose(out.numpy(), 0.0)
