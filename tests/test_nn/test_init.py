"""Weight-initialization tests."""

from __future__ import annotations

import numpy as np

from repro.nn import kaiming_uniform, normal, xavier_normal, xavier_uniform, zeros


class TestInitializers:
    def test_xavier_uniform_bounds(self, rng):
        w = xavier_uniform((100, 50), rng)
        limit = np.sqrt(6.0 / 150)
        assert w.requires_grad
        assert np.abs(w.numpy()).max() <= limit

    def test_xavier_normal_scale(self, rng):
        w = xavier_normal((200, 100), rng)
        expected_std = np.sqrt(2.0 / 300)
        assert 0.8 * expected_std < w.numpy().std() < 1.2 * expected_std

    def test_kaiming_uniform_bounds(self, rng):
        w = kaiming_uniform((64, 32), rng)
        limit = np.sqrt(6.0 / 64)
        assert np.abs(w.numpy()).max() <= limit

    def test_zeros(self):
        w = zeros((5,))
        assert w.requires_grad
        np.testing.assert_allclose(w.numpy(), 0.0)

    def test_normal_std(self, rng):
        w = normal((10_000,), rng, std=0.05)
        assert 0.04 < w.numpy().std() < 0.06

    def test_vector_fans(self, rng):
        # 1-D shapes must not crash the fan computation.
        w = xavier_uniform((7,), rng)
        assert w.shape == (7,)

    def test_gain_scales_limit(self, rng):
        narrow = xavier_uniform((50, 50), np.random.default_rng(0), gain=1.0)
        wide = xavier_uniform((50, 50), np.random.default_rng(0), gain=2.0)
        np.testing.assert_allclose(2 * narrow.numpy(), wide.numpy())
