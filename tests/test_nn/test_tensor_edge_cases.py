"""Additional autograd edge-case tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, concat, stack


class TestShapeEdgeCases:
    def test_stack_middle_axis(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.zeros((2, 3)), requires_grad=True)
        out = stack([a, b], axis=1)
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_concat_axis0(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((4, 3)), requires_grad=True)
        out = concat([a, b], axis=0)
        assert out.shape == (6, 3)
        (out * 3.0).sum().backward()
        np.testing.assert_allclose(b.grad, np.full((4, 3), 3.0))

    def test_reshape_minus_one(self):
        t = Tensor(np.arange(12.0), requires_grad=True)
        out = t.reshape(3, -1)
        assert out.shape == (3, 4)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones(12))

    def test_transpose_3d_axes(self):
        t = Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
        out = t.transpose(2, 0, 1)
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3, 4)))

    def test_flatten(self):
        t = Tensor(np.ones((2, 5)))
        assert t.flatten().shape == (10,)

    def test_len_and_size(self):
        t = Tensor(np.ones((3, 4)))
        assert len(t) == 3
        assert t.size == 12
        assert t.ndim == 2

    def test_repr_mentions_shape(self):
        text = repr(Tensor(np.ones((2, 2)), requires_grad=True))
        assert "(2, 2)" in text


class TestNumericalEdgeCases:
    def test_sigmoid_extreme_values_finite(self):
        t = Tensor(np.array([-1e6, 1e6]))
        out = t.sigmoid().numpy()
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_exp_clipped_no_overflow(self):
        out = Tensor(np.array([1e4])).exp().numpy()
        assert np.isfinite(out).all()

    def test_softmax_single_element(self):
        out = Tensor(np.array([[5.0]])).softmax(axis=1).numpy()
        np.testing.assert_allclose(out, [[1.0]])

    def test_mean_over_all_axes(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full((2, 3), 1 / 6))

    def test_sum_tuple_axis(self):
        t = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = t.sum(axis=(0, 2))
        assert out.shape == (3,)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3, 4)))

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_scalar_arithmetic_chain(self):
        t = Tensor([2.0], requires_grad=True)
        y = (3.0 * t - 1.0) / 5.0 + 2.0
        y.sum().backward()
        np.testing.assert_allclose(t.grad, [0.6])
