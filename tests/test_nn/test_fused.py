"""Fused kernels (`addmm`, `spmm_affine`) pinned bit-exact vs unfused chains.

The parallel training engine relies on the fused ops being *bit-identical*
to the node chains they replace: the engine's gradient-parity guarantees
(same bits regardless of worker count) assume every process runs the same
op sequence.  These tests pin forward and backward bits against the
unfused graphs, with and without an active ``row_blocks`` context.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro import nn
from repro.nn import Linear, PreparedAggregator, Tensor, addmm, spmm, spmm_affine


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def _random_csr(rng, rows, cols, density=0.3):
    mask = rng.random((rows, cols)) < density
    data = np.where(mask, rng.normal(size=(rows, cols)), 0.0)
    return sp.csr_matrix(data)


class TestAddmm:
    def test_forward_and_backward_bits_match_unfused(self, rng):
        x_data = rng.normal(size=(7, 5))
        w_data = rng.normal(size=(5, 3))
        b_data = rng.normal(size=(3,))
        g = rng.normal(size=(7, 3))

        x1, w1, b1 = (Tensor(d.copy(), requires_grad=True) for d in (x_data, w_data, b_data))
        fused = addmm(x1, w1, b1)
        fused.backward(g.copy())

        x2, w2, b2 = (Tensor(d.copy(), requires_grad=True) for d in (x_data, w_data, b_data))
        unfused = x2 @ w2 + b2
        unfused.backward(g.copy())

        assert np.array_equal(fused.data, unfused.data)
        assert np.array_equal(x1.grad, x2.grad)
        assert np.array_equal(w1.grad, w2.grad)
        assert np.array_equal(b1.grad, b2.grad)

    def test_batched_input_bits_match_unfused(self, rng):
        x_data = rng.normal(size=(2, 4, 5))
        w_data = rng.normal(size=(5, 3))
        b_data = rng.normal(size=(3,))
        g = rng.normal(size=(2, 4, 3))

        x1, w1, b1 = (Tensor(d.copy(), requires_grad=True) for d in (x_data, w_data, b_data))
        fused = addmm(x1, w1, b1)
        fused.backward(g.copy())

        x2, w2, b2 = (Tensor(d.copy(), requires_grad=True) for d in (x_data, w_data, b_data))
        unfused = x2 @ w2 + b2
        unfused.backward(g.copy())

        assert np.array_equal(fused.data, unfused.data)
        assert np.array_equal(x1.grad, x2.grad)
        assert np.array_equal(w1.grad, w2.grad)
        assert np.array_equal(b1.grad, b2.grad)

    def test_bits_match_under_row_blocks(self, rng):
        sizes = [3, 1, 6]
        boundaries = np.concatenate(([0], np.cumsum(sizes)))
        x_data = rng.normal(size=(int(boundaries[-1]), 5))
        w_data = rng.normal(size=(5, 2))
        b_data = rng.normal(size=(2,))
        g = rng.normal(size=(int(boundaries[-1]), 2))

        with nn.row_blocks(boundaries):
            x1, w1, b1 = (
                Tensor(d.copy(), requires_grad=True) for d in (x_data, w_data, b_data)
            )
            fused = addmm(x1, w1, b1)
            fused.backward(g.copy())

            x2, w2, b2 = (
                Tensor(d.copy(), requires_grad=True) for d in (x_data, w_data, b_data)
            )
            unfused = x2 @ w2 + b2
            unfused.backward(g.copy())

        assert np.array_equal(fused.data, unfused.data)
        assert np.array_equal(x1.grad, x2.grad)
        assert np.array_equal(w1.grad, w2.grad)
        assert np.array_equal(b1.grad, b2.grad)

    def test_rejects_one_dimensional_input(self, rng):
        with pytest.raises(ValueError):
            addmm(
                Tensor(rng.normal(size=(5,))),
                Tensor(rng.normal(size=(5, 3))),
                Tensor(rng.normal(size=(3,))),
            )


class TestLinearUsesAddmm:
    def test_linear_forward_bits_unchanged(self, rng):
        layer = Linear(5, 3, rng=np.random.default_rng(1))
        x_data = rng.normal(size=(6, 5))
        g = rng.normal(size=(6, 3))

        x1 = Tensor(x_data.copy(), requires_grad=True)
        out = layer(x1)
        out.backward(g.copy())
        w_grad, b_grad, x_grad = layer.weight.grad, layer.bias.grad, x1.grad
        layer.weight.grad = None
        layer.bias.grad = None

        x2 = Tensor(x_data.copy(), requires_grad=True)
        unfused = x2 @ layer.weight + layer.bias
        unfused.backward(g.copy())

        assert np.array_equal(out.data, unfused.data)
        assert np.array_equal(x_grad, x2.grad)
        assert np.array_equal(w_grad, layer.weight.grad)
        assert np.array_equal(b_grad, layer.bias.grad)


class TestSpmmAffine:
    @pytest.mark.parametrize("use_bias", [True, False])
    @pytest.mark.parametrize("prepared", [True, False])
    def test_bits_match_unfused_chain(self, rng, use_bias, prepared):
        csr = _random_csr(rng, 8, 8)
        h_data = rng.normal(size=(8, 5))
        w_data = rng.normal(size=(5, 3))
        b_data = rng.normal(size=(3,)) if use_bias else None
        g = rng.normal(size=(8, 3))
        matrix = PreparedAggregator(csr) if prepared else csr
        matrix2 = PreparedAggregator(csr) if prepared else csr

        h1 = Tensor(h_data.copy(), requires_grad=True)
        w1 = Tensor(w_data.copy(), requires_grad=True)
        b1 = Tensor(b_data.copy(), requires_grad=True) if use_bias else None
        fused = spmm_affine(matrix, h1, w1, b1)
        fused.backward(g.copy())

        h2 = Tensor(h_data.copy(), requires_grad=True)
        w2 = Tensor(w_data.copy(), requires_grad=True)
        unfused = spmm(matrix2, h2) @ w2
        if use_bias:
            b2 = Tensor(b_data.copy(), requires_grad=True)
            unfused = unfused + b2
        unfused.backward(g.copy())

        assert np.array_equal(fused.data, unfused.data)
        assert np.array_equal(h1.grad, h2.grad)
        assert np.array_equal(w1.grad, w2.grad)
        if use_bias:
            assert np.array_equal(b1.grad, b2.grad)

    def test_prepared_aggregator_transpose_memoized(self, rng):
        csr = _random_csr(rng, 6, 6)
        agg = PreparedAggregator(csr)
        h = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        nn.reset_transpose_conversion_count()
        for _ in range(3):
            spmm_affine(agg, h, w).sum().backward()
        assert nn.transpose_conversion_count() == 1

    def test_rejects_dense_matrix(self, rng):
        with pytest.raises(TypeError):
            spmm_affine(
                rng.normal(size=(4, 4)),
                Tensor(rng.normal(size=(4, 3))),
                Tensor(rng.normal(size=(3, 2))),
            )

    def test_rejects_non_2d_operands(self, rng):
        csr = _random_csr(rng, 4, 4)
        with pytest.raises(ValueError):
            spmm_affine(
                csr,
                Tensor(rng.normal(size=(4,))),
                Tensor(rng.normal(size=(4, 2))),
            )
