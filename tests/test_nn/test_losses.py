"""Loss function tests: values, stability, gradients, weighting."""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor, bce_with_logits, hinge_loss, mse_loss


class TestBCEWithLogits:
    def test_matches_reference_formula(self):
        logits = np.array([0.2, -1.5, 3.0])
        targets = np.array([1.0, 0.0, 1.0])
        loss = bce_with_logits(Tensor(logits), targets).item()
        p = 1 / (1 + np.exp(-logits))
        reference = -np.mean(targets * np.log(p) + (1 - targets) * np.log(1 - p))
        np.testing.assert_allclose(loss, reference, rtol=1e-9)

    def test_extreme_logits_stable(self):
        loss = bce_with_logits(Tensor([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6

    def test_pos_weight_shifts_gradient(self):
        logits = Tensor(np.zeros(2), requires_grad=True)
        targets = np.array([1.0, 0.0])
        bce_with_logits(logits, targets, pos_weight=5.0).backward()
        # Positive example's gradient magnitude is 5x the negative's.
        assert abs(logits.grad[0]) > 4.0 * abs(logits.grad[1])

    def test_perfect_prediction_near_zero(self):
        loss = bce_with_logits(Tensor([20.0, -20.0]), np.array([1.0, 0.0]))
        assert loss.item() < 1e-6


class TestHingeLoss:
    def test_correct_side_of_margin_is_zero(self):
        loss = hinge_loss(Tensor([2.0, -2.0]), np.array([1, 0]))
        assert loss.item() == 0.0

    def test_wrong_side_penalized(self):
        loss = hinge_loss(Tensor([-1.0]), np.array([1]))
        np.testing.assert_allclose(loss.item(), 2.0)

    def test_gradient_flows_only_in_margin(self):
        scores = Tensor([0.5, 5.0], requires_grad=True)
        hinge_loss(scores, np.array([1, 1])).backward()
        assert scores.grad[0] != 0.0
        assert scores.grad[1] == 0.0


class TestMSE:
    def test_zero_for_exact(self):
        assert mse_loss(Tensor([1.0, 2.0]), np.array([1.0, 2.0])).item() == 0.0

    def test_mean_of_squares(self):
        loss = mse_loss(Tensor([0.0, 0.0]), np.array([1.0, 3.0]))
        np.testing.assert_allclose(loss.item(), 5.0)
