"""Autograd engine tests: op semantics + gradient checks vs finite differences."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, as_tensor, concat, no_grad, segment_sum, stack, where


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x, dtype=np.float64)
    for index in np.ndindex(*x.shape):
        plus = x.copy()
        plus[index] += eps
        minus = x.copy()
        minus[index] -= eps
        grad[index] = (fn(plus) - fn(minus)) / (2 * eps)
    return grad


def check_grad(fn_tensor, x: np.ndarray, atol: float = 1e-6) -> None:
    t = Tensor(x, requires_grad=True)
    out = fn_tensor(t)
    out.backward()
    numeric = numerical_grad(lambda arr: fn_tensor(Tensor(arr)).item(), x)
    np.testing.assert_allclose(t.grad, numeric, atol=atol, rtol=1e-5)


class TestBasicOps:
    def test_add_and_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_broadcast_add_unbroadcasts_grad(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, [3.0, 3.0])

    def test_mul_grad(self):
        check_grad(lambda t: (t * t * 2.0).sum(), np.array([1.0, -2.0, 3.0]))

    def test_div_grad(self):
        check_grad(lambda t: (1.0 / (t + 5.0)).sum(), np.array([1.0, 2.0]))

    def test_pow_grad(self):
        check_grad(lambda t: (t**3).sum(), np.array([1.5, -0.5]))

    def test_rsub_and_neg(self):
        a = Tensor([2.0], requires_grad=True)
        (5.0 - a).backward()
        np.testing.assert_allclose(a.grad, [-1.0])

    def test_matmul_2d(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 4))
        check_grad(lambda t: (t @ Tensor(np.ones((4, 2)))).sum(), x)

    def test_matmul_vector_rhs_batched(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 4))
        v = np.arange(4.0)
        check_grad(lambda t: (t @ Tensor(v)).sum(), x)

    def test_matmul_vector_rhs_grad_to_vector(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(2, 3, 4))
        check_grad(lambda t: (Tensor(a) @ t).sum(), rng.normal(size=4))

    def test_matmul_vector_lhs(self):
        rng = np.random.default_rng(3)
        matrix = Tensor(rng.normal(size=(4, 3)))
        check_grad(lambda t: (t @ matrix).sum(), rng.normal(size=4))

    def test_scalar_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_without_grad_raises(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError):
            t.sum().backward()


class TestNonlinearities:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda t: t.relu().sum(),
            lambda t: t.tanh().sum(),
            lambda t: t.sigmoid().sum(),
            lambda t: t.exp().sum(),
            lambda t: t.leaky_relu(0.1).sum(),
            lambda t: t.abs().sum(),
        ],
    )
    def test_elementwise_grads(self, fn):
        x = np.array([[0.5, -1.2], [2.0, 0.3]])
        check_grad(fn, x)

    def test_log_grad(self):
        check_grad(lambda t: t.log().sum(), np.array([0.5, 1.5, 3.0]))

    def test_clip_grad_masks_outside(self):
        t = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_softmax_rows_sum_to_one(self):
        t = Tensor(np.random.default_rng(0).normal(size=(4, 5)))
        rows = t.softmax(axis=1).numpy().sum(axis=1)
        np.testing.assert_allclose(rows, np.ones(4))

    def test_softmax_grad(self):
        x = np.random.default_rng(1).normal(size=(3, 4))
        check_grad(lambda t: (t.softmax(axis=1) * Tensor(np.arange(4.0))).sum(), x)

    def test_log_softmax_grad(self):
        x = np.random.default_rng(2).normal(size=(3, 4))
        check_grad(lambda t: (t.log_softmax(axis=1) * Tensor(np.arange(4.0))).sum(), x)

    def test_softmax_is_shift_invariant(self):
        x = np.random.default_rng(3).normal(size=(2, 3))
        a = Tensor(x).softmax(axis=1).numpy()
        b = Tensor(x + 100.0).softmax(axis=1).numpy()
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        x = np.arange(6.0).reshape(2, 3)
        check_grad(lambda t: (t.sum(axis=1, keepdims=True) ** 2).sum(), x)

    def test_mean_axis(self):
        x = np.arange(6.0).reshape(2, 3)
        check_grad(lambda t: (t.mean(axis=0) ** 2).sum(), x)

    def test_max_grad_distributes_over_ties(self):
        t = Tensor([1.0, 3.0, 3.0], requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.0, 0.5, 0.5])

    def test_max_axis(self):
        x = np.array([[1.0, 5.0], [7.0, 2.0]])
        check_grad(lambda t: t.max(axis=1).sum(), x)

    def test_reshape_transpose_roundtrip(self):
        x = np.arange(12.0).reshape(3, 4)
        check_grad(lambda t: (t.reshape(4, 3).T * Tensor(np.ones((3, 4)))).sum(), x)

    def test_getitem_grad(self):
        t = Tensor(np.arange(5.0), requires_grad=True)
        t[1:4].sum().backward()
        np.testing.assert_allclose(t.grad, [0, 1, 1, 1, 0])

    def test_index_select_accumulates_repeats(self):
        t = Tensor(np.eye(3), requires_grad=True)
        t.index_select([0, 0, 2]).sum().backward()
        np.testing.assert_allclose(t.grad.sum(axis=1), [6.0, 0.0, 3.0])


class TestCombinators:
    def test_concat_routes_grads(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))

    def test_stack_routes_grads(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_segment_sum_forward_and_grad(self):
        v = Tensor(np.arange(8.0).reshape(4, 2), requires_grad=True)
        out = segment_sum(v, np.array([0, 1, 0, 1]), 2)
        np.testing.assert_allclose(out.numpy(), [[4.0, 6.0], [8.0, 10.0]])
        out.sum().backward()
        np.testing.assert_allclose(v.grad, np.ones((4, 2)))

    def test_where_selects_and_routes(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([10.0, 20.0], requires_grad=True)
        out = where(np.array([True, False]), a, b)
        np.testing.assert_allclose(out.numpy(), [1.0, 20.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestGraphMechanics:
    def test_no_grad_disables_recording(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad

    def test_grad_accumulates_across_backwards(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        (t * 3).sum().backward()
        np.testing.assert_allclose(t.grad, [5.0])

    def test_detach_cuts_graph(self):
        t = Tensor([2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.numpy() is t.numpy()

    def test_diamond_graph_grad(self):
        # y = (x*2) + (x*3): both paths must contribute.
        t = Tensor([1.0], requires_grad=True)
        y = t * 2.0 + t * 3.0
        y.sum().backward()
        np.testing.assert_allclose(t.grad, [5.0])

    def test_as_tensor_idempotent(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1, 2]), Tensor)


@settings(max_examples=25, deadline=None)
@given(
    x=hnp.arrays(
        np.float64,
        hnp.array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=4),
        elements=st.floats(-2.0, 2.0),
    )
)
def test_property_composite_gradcheck(x):
    """Random matrices: composite expression matches numerical gradients."""

    def fn(t: Tensor):
        return ((t @ t.T).tanh().sum(axis=1).sigmoid() + 0.5).log().sum()

    check_grad(fn, x, atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(
    x=hnp.arrays(
        np.float64,
        st.integers(2, 6).map(lambda n: (n,)),
        elements=st.floats(-30.0, 30.0),
    )
)
def test_property_softmax_simplex(x):
    probs = Tensor(x).softmax(axis=0).numpy()
    assert np.all(probs >= 0)
    assert abs(probs.sum() - 1.0) < 1e-9
