"""Row-blocked matmul: per-block GEMMs inside one packed traversal.

OpenBLAS GEMM is not row-stable — ``(vstack(A, B) @ W)[:len(A)]`` is not
bit-identical to ``A @ W`` in general — so the packed batch forward wraps
its traversal in ``nn.row_blocks(boundaries)``: every 2-D dense matmul whose
left operand spans the full packed row count is computed block by block,
reproducing the per-request bits, while everything else runs packed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


@pytest.fixture()
def blocks(rng):
    sizes = [3, 1, 8, 5]
    boundaries = np.concatenate(([0], np.cumsum(sizes)))
    parts = [rng.normal(size=(n, 6)) for n in sizes]
    return boundaries, parts


class TestRowBlocks:
    def test_blocked_matmul_matches_per_block_bits(self, rng, blocks):
        boundaries, parts = blocks
        weight = Tensor(rng.normal(size=(6, 4)))
        packed = Tensor(np.vstack(parts))
        with nn.row_blocks(boundaries):
            out = (packed @ weight).data
        for part, start, stop in zip(parts, boundaries[:-1], boundaries[1:]):
            np.testing.assert_array_equal(
                out[start:stop], (Tensor(part) @ weight).data
            )

    def test_matvec_blocked_too(self, rng, blocks):
        boundaries, parts = blocks
        vector = Tensor(rng.normal(size=6))
        packed = Tensor(np.vstack(parts))
        with nn.row_blocks(boundaries):
            out = (packed @ vector).data
        for part, start, stop in zip(parts, boundaries[:-1], boundaries[1:]):
            np.testing.assert_array_equal(
                out[start:stop], (Tensor(part) @ vector).data
            )

    def test_non_matching_shapes_pass_through(self, rng, blocks):
        """Only left operands spanning the packed row count are blocked —
        weight @ weight style products inside the context stay one GEMM."""
        boundaries, _parts = blocks
        a = Tensor(rng.normal(size=(6, 5)))
        b = Tensor(rng.normal(size=(5, 3)))
        plain = (a @ b).data
        with nn.row_blocks(boundaries):
            inside = (a @ b).data
        np.testing.assert_array_equal(inside, plain)

    def test_context_restores_previous_state(self, blocks):
        boundaries, _parts = blocks
        with nn.row_blocks(boundaries):
            inner = np.asarray([0, 2, 4])
            with nn.row_blocks(inner):
                pass
            # Outer boundaries restored after the inner context exits.
            from repro.nn import tensor as tensor_module

            np.testing.assert_array_equal(tensor_module._ROW_BLOCKS, boundaries)
        assert tensor_module._ROW_BLOCKS is None

    def test_gradients_flow_through_blocked_matmul(self, rng, blocks):
        boundaries, parts = blocks
        weight = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        packed = Tensor(np.vstack(parts), requires_grad=True)
        with nn.row_blocks(boundaries):
            ((packed @ weight).sum()).backward()
        assert weight.grad is not None
        assert packed.grad is not None
        assert np.isfinite(weight.grad).all()

    def test_invalid_boundaries_rejected(self):
        with pytest.raises(ValueError):
            nn.row_blocks(np.asarray([1, 2, 3]))  # must start at 0
        with pytest.raises(ValueError):
            nn.row_blocks(np.asarray([0, 3, 2]))  # must be non-decreasing
        with pytest.raises(ValueError):
            nn.row_blocks(np.zeros((2, 2)))  # must be 1-D
