"""Optimizer tests: convergence on convex problems, option handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Adam, Tensor


def quadratic_loss(w: Tensor) -> Tensor:
    target = Tensor(np.array([3.0, -2.0]))
    diff = w - target
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        w = Tensor(np.zeros(2), requires_grad=True)
        optimizer = SGD([w], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(w).backward()
            optimizer.step()
        np.testing.assert_allclose(w.numpy(), [3.0, -2.0], atol=1e-3)

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            w = Tensor(np.zeros(2), requires_grad=True)
            optimizer = SGD([w], lr=0.01, momentum=momentum)
            for _ in range(50):
                optimizer.zero_grad()
                loss = quadratic_loss(w)
                loss.backward()
                optimizer.step()
            losses[momentum] = quadratic_loss(w).item()
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks(self):
        w = Tensor(np.array([10.0]), requires_grad=True)
        optimizer = SGD([w], lr=0.1, weight_decay=1.0)
        for _ in range(100):
            optimizer.zero_grad()
            (w * 0.0).sum().backward()  # zero data gradient
            optimizer.step()
        assert abs(w.numpy()[0]) < 1.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        w = Tensor(np.zeros(2), requires_grad=True)
        optimizer = Adam([w], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            quadratic_loss(w).backward()
            optimizer.step()
        np.testing.assert_allclose(w.numpy(), [3.0, -2.0], atol=1e-3)

    def test_skips_params_without_grad(self):
        w = Tensor(np.ones(2), requires_grad=True)
        optimizer = Adam([w], lr=0.1)
        optimizer.step()  # no backward yet: must not move or crash
        np.testing.assert_allclose(w.numpy(), [1.0, 1.0])

    def test_zero_grad_resets(self):
        w = Tensor(np.zeros(2), requires_grad=True)
        optimizer = Adam([w], lr=0.1)
        quadratic_loss(w).backward()
        optimizer.zero_grad()
        assert w.grad is None
