"""Optimizer tests: convergence on convex problems, option handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Adam, Tensor


def quadratic_loss(w: Tensor) -> Tensor:
    target = Tensor(np.array([3.0, -2.0]))
    diff = w - target
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        w = Tensor(np.zeros(2), requires_grad=True)
        optimizer = SGD([w], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(w).backward()
            optimizer.step()
        np.testing.assert_allclose(w.numpy(), [3.0, -2.0], atol=1e-3)

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            w = Tensor(np.zeros(2), requires_grad=True)
            optimizer = SGD([w], lr=0.01, momentum=momentum)
            for _ in range(50):
                optimizer.zero_grad()
                loss = quadratic_loss(w)
                loss.backward()
                optimizer.step()
            losses[momentum] = quadratic_loss(w).item()
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks(self):
        w = Tensor(np.array([10.0]), requires_grad=True)
        optimizer = SGD([w], lr=0.1, weight_decay=1.0)
        for _ in range(100):
            optimizer.zero_grad()
            (w * 0.0).sum().backward()  # zero data gradient
            optimizer.step()
        assert abs(w.numpy()[0]) < 1.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        w = Tensor(np.zeros(2), requires_grad=True)
        optimizer = Adam([w], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            quadratic_loss(w).backward()
            optimizer.step()
        np.testing.assert_allclose(w.numpy(), [3.0, -2.0], atol=1e-3)

    def test_skips_params_without_grad(self):
        w = Tensor(np.ones(2), requires_grad=True)
        optimizer = Adam([w], lr=0.1)
        optimizer.step()  # no backward yet: must not move or crash
        np.testing.assert_allclose(w.numpy(), [1.0, 1.0])

    def test_zero_grad_resets(self):
        w = Tensor(np.zeros(2), requires_grad=True)
        optimizer = Adam([w], lr=0.1)
        quadratic_loss(w).backward()
        optimizer.zero_grad()
        assert w.grad is None


class TestAdamInPlace:
    """The fused in-place step must be bit-exact vs the reference update."""

    @staticmethod
    def _paired(weight_decay: float) -> tuple[Adam, Adam]:
        rng = np.random.default_rng(3)
        shapes = [(5, 4), (4,), (3, 2), (1,)]
        data = [rng.standard_normal(shape) for shape in shapes]
        fused = Adam(
            [Tensor(d.copy(), requires_grad=True) for d in data],
            lr=0.07,
            weight_decay=weight_decay,
        )
        reference = Adam(
            [Tensor(d.copy(), requires_grad=True) for d in data],
            lr=0.07,
            weight_decay=weight_decay,
        )
        return fused, reference

    @pytest.mark.parametrize("weight_decay", [0.0, 0.13])
    def test_bit_exact_vs_reference(self, weight_decay):
        fused, reference = self._paired(weight_decay)
        rng = np.random.default_rng(11)
        for step in range(25):
            grads = [rng.standard_normal(p.data.shape) for p in fused.params]
            for p, q, g in zip(fused.params, reference.params, grads):
                p.grad = g.copy()
                q.grad = g.copy()
            fused.step()
            reference._step_reference()
            for p, q in zip(fused.params, reference.params):
                assert np.array_equal(p.data, q.data), step
            for m1, m2 in zip(fused._m, reference._m):
                assert np.array_equal(m1, m2), step
            for v1, v2 in zip(fused._v, reference._v):
                assert np.array_equal(v1, v2), step

    def test_bit_exact_with_missing_grads(self):
        fused, reference = self._paired(0.05)
        rng = np.random.default_rng(7)
        for step in range(10):
            for i, (p, q) in enumerate(zip(fused.params, reference.params)):
                if (step + i) % 3 == 0:
                    p.grad = None
                    q.grad = None
                else:
                    g = rng.standard_normal(p.data.shape)
                    p.grad = g.copy()
                    q.grad = g.copy()
            fused.step()
            reference._step_reference()
            for p, q in zip(fused.params, reference.params):
                assert np.array_equal(p.data, q.data), step

    def test_step_does_not_allocate_new_param_array(self):
        # The in-place update must mutate the existing buffer — that is the
        # whole point of the fusion (and what callers holding `p.data`
        # references across a step observe).
        w = Tensor(np.ones(4), requires_grad=True)
        optimizer = Adam([w], lr=0.1)
        buffer = w.data
        w.grad = np.full(4, 0.5)
        optimizer.step()
        assert w.data is buffer
