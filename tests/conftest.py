"""Shared fixtures: a tiny deterministic dataset + derived artifacts.

Session-scoped so the expensive pieces (generation, BN build, experiment
preparation) run once for the whole suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import Dataset, GeneratorConfig, LeasingPlatformSimulator
from repro.eval.runner import ExperimentData, prepare_experiment
from repro.network import BehaviorNetwork, BNBuilder, FAST_WINDOWS


def tiny_generator_config(**overrides) -> GeneratorConfig:
    """A small, fast configuration used across the suite."""
    config = GeneratorConfig(
        n_users=220,
        fraud_rate=0.12,
        span_days=90.0,
        normal_sessions_mean=10.0,
        fraud_sessions_mean=10.0,
        mean_ring_size=6.0,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


@pytest.fixture(scope="session")
def tiny_dataset() -> Dataset:
    return LeasingPlatformSimulator(tiny_generator_config(), seed=42).generate("tiny")


@pytest.fixture(scope="session")
def tiny_bn(tiny_dataset: Dataset) -> BehaviorNetwork:
    return BNBuilder(windows=FAST_WINDOWS).build(tiny_dataset.logs)


@pytest.fixture(scope="session")
def tiny_experiment(tiny_dataset: Dataset, tiny_bn: BehaviorNetwork) -> ExperimentData:
    return prepare_experiment(tiny_dataset, windows=FAST_WINDOWS, seed=0, bn=tiny_bn)


@pytest.fixture(scope="session")
def tiny_experiment_with_stats(
    tiny_dataset: Dataset, tiny_bn: BehaviorNetwork
) -> ExperimentData:
    return prepare_experiment(
        tiny_dataset, windows=FAST_WINDOWS, seed=0, bn=tiny_bn, include_stats=True
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
