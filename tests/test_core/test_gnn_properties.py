"""Property-style invariants across the GNN family."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines.gat import GATLayer, gat_edges
from repro.core import HAG, prepare_aggregators
from repro.nn import Tensor, segment_sum


def random_graph(n: int, seed: int) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    dense = np.triu(rng.random((n, n)) < 0.3, 1).astype(float)
    return sp.csr_matrix(dense + dense.T)


class TestGATInternals:
    def test_attention_weights_sum_to_one_per_node(self, rng):
        """The segment softmax must produce a distribution per target node."""
        n = 8
        adjacency = random_graph(n, 0)
        rows, cols = gat_edges(adjacency)
        layer = GATLayer(4, 4, rng, heads=1)
        h = Tensor(np.random.default_rng(1).normal(size=(n, 4)))
        # Recompute the attention exactly as the layer does.
        z = h @ layer.w[0]
        scores = (
            z.index_select(rows) @ layer.a_src[0]
            + z.index_select(cols) @ layer.a_dst[0]
        ).leaky_relu(0.2)
        max_per_node = np.full(n, -np.inf)
        np.maximum.at(max_per_node, rows, scores.numpy())
        shifted = scores - Tensor(max_per_node[rows])
        exp_scores = shifted.exp()
        denom = segment_sum(exp_scores.reshape(-1, 1), rows, n)
        alpha = (exp_scores / (denom.index_select(rows).flatten() + 1e-12)).numpy()
        sums = np.zeros(n)
        np.add.at(sums, rows, alpha)
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)


class TestHAGInvariances:
    def make_model(self, seed=0, **kwargs):
        return HAG(
            5,
            2,
            np.random.default_rng(seed),
            hidden=(8, 4),
            att_dim=4,
            cfo_att_dim=4,
            cfo_out_dim=2,
            mlp_hidden=(4,),
            **kwargs,
        )

    def test_state_roundtrip_reproduces_outputs(self):
        adjacencies = [random_graph(6, s) for s in (1, 2)]
        aggregators = prepare_aggregators(adjacencies)
        x = np.random.default_rng(3).normal(size=(6, 5))
        a = self.make_model(seed=0)
        b = self.make_model(seed=99)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(
            a.predict_proba(x, aggregators), b.predict_proba(x, aggregators)
        )

    def test_isolated_node_unaffected_by_graph(self):
        """A node with no edges of any type only sees its own features."""
        n = 5
        empty = [sp.csr_matrix((n, n)) for _ in range(2)]
        aggregators = prepare_aggregators(empty)
        model = self.make_model()
        x = np.random.default_rng(4).normal(size=(n, 5))
        base = model.predict_proba(x, aggregators)
        shuffled = x.copy()
        shuffled[1:] = shuffled[1:][::-1]  # permute everyone except node 0
        after = model.predict_proba(shuffled, aggregators)
        np.testing.assert_allclose(base[0], after[0], rtol=1e-9)

    def test_node_permutation_equivariance(self):
        """Relabeling nodes permutes the outputs correspondingly."""
        n = 7
        adjacencies = [random_graph(n, s) for s in (5, 6)]
        model = self.make_model()
        x = np.random.default_rng(7).normal(size=(n, 5))
        base = model.predict_proba(x, prepare_aggregators(adjacencies))

        perm = np.random.default_rng(8).permutation(n)
        p = sp.csr_matrix((np.ones(n), (np.arange(n), perm)), shape=(n, n))
        permuted_adj = [p @ a @ p.T for a in adjacencies]
        permuted = model.predict_proba(x[perm], prepare_aggregators(permuted_adj))
        np.testing.assert_allclose(permuted, base[perm], rtol=1e-8)

    def test_scores_deterministic_in_eval(self):
        adjacencies = [random_graph(6, 9)]
        model = self.make_model(use_cfo=False)
        aggregators = prepare_aggregators(adjacencies)
        x = np.random.default_rng(10).normal(size=(6, 5))
        np.testing.assert_allclose(
            model.predict_proba(x, aggregators), model.predict_proba(x, aggregators)
        )
