"""Parallel training engine: presampling, prefetch, data-parallel parity.

Three guarantees are pinned here:

* **Presample bit-exactness** — :class:`PresampledGraph` replays the
  deterministic (``rng=None``) fanout policy exactly: ``sample`` matches
  ``sample_khop_nodes`` and ``induced`` matches ``induced_adjacencies``
  bit-for-bit, across fanouts, hop counts, ties and duplicate seeds.
* **Gradient parity** — the optimizer trajectory of
  :func:`train_parallel` is bit-identical across ``workers`` in
  {0, 1, 2, 4}, with prefetch on or off, and with mid-run worker crashes
  failed over to the parent.
* **Seed threading** — every rng stream derives from ``TrainConfig.seed``
  via :meth:`TrainConfig.streams`; the stream traces are pinned so a
  change to the derivation (which would silently alter every trained
  model) fails loudly.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    HAG,
    Minibatch,
    ParallelTrainConfig,
    PresampledGraph,
    TrainConfig,
    assemble_minibatch,
    fold_gradients,
    induced_adjacencies,
    sample_khop_nodes,
    train_parallel,
)
from repro.core.train_engine import _batch_gradient, _inprocess_epoch, _pooled_epoch
from repro.network.shm import SharedSnapshotStore
from repro.obs.profiling import TrainProfiler
from repro.system.train_workers import TrainWorkerPool, publish_train_inputs
from repro import nn

N_TYPES = 2


def random_adjacencies(
    n: int, density: float, integer_weights: bool = False, seed: int = 0
) -> list[sp.csr_matrix]:
    rng = np.random.default_rng(seed)
    matrices = []
    for t in range(N_TYPES):
        m = int(density * n)
        rows = rng.integers(0, n, size=m)
        cols = rng.integers(0, n, size=m)
        if integer_weights:  # ties exercise the stable rank ordering
            weights = rng.integers(1, 4, size=m).astype(float)
        else:
            weights = rng.random(m) + 0.01
        a = sp.coo_matrix((weights, (rows, cols)), shape=(n, n)).tocsr()
        a.sum_duplicates()
        matrices.append(a)
    return matrices


def make_problem(n: int = 200, seed: int = 0):
    """A small 2-type training problem (graphs, features, labels, splits)."""
    rng = np.random.default_rng(seed)
    adjacencies = random_adjacencies(n, density=4.0, seed=seed)
    features = rng.normal(size=(n, 12))
    labels = (rng.random(n) < 0.3).astype(np.float64)
    idx = rng.permutation(n)
    train_idx = idx[: int(0.7 * n)]
    val_idx = idx[int(0.7 * n) :]
    return adjacencies, features, labels, train_idx, val_idx


def make_model(seed: int = 0) -> HAG:
    return HAG(
        12,
        N_TYPES,
        np.random.default_rng(seed),
        hidden=(8, 6),
        att_dim=4,
        cfo_att_dim=4,
        cfo_out_dim=4,
        mlp_hidden=(6,),
    )


def assert_states_equal(a: dict, b: dict) -> None:
    assert a.keys() == b.keys()
    for key in a:
        assert np.array_equal(a[key], b[key]), key


# ----------------------------------------------------------------------
# Presampled structure: bit-exact vs the pinned reference samplers
# ----------------------------------------------------------------------
class TestPresampledGraph:
    @pytest.mark.parametrize("fanout", [None, 0, 3, 7])
    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    def test_sample_and_induced_bit_exact(self, fanout, hops):
        for seed in range(3):
            adjacencies = random_adjacencies(
                150, density=5.0, integer_weights=(seed == 1), seed=seed
            )
            pre = PresampledGraph.build(adjacencies, fanout)
            rng = np.random.default_rng(seed + 10)
            seeds = rng.choice(150, size=12, replace=False)
            seeds = np.concatenate([seeds, seeds[:4]])  # duplicates
            expected_nodes = sample_khop_nodes(
                adjacencies, seeds, hops, fanout, None
            )
            got_nodes = pre.sample(seeds, hops)
            assert np.array_equal(got_nodes, expected_nodes)
            expected_subs = induced_adjacencies(adjacencies, expected_nodes)
            got_subs = pre.induced(got_nodes)
            for got, expected in zip(got_subs, expected_subs):
                assert np.array_equal(got.indptr, expected.indptr)
                assert np.array_equal(got.indices, expected.indices)
                assert np.array_equal(got.data, expected.data)

    def test_empty_seed_set(self):
        adjacencies = random_adjacencies(50, density=3.0)
        pre = PresampledGraph.build(adjacencies, 5)
        empty = np.array([], dtype=np.int64)
        assert len(pre.sample(empty, 2)) == 0
        subs = pre.induced(empty)
        assert all(s.shape == (0, 0) for s in subs)

    def test_payload_round_trip(self):
        adjacencies = random_adjacencies(120, density=4.0, seed=3)
        pre = PresampledGraph.build(adjacencies, 4)
        arrays, meta = pre.to_payload()
        clone = PresampledGraph.from_payload(arrays, meta)
        seeds = np.arange(0, 120, 7)
        assert np.array_equal(clone.sample(seeds, 2), pre.sample(seeds, 2))
        nodes = pre.sample(seeds, 2)
        for got, expected in zip(clone.induced(nodes), pre.induced(nodes)):
            assert np.array_equal(got.indptr, expected.indptr)
            assert np.array_equal(got.indices, expected.indices)
            assert np.array_equal(got.data, expected.data)

    def test_scratch_reuse_is_clean(self):
        # Consecutive calls share scratch buffers; a dirty reset would
        # corrupt the second result.
        adjacencies = random_adjacencies(100, density=4.0, seed=5)
        pre = PresampledGraph.build(adjacencies, 3)
        a = pre.sample(np.array([1, 2, 3]), 2)
        b = pre.sample(np.array([50, 60]), 2)
        assert np.array_equal(a, pre.sample(np.array([1, 2, 3]), 2))
        assert np.array_equal(b, pre.sample(np.array([50, 60]), 2))


# ----------------------------------------------------------------------
# Seed threading: one seed drives every stream, pinned
# ----------------------------------------------------------------------
class TestSeedThreading:
    def test_streams_trace_pinned_for_seed_zero(self):
        # A change to the seed->stream derivation would silently change
        # every trained model; these literals pin the derivation.
        streams = TrainConfig(seed=0).streams()
        expected = {
            "shuffle": [802, 942, 5, 316, 758],
            "sample": [662, 677, 352, 242, 78],
            "init": [656, 838, 462, 83, 997],
            "workers": [892, 364, 310, 511, 145],
        }
        assert set(streams) == set(expected)
        for name, trace in expected.items():
            assert list(streams[name].integers(0, 1000, 5)) == trace

    def test_streams_differ_across_names_and_seeds(self):
        a = TrainConfig(seed=1).streams()
        b = TrainConfig(seed=2).streams()
        draws_a = {k: tuple(v.integers(0, 2**32, 4)) for k, v in a.items()}
        draws_b = {k: tuple(v.integers(0, 2**32, 4)) for k, v in b.items()}
        assert len(set(draws_a.values())) == len(draws_a)  # independent streams
        for name in draws_a:
            assert draws_a[name] != draws_b[name]  # seed actually threads

    def test_same_seed_same_trained_model(self):
        adjacencies, features, labels, train_idx, _ = make_problem(120)
        states = []
        for _ in range(2):
            model = make_model(seed=3)
            train_parallel(
                model, adjacencies, features, labels, train_idx,
                config=ParallelTrainConfig(
                    epochs=2, batch_size=48, seed=7, min_epochs=1, patience=50
                ),
                hops=2, fanout=4,
            )
            states.append(model.state_dict())
        assert_states_equal(states[0], states[1])

    def test_different_seed_changes_schedule(self):
        adjacencies, features, labels, train_idx, _ = make_problem(120)
        states = []
        for seed in (0, 1):
            model = make_model(seed=3)
            train_parallel(
                model, adjacencies, features, labels, train_idx,
                config=ParallelTrainConfig(
                    epochs=2, batch_size=48, seed=seed, min_epochs=1, patience=50
                ),
                hops=2, fanout=4,
            )
            states.append(model.state_dict())
        assert any(
            not np.array_equal(states[0][k], states[1][k]) for k in states[0]
        )


# ----------------------------------------------------------------------
# Engine parity: bit-identical trajectories across every execution mode
# ----------------------------------------------------------------------
class TestTrainParallelParity:
    @pytest.fixture(scope="class")
    def problem(self):
        return make_problem(200, seed=0)

    @pytest.fixture(scope="class")
    def baseline_state(self, problem):
        adjacencies, features, labels, train_idx, val_idx = problem
        model = make_model()
        train_parallel(
            model, adjacencies, features, labels, train_idx, val_idx,
            config=self.config(), hops=2, fanout=5,
        )
        return model.state_dict()

    @staticmethod
    def config(**overrides) -> ParallelTrainConfig:
        base = dict(
            epochs=3, batch_size=64, seed=0, min_epochs=1, patience=50,
            sync_batches=2,
        )
        base.update(overrides)
        return ParallelTrainConfig(**base)

    def test_presample_matches_per_epoch_resampling(self, problem, baseline_state):
        adjacencies, features, labels, train_idx, val_idx = problem
        model = make_model()
        train_parallel(
            model, adjacencies, features, labels, train_idx, val_idx,
            config=self.config(presample=False), hops=2, fanout=5,
        )
        assert_states_equal(model.state_dict(), baseline_state)

    def test_prefetch_off_matches(self, problem, baseline_state):
        adjacencies, features, labels, train_idx, val_idx = problem
        model = make_model()
        train_parallel(
            model, adjacencies, features, labels, train_idx, val_idx,
            config=self.config(prefetch=False), hops=2, fanout=5,
        )
        assert_states_equal(model.state_dict(), baseline_state)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_counts_bit_identical(self, problem, baseline_state, workers):
        adjacencies, features, labels, train_idx, val_idx = problem
        model = make_model()
        result = train_parallel(
            model, adjacencies, features, labels, train_idx, val_idx,
            config=self.config(workers=workers), hops=2, fanout=5,
        )
        assert_states_equal(model.state_dict(), baseline_state)
        assert len(result.train_losses) == 3

    def test_serialized_dispatch_bit_identical(self, problem, baseline_state):
        adjacencies, features, labels, train_idx, val_idx = problem
        model = make_model()
        train_parallel(
            model, adjacencies, features, labels, train_idx, val_idx,
            config=self.config(workers=2, serialize_dispatch=True),
            hops=2, fanout=5,
        )
        assert_states_equal(model.state_dict(), baseline_state)

    @pytest.mark.parametrize("sync_batches", [1, 3])
    def test_sync_batches_parity_across_workers(self, problem, sync_batches):
        # Different sync_batches change the trajectory (fewer, averaged
        # steps) but the trajectory must still not depend on workers.
        adjacencies, features, labels, train_idx, _ = problem
        states = []
        for workers in (0, 2):
            model = make_model()
            train_parallel(
                model, adjacencies, features, labels, train_idx,
                config=self.config(workers=workers, sync_batches=sync_batches),
                hops=2, fanout=5,
            )
            states.append(model.state_dict())
        assert_states_equal(states[0], states[1])

    def test_matches_legacy_loop_losses(self, problem):
        # The engine keeps the legacy protocol: with presample=False (same
        # deterministic sampler) and a single-stream shuffle, losses track
        # the reference loop's shape; here we just pin that training
        # actually reduces the loss.
        adjacencies, features, labels, train_idx, _ = problem
        model = make_model()
        result = train_parallel(
            model, adjacencies, features, labels, train_idx,
            config=self.config(epochs=5), hops=2, fanout=5,
        )
        assert result.train_losses[-1] < result.train_losses[0]


# ----------------------------------------------------------------------
# Worker pool: round trips, fallback inputs, failover
# ----------------------------------------------------------------------
class TestTrainWorkerPool:
    @pytest.fixture()
    def published(self):
        adjacencies, features, labels, train_idx, _ = make_problem(120, seed=2)
        pre = PresampledGraph.build([a.tocsr() for a in adjacencies], 4)
        store = SharedSnapshotStore(prefix="repro-test-train")
        handle = publish_train_inputs(store, pre, features, labels, hops=2)
        inputs = handle.segment if handle.shared else (handle.arrays, handle.meta)
        yield pre, features, labels, train_idx, inputs
        store.close()

    @staticmethod
    def payload(model) -> bytes:
        return pickle.dumps({"model": model, "pos_weight": 2.0, "hops": 2})

    def test_gradients_match_in_process_bits(self, published):
        pre, features, labels, train_idx, inputs = published
        model = make_model(seed=1)
        pool = TrainWorkerPool(inputs, 2, model_payload=self.payload(model))
        try:
            params = model.parameters()
            batches = [train_idx[:32], train_idx[32:64]]
            state = [p.data for p in params]
            value = pool.gradients(0, state, batches)
            assert value is not None
            w_grads, w_losses, w_nodes, busy = value
            assert busy > 0.0
            for batch, grads, loss, nodes in zip(
                batches, w_grads, w_losses, w_nodes
            ):
                mb = assemble_minibatch(pre, features, labels, batch, 2)
                expected_grads, expected_loss = _batch_gradient(
                    model, params, mb, 2.0
                )
                assert loss == expected_loss
                assert nodes == len(mb.nodes)
                for got, expected in zip(grads, expected_grads):
                    assert np.array_equal(got, expected)
        finally:
            pool.close()

    def test_dead_worker_reports_none(self, published):
        *_, inputs = published
        pool = TrainWorkerPool(inputs, 2, model_payload=self.payload(make_model()))
        try:
            pool.crash(0)
            assert pool.gradients(0, [], []) is None
            assert not pool.alive(0)
            assert pool.alive(1)
            assert pool.alive_count() == 1
        finally:
            pool.close()

    def test_worker_error_raises(self, published):
        *_, inputs = published
        pool = TrainWorkerPool(inputs, 1)  # no model loaded
        try:
            with pytest.raises(RuntimeError, match="no model loaded"):
                pool.gradients(0, [], [np.array([0, 1])])
            assert pool.alive(0)  # errors are reported, not fatal
        finally:
            pool.close()

    def test_failover_epoch_is_bit_identical(self, published):
        # Crash one of two workers, run a pooled epoch, and compare the
        # resulting parameters with a pure in-process epoch: the parent's
        # recomputation of the dead worker's batches must be bit-exact.
        pre, features, labels, train_idx, inputs = published
        config = ParallelTrainConfig(
            epochs=1, batch_size=32, sync_batches=2, workers=2,
            min_epochs=1, patience=50,
        )
        batches = [
            train_idx[i : i + config.batch_size]
            for i in range(0, len(train_idx), config.batch_size)
        ]

        def build(batch):
            return assemble_minibatch(pre, features, labels, batch, 2)

        from repro.obs.profiling import NullProfiler

        reference = make_model(seed=4)
        ref_params = reference.parameters()
        ref_optimizer = nn.Adam(ref_params, lr=config.lr)
        ref_loss = _inprocess_epoch(
            reference, ref_params, ref_optimizer, batches, config,
            2.0, build, NullProfiler(),
        )

        model = make_model(seed=4)
        params = model.parameters()
        optimizer = nn.Adam(params, lr=config.lr)
        pool = TrainWorkerPool(inputs, 2, model_payload=self.payload(model))
        try:
            pool.crash(1)
            loss = _pooled_epoch(
                pool, model, params, optimizer, batches, config,
                2.0, build, NullProfiler(),
            )
        finally:
            pool.close()
        assert loss == ref_loss
        assert_states_equal(model.state_dict(), reference.state_dict())


# ----------------------------------------------------------------------
# Config validation, fold semantics, profiler accounting
# ----------------------------------------------------------------------
class TestConfigAndFold:
    def test_validate_rejects_bad_values(self):
        with pytest.raises(ValueError, match="sync_batches"):
            ParallelTrainConfig(sync_batches=0).validate()
        with pytest.raises(ValueError, match="workers"):
            ParallelTrainConfig(workers=-1).validate()
        with pytest.raises(ValueError, match="presample"):
            ParallelTrainConfig(workers=2, presample=False).validate()
        ParallelTrainConfig(workers=2, sync_batches=4).validate()

    def test_base_validation_still_applies(self):
        with pytest.raises(ValueError, match="epochs"):
            ParallelTrainConfig(epochs=0).validate()

    def test_requires_batch_size(self):
        adjacencies, features, labels, train_idx, _ = make_problem(60)
        with pytest.raises(ValueError, match="batch size"):
            train_parallel(
                make_model(), adjacencies, features, labels, train_idx,
                config=ParallelTrainConfig(batch_size=None),
            )

    def test_fold_is_left_to_right_in_batch_order(self):
        rng = np.random.default_rng(0)
        per_batch = [[rng.normal(size=(3, 2)), rng.normal(size=(4,))] for _ in range(4)]
        folded = fold_gradients(per_batch, 0.25)
        for i in range(2):
            expected = per_batch[0][i].copy()
            for grads in per_batch[1:]:
                expected = expected + grads[i]
            expected = expected * 0.25
            assert np.array_equal(folded[i], expected)

    def test_fold_scale_one_skips_multiply(self):
        g = np.array([1.0, 2.0])
        folded = fold_gradients([[g]], 1.0)
        assert np.array_equal(folded[0], g)
        assert folded[0] is not g  # defensive copy


class TestProfilerAccounting:
    def test_stage_breakdown_covers_pipeline(self):
        adjacencies, features, labels, train_idx, val_idx = make_problem(120)
        profiler = TrainProfiler()
        train_parallel(
            make_model(), adjacencies, features, labels, train_idx, val_idx,
            config=ParallelTrainConfig(
                epochs=2, batch_size=48, min_epochs=1, patience=50
            ),
            hops=2, fanout=4, profiler=profiler,
        )
        totals = profiler.stage_totals()
        for stage in (
            "presample", "sampling", "induction", "gather", "prefetch",
            "forward", "backward", "reduce", "step", "validation",
        ):
            assert stage in totals, stage
        expected_batches = -(-len(train_idx) // 48)
        assert len(profiler.epochs) == 2
        assert all(p.batches == expected_batches for p in profiler.epochs)
        assert all(p.sampled_nodes > 0 for p in profiler.epochs)

    def test_pooled_stages_include_worker_clocks(self):
        adjacencies, features, labels, train_idx, _ = make_problem(120)
        profiler = TrainProfiler()
        train_parallel(
            make_model(), adjacencies, features, labels, train_idx,
            config=ParallelTrainConfig(
                epochs=1, batch_size=48, min_epochs=1, patience=50, workers=2
            ),
            hops=2, fanout=4, profiler=profiler,
        )
        totals = profiler.stage_totals()
        for stage in ("dispatch", "workers_busy", "workers_critical"):
            assert stage in totals, stage
        assert totals["workers_busy"] >= totals["workers_critical"] > 0.0

    def test_mirror_into_prefixes_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        adjacencies, features, labels, train_idx, _ = make_problem(100)
        profiler = TrainProfiler()
        train_parallel(
            make_model(), adjacencies, features, labels, train_idx,
            config=ParallelTrainConfig(
                epochs=1, batch_size=48, min_epochs=1, patience=50
            ),
            hops=2, fanout=4, profiler=profiler,
        )
        registry = MetricsRegistry()
        profiler.mirror_into(registry, prefix="turbo.")
        snapshot = registry.snapshot()
        assert snapshot["counters"]["turbo.train.epochs"] == 1
        assert snapshot["counters"]["turbo.train.batches"] >= 1
        assert any(
            name.startswith("turbo.train.stage_seconds.")
            for name in snapshot["histograms"]
        )
