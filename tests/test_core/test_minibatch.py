"""Neighbor-sampled mini-batch training tests."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    HAG,
    TrainConfig,
    induced_adjacencies,
    sample_khop_nodes,
    train_with_neighbor_sampling,
)


def chain_adjacency(n: int) -> sp.csr_matrix:
    rows = list(range(n - 1)) + list(range(1, n))
    cols = list(range(1, n)) + list(range(n - 1))
    return sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))


class TestSampling:
    def test_seeds_come_first(self):
        nodes = sample_khop_nodes([chain_adjacency(10)], np.array([5, 2]), hops=1)
        assert nodes[0] == 5 and nodes[1] == 2

    def test_khop_closure_on_chain(self):
        nodes = sample_khop_nodes([chain_adjacency(10)], np.array([4]), hops=2)
        assert set(nodes) == {2, 3, 4, 5, 6}

    def test_fanout_caps_expansion(self):
        star = sp.csr_matrix(
            (np.arange(1.0, 10.0), (np.zeros(9, dtype=int), np.arange(1, 10))),
            shape=(10, 10),
        )
        nodes = sample_khop_nodes([star], np.array([0]), hops=1, fanout=3)
        # Top-3 neighbours by weight.
        assert set(nodes) == {0, 9, 8, 7}

    def test_duplicate_seeds_deduped(self):
        nodes = sample_khop_nodes([chain_adjacency(5)], np.array([1, 1]), hops=0)
        assert list(nodes) == [1]

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            sample_khop_nodes([chain_adjacency(5)], np.array([0]), hops=-1)

    def test_induced_adjacency_indexing(self):
        adjacency = chain_adjacency(6)
        nodes = np.array([2, 3, 4])
        sub = induced_adjacencies([adjacency], nodes)[0]
        assert sub.shape == (3, 3)
        assert sub[0, 1] == 1.0  # edge 2-3 preserved
        assert sub[0, 2] == 0.0  # 2-4 not adjacent


class TestTraining:
    def test_minibatch_hag_learns(self, tiny_experiment):
        data = tiny_experiment
        model = HAG(
            data.features.shape[1],
            n_types=len(data.edge_types),
            rng=np.random.default_rng(0),
            hidden=(16, 8),
            att_dim=8,
            cfo_att_dim=8,
            cfo_out_dim=4,
            mlp_hidden=(8,),
        )
        adjacencies = [data.adjacencies[t] for t in data.edge_types]
        result = train_with_neighbor_sampling(
            model,
            adjacencies,
            data.features,
            data.labels,
            data.train_idx,
            data.val_idx,
            TrainConfig(epochs=6, lr=5e-3, batch_size=64, min_epochs=3, patience=6),
            hops=2,
            fanout=8,
        )
        assert len(result.train_losses) >= 3
        assert result.train_losses[-1] < result.train_losses[0] * 1.5

    def test_requires_batch_size(self, tiny_experiment):
        data = tiny_experiment
        model = HAG(
            data.features.shape[1],
            n_types=len(data.edge_types),
            rng=np.random.default_rng(0),
            hidden=(8, 4),
        )
        adjacencies = [data.adjacencies[t] for t in data.edge_types]
        with pytest.raises(ValueError):
            train_with_neighbor_sampling(
                model,
                adjacencies,
                data.features,
                data.labels,
                data.train_idx,
                config=TrainConfig(batch_size=None),
            )
