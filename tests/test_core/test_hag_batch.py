"""Packed batch inference parity: one forward, per-request bits unchanged."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import HAG
from repro.datagen import BehaviorType
from repro.network import ComputationSubgraph

TYPES = (BehaviorType.DEVICE_ID, BehaviorType.IPV4)


def random_subgraph(rng: np.random.Generator, n_nodes: int) -> ComputationSubgraph:
    adjacency = {}
    for btype in TYPES:
        dense = rng.random((n_nodes, n_nodes)) < 0.3
        dense = np.triu(dense, 1)
        dense = (dense + dense.T) * rng.random((n_nodes, n_nodes))
        adjacency[btype] = sp.csr_matrix(dense)
    return ComputationSubgraph(
        target=0, nodes=list(range(n_nodes)), adjacency=adjacency
    )


def build_batch(rng, sizes):
    subgraphs = [random_subgraph(rng, n) for n in sizes]
    features = [rng.normal(size=(n, 6)) for n in sizes]
    return subgraphs, features


class TestPredictSubgraphsParity:
    @pytest.mark.parametrize("use_cfo", [True, False])
    @pytest.mark.parametrize("sizes", [(1,), (3, 3), (1, 7, 2, 12, 5)])
    def test_bitexact_vs_scalar(self, rng, use_cfo, sizes):
        model = HAG(
            6, len(TYPES), rng, hidden=(8, 4), cfo_out_dim=2, mlp_hidden=(4,),
            use_cfo=use_cfo,
        )
        subgraphs, features = build_batch(rng, sizes)
        order = TYPES if use_cfo else None
        packed = model.predict_subgraphs(subgraphs, features, edge_type_order=order)
        for probability, subgraph, matrix in zip(packed, subgraphs, features):
            scalar = model.predict_subgraph(subgraph, matrix, edge_type_order=order)
            assert probability == scalar  # bit-for-bit, no approx

    def test_order_independence(self, rng):
        model = HAG(6, len(TYPES), rng, hidden=(8, 4), cfo_out_dim=2, mlp_hidden=(4,))
        subgraphs, features = build_batch(rng, (4, 9, 2, 6))
        forward = model.predict_subgraphs(subgraphs, features, edge_type_order=TYPES)
        backward = model.predict_subgraphs(
            subgraphs[::-1], features[::-1], edge_type_order=TYPES
        )
        assert forward == backward[::-1]

    def test_empty_batch(self, rng):
        model = HAG(6, len(TYPES), rng, hidden=(8, 4))
        assert model.predict_subgraphs([], [], edge_type_order=TYPES) == []

    def test_misaligned_features_rejected(self, rng):
        model = HAG(6, len(TYPES), rng, hidden=(8, 4))
        subgraphs, features = build_batch(rng, (3, 4))
        with pytest.raises(ValueError):
            model.predict_subgraphs(subgraphs, features[:1], edge_type_order=TYPES)
        features[1] = features[1][:2]
        with pytest.raises(ValueError):
            model.predict_subgraphs(subgraphs, features, edge_type_order=TYPES)

    def test_cfo_requires_explicit_type_order(self, rng):
        model = HAG(6, len(TYPES), rng, hidden=(8, 4))
        subgraphs, features = build_batch(rng, (3,))
        with pytest.raises(ValueError):
            model.predict_subgraphs(subgraphs, features)
