"""Batch-layer state: validation, serialization, and replay parity.

Pins the lambda tentpole's core guarantees (PR 8):

* :class:`~repro.core.lambda_infer.HAGState` validates its aligned
  per-node columns, answers exact-provenance lookups, and prices
  staleness over the cached subgraph node sets;
* ``to_arrays``/``from_arrays`` round-trip losslessly (including the
  full-graph layer states), which is what both the storage checkpoint
  and the shared-memory publication rely on;
* :func:`~repro.core.lambda_infer.materialize` replays the exact scalar
  serving path — cached scores are bit-for-bit what per-target sampling
  plus :meth:`~repro.core.hag.HAG.predict_subgraph` computes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HAG, HAGState, materialize
from repro.datagen import BehaviorType
from repro.network.sampling import computation_subgraph

TYPES = (BehaviorType.DEVICE_ID, BehaviorType.IPV4, BehaviorType.WIFI_MAC)


def small_state(layers: dict | None = None) -> HAGState:
    return HAGState(
        bn_version=7,
        hops=2,
        fanout=10,
        node_ids=np.array([3, 5, 9], dtype=np.int64),
        scores=np.array([0.1, 0.6, 0.9]),
        txn_ids=np.array([30, 50, 90], dtype=np.int64),
        nows=np.array([1.0, 2.0, 3.0]),
        subgraph_indptr=np.array([0, 2, 3, 6], dtype=np.int64),
        subgraph_nodes=np.array([3, 4, 5, 9, 4, 11], dtype=np.int64),
        layers=layers or {},
    )


class TestHAGState:
    def test_misaligned_columns_rejected(self):
        with pytest.raises(ValueError):
            HAGState(
                bn_version=1,
                hops=2,
                fanout=10,
                node_ids=np.array([1, 2], dtype=np.int64),
                scores=np.array([0.5]),
                txn_ids=np.array([10, 20], dtype=np.int64),
                nows=np.array([1.0, 2.0]),
                subgraph_indptr=np.array([0, 1, 2], dtype=np.int64),
                subgraph_nodes=np.array([1, 2], dtype=np.int64),
            )

    def test_bad_indptr_rejected(self):
        with pytest.raises(ValueError):
            HAGState(
                bn_version=1,
                hops=2,
                fanout=10,
                node_ids=np.array([1, 2], dtype=np.int64),
                scores=np.array([0.5, 0.6]),
                txn_ids=np.array([10, 20], dtype=np.int64),
                nows=np.array([1.0, 2.0]),
                subgraph_indptr=np.array([0, 2], dtype=np.int64),
                subgraph_nodes=np.array([1, 2], dtype=np.int64),
            )

    def test_unsorted_node_ids_rejected(self):
        with pytest.raises(ValueError):
            HAGState(
                bn_version=1,
                hops=2,
                fanout=10,
                node_ids=np.array([5, 3], dtype=np.int64),
                scores=np.array([0.5, 0.6]),
                txn_ids=np.array([10, 20], dtype=np.int64),
                nows=np.array([1.0, 2.0]),
                subgraph_indptr=np.array([0, 1, 2], dtype=np.int64),
                subgraph_nodes=np.array([5, 3], dtype=np.int64),
            )

    def test_lookup_requires_exact_provenance(self):
        state = small_state()
        assert state.lookup(5, 50, 2.0) == (pytest.approx(0.6), 1)
        # Any provenance mismatch must fall through to the fresh path.
        assert state.lookup(5, 51, 2.0) is None  # newer transaction
        assert state.lookup(5, 50, 2.5) is None  # different as-of time
        assert state.lookup(6, 50, 2.0) is None  # uncovered uid

    def test_subgraph_of_slices_csr(self):
        state = small_state()
        assert state.subgraph_of(0).tolist() == [3, 4]
        assert state.subgraph_of(1).tolist() == [5]
        assert state.subgraph_of(2).tolist() == [9, 4, 11]

    def test_staleness_counts_touches_in_cached_subgraph(self):
        state = small_state()
        touched = {4: 2, 11: 1, 999: 5}
        assert state.staleness_of(0, touched) == 2  # node 4 only
        assert state.staleness_of(1, touched) == 0  # subgraph {5} untouched
        assert state.staleness_of(2, touched) == 3  # nodes 4 and 11
        assert state.staleness_of(2, {}) == 0

    def test_round_trip_including_layers(self):
        rng = np.random.default_rng(0)
        layers = {
            "tower0.layer0": rng.normal(size=(3, 4)),
            "fused": rng.normal(size=(3, 2)),
        }
        state = small_state(layers=layers)
        arrays = state.to_arrays()
        back = HAGState.from_arrays(arrays)
        assert back.bn_version == state.bn_version
        assert back.hops == state.hops
        assert back.fanout == state.fanout
        np.testing.assert_array_equal(back.node_ids, state.node_ids)
        np.testing.assert_array_equal(back.scores, state.scores)
        np.testing.assert_array_equal(back.txn_ids, state.txn_ids)
        np.testing.assert_array_equal(back.nows, state.nows)
        np.testing.assert_array_equal(back.subgraph_indptr, state.subgraph_indptr)
        np.testing.assert_array_equal(back.subgraph_nodes, state.subgraph_nodes)
        assert set(back.layers) == set(layers)
        for name in layers:
            np.testing.assert_array_equal(back.layers[name], layers[name])

    def test_round_trip_none_fanout(self):
        state = small_state()
        state.fanout = None
        assert HAGState.from_arrays(state.to_arrays()).fanout is None

    def test_malformed_meta_rejected(self):
        arrays = small_state().to_arrays()
        arrays["meta"] = arrays["meta"][:2]
        with pytest.raises(ValueError):
            HAGState.from_arrays(arrays)


class TestMaterialize:
    @pytest.fixture(scope="class")
    def model_and_features(self, tiny_bn):
        # Mirror the serving path: the model's towers cover every edge type
        # present in the BN, and sampling runs unrestricted over them.
        types = tuple(sorted(tiny_bn.edge_types(), key=lambda t: t.value))
        rng = np.random.default_rng(3)
        n = max(tiny_bn.nodes()) + 1
        features = rng.normal(size=(n, 6))
        model = HAG(
            6, len(types), rng, hidden=(8, 4), cfo_out_dim=2, mlp_hidden=(4,)
        )
        return model, features, types

    def test_scores_match_scalar_serving_path(self, tiny_bn, model_and_features):
        model, features, types = model_and_features
        targets = sorted(tiny_bn.nodes())[:12]
        txn_ids = [10 * uid for uid in targets]
        nows = [float(uid) for uid in targets]

        state, stats = materialize(
            model,
            tiny_bn,
            targets,
            txn_ids,
            nows,
            lambda k, nodes: features[np.asarray(nodes, dtype=np.int64)],
            hops=2,
            fanout=10,
            edge_type_order=types,
        )
        assert state.num_nodes == len(targets)
        assert stats.requests == len(targets)
        assert state.bn_version == int(tiny_bn.version)

        for uid in targets:
            position = state.position_of(uid)
            subgraph = computation_subgraph(tiny_bn, uid, hops=2, fanout=10)
            fresh = model.predict_subgraph(
                subgraph,
                features[np.asarray(subgraph.nodes, dtype=np.int64)],
                edge_type_order=types,
            )
            assert state.scores[position] == fresh  # bit-for-bit, no approx
            np.testing.assert_array_equal(
                state.subgraph_of(position), np.asarray(subgraph.nodes)
            )

    def test_chunking_does_not_change_bits(self, tiny_bn, model_and_features):
        model, features, types = model_and_features
        targets = sorted(tiny_bn.nodes())[:9]
        txn_ids = [1] * len(targets)
        nows = [0.0] * len(targets)
        fn = lambda k, nodes: features[np.asarray(nodes, dtype=np.int64)]
        one, _ = materialize(
            model, tiny_bn, targets, txn_ids, nows, fn,
            hops=2, fanout=10, edge_type_order=types, chunk=1,
        )
        big, _ = materialize(
            model, tiny_bn, targets, txn_ids, nows, fn,
            hops=2, fanout=10, edge_type_order=types, chunk=256,
        )
        np.testing.assert_array_equal(one.scores, big.scores)

    def test_layer_pass_shapes(self, tiny_bn, model_and_features):
        model, features, types = model_and_features
        targets = sorted(tiny_bn.nodes())[:8]
        fn = lambda k, nodes: features[np.asarray(nodes, dtype=np.int64)]
        state, _ = materialize(
            model, tiny_bn, targets, [1] * 8, [0.0] * 8, fn,
            hops=2, fanout=10, edge_type_order=types,
            layer_features=features[np.asarray(sorted(targets), dtype=np.int64)],
        )
        assert "fused" in state.layers
        assert state.layers["fused"].shape[0] == len(targets)
        # One hidden state per SAO layer per tower, rows aligned to targets.
        for tower in range(len(types)):
            for k in range(2):
                hidden = state.layers[f"tower{tower}.layer{k}"]
                assert hidden.shape[0] == len(targets)

    def test_duplicate_targets_rejected(self, tiny_bn, model_and_features):
        model, features, types = model_and_features
        uid = sorted(tiny_bn.nodes())[0]
        with pytest.raises(ValueError):
            materialize(
                model, tiny_bn, [uid, uid], [1, 2], [0.0, 0.0],
                lambda k, nodes: features[np.asarray(nodes, dtype=np.int64)],
                hops=2, fanout=10, edge_type_order=types,
            )

    def test_misaligned_inputs_rejected(self, tiny_bn, model_and_features):
        model, features, types = model_and_features
        uid = sorted(tiny_bn.nodes())[0]
        with pytest.raises(ValueError):
            materialize(
                model, tiny_bn, [uid], [1, 2], [0.0],
                lambda k, nodes: features[np.asarray(nodes, dtype=np.int64)],
                hops=2, fanout=10, edge_type_order=types,
            )
