"""Training-loop tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TrainConfig, train_node_classifier
from repro.nn import MLP, Tensor


def make_problem(rng, n=300, d=6):
    x = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = (x @ w > 0).astype(float)
    return x, y


class TestTrainConfig:
    @pytest.mark.parametrize(
        "kwargs", [{"epochs": 0}, {"batch_size": 0}, {"patience": 0}]
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            TrainConfig(**kwargs).validate()


class TestTraining:
    def test_loss_decreases(self, rng):
        x, y = make_problem(rng)
        model = MLP(6, [16], 1, rng)
        result = train_node_classifier(
            model,
            lambda t: model(t).flatten(),
            x,
            y,
            np.arange(250),
            np.arange(250, 300),
            TrainConfig(epochs=40, lr=0.01, patience=40),
        )
        assert result.train_losses[-1] < result.train_losses[0]
        assert result.best_epoch >= 0

    def test_minibatch_mode_runs(self, rng):
        x, y = make_problem(rng, n=120)
        model = MLP(6, [8], 1, rng)
        result = train_node_classifier(
            model,
            lambda t: model(t).flatten(),
            x,
            y,
            np.arange(100),
            None,
            TrainConfig(epochs=5, lr=0.01, batch_size=32),
        )
        assert len(result.train_losses) == 5

    def test_early_stopping_restores_best(self, rng):
        x, y = make_problem(rng)
        model = MLP(6, [16], 1, rng)
        result = train_node_classifier(
            model,
            lambda t: model(t).flatten(),
            x,
            y,
            np.arange(250),
            np.arange(250, 300),
            TrainConfig(epochs=100, lr=0.05, patience=5, min_epochs=5),
        )
        # Training stopped before the cap or used all epochs; either way a
        # best epoch was tracked and the model reloaded.
        assert result.best_epoch <= len(result.train_losses) - 1
        assert np.isfinite(result.best_val_auc)

    def test_model_in_eval_mode_after_training(self, rng):
        x, y = make_problem(rng, n=80)
        model = MLP(6, [8], 1, rng, dropout=0.3)
        train_node_classifier(
            model,
            lambda t: model(t).flatten(),
            x,
            y,
            np.arange(80),
            None,
            TrainConfig(epochs=3, lr=0.01),
        )
        assert not model.training

    def test_pos_weight_boosts_recall(self, rng):
        # Highly imbalanced problem: pos_weight should push recall up.
        n = 400
        x = rng.normal(size=(n, 4))
        y = np.zeros(n)
        y[:30] = 1.0
        x[:30] += 0.8

        def run(pos_weight):
            model = MLP(4, [8], 1, np.random.default_rng(0))
            train_node_classifier(
                model,
                lambda t: model(t).flatten(),
                x,
                y,
                np.arange(n),
                None,
                TrainConfig(epochs=60, lr=0.02, pos_weight=pos_weight),
            )
            from repro.nn import no_grad

            with no_grad():
                scores = model(Tensor(x)).flatten().numpy()
            predicted = scores > 0
            return predicted[:30].mean()

        assert run(20.0) >= run(1.0)
