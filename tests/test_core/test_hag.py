"""HAG model tests: shapes, ablations, inductive prediction."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import HAG, prepare_aggregators
from repro.datagen import BehaviorType
from repro.network import BehaviorNetwork, computation_subgraph
from repro.nn import Tensor


def random_adjacencies(n: int, n_types: int, rng) -> list[sp.csr_matrix]:
    matrices = []
    for t in range(n_types):
        dense = rng.random((n, n)) < 0.2
        dense = np.triu(dense, 1)
        dense = (dense + dense.T).astype(float)
        matrices.append(sp.csr_matrix(dense))
    return matrices


class TestHAGForward:
    def test_logit_shape(self, rng):
        adjs = random_adjacencies(7, 3, np.random.default_rng(0))
        model = HAG(5, 3, rng, hidden=(8, 4), att_dim=4, cfo_att_dim=4, cfo_out_dim=2, mlp_hidden=(4,))
        aggs = prepare_aggregators(adjs)
        logits = model(Tensor(np.random.default_rng(1).normal(size=(7, 5))), aggs)
        assert logits.shape == (7,)

    def test_wrong_aggregator_count_rejected(self, rng):
        model = HAG(5, 3, rng, hidden=(8, 4))
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((4, 5))), prepare_aggregators(random_adjacencies(4, 2, np.random.default_rng(0))))

    def test_needs_at_least_one_layer(self, rng):
        with pytest.raises(ValueError):
            HAG(5, 3, rng, hidden=())

    def test_predict_proba_in_unit_interval(self, rng):
        adjs = random_adjacencies(6, 2, np.random.default_rng(2))
        model = HAG(4, 2, rng, hidden=(8, 4), cfo_out_dim=2, mlp_hidden=(4,))
        probs = model.predict_proba(
            np.random.default_rng(3).normal(size=(6, 4)), prepare_aggregators(adjs)
        )
        assert probs.shape == (6,)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_embeddings_dim_with_cfo(self, rng):
        adjs = random_adjacencies(6, 2, np.random.default_rng(4))
        model = HAG(4, 2, rng, hidden=(8, 4), cfo_out_dim=3, mlp_hidden=(4,))
        emb = model.embeddings(Tensor(np.zeros((6, 4))), prepare_aggregators(adjs))
        assert emb.shape == (6, 3 * 2)


class TestAblations:
    def test_cfo_disabled_uses_single_tower(self, rng):
        model = HAG(4, 5, rng, hidden=(8, 4), use_cfo=False)
        assert model.n_types == 1
        assert model.cfo is None
        adj = random_adjacencies(6, 1, np.random.default_rng(0))
        emb = model.embeddings(Tensor(np.zeros((6, 4))), prepare_aggregators(adj))
        assert emb.shape == (6, 4)

    def test_sao_disabled_has_no_attention_params(self, rng):
        with_attention = HAG(4, 2, rng, hidden=(8, 4))
        without = HAG(4, 2, np.random.default_rng(0), hidden=(8, 4), use_sao=False)
        assert without.num_parameters() < with_attention.num_parameters()


class TestInductivePrediction:
    def build_bn(self) -> BehaviorNetwork:
        bn = BehaviorNetwork()
        dev = BehaviorType.DEVICE_ID
        ip = BehaviorType.IPV4
        bn.add_weight(0, 1, dev, 1.0, 0.0)
        bn.add_weight(1, 2, ip, 0.5, 0.0)
        return bn

    def test_predict_subgraph_returns_probability(self, rng):
        bn = self.build_bn()
        types = [BehaviorType.DEVICE_ID, BehaviorType.IPV4]
        model = HAG(3, 2, rng, hidden=(6, 4), cfo_out_dim=2, mlp_hidden=(4,))
        subgraph = computation_subgraph(bn, 0, hops=2, edge_types=types)
        features = np.random.default_rng(5).normal(size=(subgraph.num_nodes, 3))
        probability = model.predict_subgraph(subgraph, features, edge_type_order=types)
        assert 0.0 <= probability <= 1.0

    def test_missing_type_filled_with_empty_matrix(self, rng):
        bn = BehaviorNetwork()
        bn.add_weight(0, 1, BehaviorType.DEVICE_ID, 1.0, 0.0)
        types = [BehaviorType.DEVICE_ID, BehaviorType.IPV4]
        model = HAG(3, 2, rng, hidden=(6, 4), cfo_out_dim=2, mlp_hidden=(4,))
        subgraph = computation_subgraph(bn, 0, hops=1, edge_types=[BehaviorType.DEVICE_ID])
        features = np.zeros((subgraph.num_nodes, 3))
        probability = model.predict_subgraph(subgraph, features, edge_type_order=types)
        assert np.isfinite(probability)

    def test_feature_row_mismatch_rejected(self, rng):
        bn = self.build_bn()
        model = HAG(3, 2, rng, hidden=(6, 4))
        subgraph = computation_subgraph(bn, 0, hops=1)
        with pytest.raises(ValueError):
            model.predict_subgraph(subgraph, np.zeros((99, 3)))

    def test_isolated_target_predictable(self, rng):
        bn = BehaviorNetwork()
        bn.add_node(7)
        types = [BehaviorType.DEVICE_ID]
        model = HAG(3, 1, rng, hidden=(6, 4), cfo_out_dim=2, mlp_hidden=(4,))
        subgraph = computation_subgraph(bn, 7, hops=2, edge_types=types)
        probability = model.predict_subgraph(
            subgraph, np.zeros((1, 3)), edge_type_order=types
        )
        assert 0.0 <= probability <= 1.0
