"""Vectorized sampler/induction equivalence against the pinned references.

The vectorized k-hop sampler promises *bit-exact* equality with the pre-PR
reference loops — same node sets, same ordering, and (for weighted draws)
the same rng stream consumption.  These property-style tests sweep graph
shapes chosen to pin every execution branch of the top-k kernel:

* hub graphs → the per-segment argpartition loop (few wide segments);
* clique-like graphs with tied integer weights → the padded stable-argsort
  path (many narrow segments, heavy boundary ties);
* uniform wide-degree graphs → the padded row-partition path with explicit
  boundary-tie resolution.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    induced_adjacencies,
    induced_adjacencies_reference,
    sample_khop_nodes,
    sample_khop_nodes_reference,
)

N_TYPES = 3


def random_adjacencies(
    n: int,
    density: float,
    hubs: int = 0,
    hub_degree: int = 0,
    zero_fraction: float = 0.0,
    integer_weights: bool = False,
    seed: int = 0,
) -> list[sp.csr_matrix]:
    rng = np.random.default_rng(seed)
    matrices = []
    for _ in range(N_TYPES):
        m = int(density * n)
        rows = rng.integers(0, n, size=m)
        cols = rng.integers(0, n, size=m)
        if integer_weights:  # heavy ties exercise stable tie-breaking
            weights = rng.integers(1, 4, size=m).astype(float)
        else:
            weights = rng.random(m) + 0.01
        if zero_fraction > 0:
            weights[rng.random(m) < zero_fraction] = 0.0
        if hubs:
            hub_rows = np.repeat(rng.choice(n, size=hubs, replace=False), hub_degree)
            hub_cols = rng.integers(0, n, size=hubs * hub_degree)
            hub_weights = rng.random(hubs * hub_degree) + 0.01
            rows = np.concatenate([rows, hub_rows])
            cols = np.concatenate([cols, hub_cols])
            weights = np.concatenate([weights, hub_weights])
        a = sp.coo_matrix((weights, (rows, cols)), shape=(n, n)).tocsr()
        a.sum_duplicates()
        matrices.append(a)
    return matrices


GRAPH_CASES = {
    # name: (n, density, hubs, hub_degree, zero_fraction, integer_weights)
    "sparse": (120, 2.0, 0, 0, 0.0, False),
    "hubs": (300, 1.0, 3, 120, 0.0, False),  # argpartition-loop branch
    "zero_weights": (200, 3.0, 0, 0, 0.4, False),
    "narrow_tied": (400, 6.0, 0, 0, 0.0, True),  # padded-argsort branch
    "wide_tied": (300, 40.0, 0, 0, 0.0, True),  # padded-partition branch
}


def seed_variants(n: int, rng: np.random.Generator):
    plain = rng.choice(n, size=16, replace=False)
    dup = np.concatenate([plain[:8], plain[:4]])
    return {"plain": plain, "dup": dup, "empty": np.array([], dtype=np.int64)}


@pytest.mark.parametrize("graph", sorted(GRAPH_CASES))
@pytest.mark.parametrize("fanout", [None, 0, 1, 3, 10])
class TestSamplerEquivalence:
    def test_topk_matches_reference(self, graph, fanout):
        n, *params = GRAPH_CASES[graph]
        for seed in (0, 1):
            adjacencies = random_adjacencies(n, *params, seed=seed)
            variants = seed_variants(n, np.random.default_rng(seed + 50))
            for hops in (0, 1, 2, 3):
                for name, seeds in variants.items():
                    vectorized = sample_khop_nodes(
                        adjacencies, seeds, hops, fanout, None
                    )
                    reference = sample_khop_nodes_reference(
                        adjacencies, seeds, hops, fanout, None
                    )
                    np.testing.assert_array_equal(
                        vectorized, reference, err_msg=f"{graph}/{name}/hops={hops}"
                    )

    def test_weighted_draws_match_reference_and_rng_stream(self, graph, fanout):
        if fanout is None:
            pytest.skip("weighted draws need a finite fanout")
        n, *params = GRAPH_CASES[graph]
        adjacencies = random_adjacencies(n, *params, seed=3)
        seeds = seed_variants(n, np.random.default_rng(99))["plain"]
        for hops in (1, 2):
            rng_vec = np.random.default_rng(42)
            rng_ref = np.random.default_rng(42)
            vectorized = sample_khop_nodes(adjacencies, seeds, hops, fanout, rng_vec)
            reference = sample_khop_nodes_reference(
                adjacencies, seeds, hops, fanout, rng_ref
            )
            np.testing.assert_array_equal(vectorized, reference)
            # Both paths must leave the generator at the same position, or
            # training runs would diverge after the first batch.
            assert rng_vec.integers(0, 1 << 30) == rng_ref.integers(0, 1 << 30)


class TestInductionEquivalence:
    @pytest.mark.parametrize("graph", sorted(GRAPH_CASES))
    def test_induced_matrices_identical(self, graph):
        n, *params = GRAPH_CASES[graph]
        adjacencies = random_adjacencies(n, *params, seed=5)
        nodes = sample_khop_nodes(
            adjacencies, np.random.default_rng(7).choice(n, 16), 2, 10
        )
        for vec, ref in zip(
            induced_adjacencies(adjacencies, nodes),
            induced_adjacencies_reference(adjacencies, nodes),
        ):
            assert vec.shape == ref.shape == (len(nodes), len(nodes))
            assert (vec != ref).nnz == 0

    def test_induction_preserves_row_order_of_nodes(self):
        adjacencies = random_adjacencies(50, 4.0, seed=11)
        nodes = np.array([30, 4, 17, 8])
        sub = induced_adjacencies(adjacencies, nodes)[0]
        dense = adjacencies[0].toarray()[np.ix_(nodes, nodes)]
        np.testing.assert_allclose(sub.toarray(), dense)


class TestEdgeCases:
    def test_zero_weight_support_smaller_than_fanout(self):
        # One segment whose nonzero support is below the fanout: the draw
        # must keep the whole support and top up with zero-weight entries
        # in index order — on both paths, consuming the same stream.
        weights = np.array([0.0, 2.0, 0.0, 0.0, 0.0])
        star = sp.csr_matrix(
            (weights, (np.zeros(5, dtype=int), np.arange(1, 6))), shape=(7, 7)
        )
        rng_vec = np.random.default_rng(0)
        rng_ref = np.random.default_rng(0)
        vectorized = sample_khop_nodes([star], np.array([0]), 1, 3, rng_vec)
        reference = sample_khop_nodes_reference([star], np.array([0]), 1, 3, rng_ref)
        np.testing.assert_array_equal(vectorized, reference)
        assert rng_vec.integers(0, 1 << 30) == rng_ref.integers(0, 1 << 30)

    def test_all_weights_zero_with_fanout_zero(self):
        star = sp.csr_matrix(
            (np.zeros(4), (np.zeros(4, dtype=int), np.arange(1, 5))), shape=(5, 5)
        )
        rng = np.random.default_rng(0)
        nodes = sample_khop_nodes([star], np.array([0]), 1, 0, rng)
        np.testing.assert_array_equal(nodes, [0])

    def test_empty_adjacency_list_of_empty_matrices(self):
        empties = [sp.csr_matrix((20, 20)) for _ in range(2)]
        seeds = np.array([3, 1])
        for fanout in (None, 2):
            np.testing.assert_array_equal(
                sample_khop_nodes(empties, seeds, 2, fanout),
                sample_khop_nodes_reference(empties, seeds, 2, fanout),
            )
