"""Full-graph and incremental materialization parity (lambda batch tier).

Pinned contracts (see ``docs/LAMBDA.md`` — Full-graph materialization):

* :func:`~repro.core.lambda_infer.materialize_fullgraph` produces a
  :class:`~repro.core.lambda_infer.HAGState` **byte-identical** to the
  legacy per-user union replay (:func:`~repro.core.lambda_infer.materialize`)
  — scores, subgraph CSR, and every layer array — at any chunk size and
  any slice split, with or without an executor (a dead executor slot is
  recomputed in-process);
* :func:`~repro.core.lambda_infer.rematerialize` recomputes only the
  delta's affected cone: at zero delta the refreshed state is a byte copy
  of the prior, under randomized delta batches the scores are byte-equal
  to a fresh full pass while untouched layer rows are byte copies of the
  prior (only ``layer_rows`` rows may differ), and provenance changes
  (new transaction / as-of) force a recompute of exactly those targets;
* an incompatible prior (hops/fanout drift, missing layer arrays) raises
  ``ValueError`` so callers fall back to the full sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HAG, materialize
from repro.core.lambda_infer import (
    SliceResult,
    materialize_fullgraph,
    rematerialize,
    score_slice,
)
from repro.datagen import BehaviorType
from repro.network import BehaviorNetwork, build_sampled_graph

TYPES = (BehaviorType.DEVICE_ID, BehaviorType.IPV4, BehaviorType.WIFI_MAC)
HOPS, FANOUT = 2, 6
IN_DIM = 5


def build_bn(seed=0, n_users=140, n_edges=700):
    rng = np.random.default_rng(seed)
    bn = BehaviorNetwork()
    u = rng.integers(0, n_users, size=n_edges)
    v = rng.integers(0, n_users, size=n_edges)
    for uu, vv, code, w, ts in zip(
        u,
        v,
        rng.integers(0, len(TYPES), size=n_edges),
        rng.uniform(0.1, 3.0, size=n_edges),
        rng.uniform(0.0, 500.0, size=n_edges),
    ):
        if uu != vv:
            bn.add_weight(int(uu), int(vv), TYPES[int(code)], float(w), float(ts))
    return bn


def add_delta(bn, seed, count, n_users=140):
    """Apply one random delta batch; returns the touched uids."""
    rng = np.random.default_rng(seed)
    touched = set()
    for _ in range(count):
        uu = int(rng.integers(0, n_users))
        vv = int(rng.integers(0, n_users))
        if uu == vv:
            continue
        bn.add_weight(
            uu, vv, TYPES[int(rng.integers(0, len(TYPES)))],
            float(rng.uniform(0.5, 2.0)), 600.0,
        )
        touched |= {uu, vv}
    return touched


@pytest.fixture(scope="module")
def setup():
    bn = build_bn()
    types = tuple(sorted(bn.edge_types(), key=lambda t: t.value))
    rng = np.random.default_rng(5)
    model = HAG(
        IN_DIM, len(types), rng, hidden=(8, 4), cfo_out_dim=2, mlp_hidden=(4,)
    )
    features = rng.normal(size=(200, IN_DIM))
    targets = sorted(int(t) for t in np.random.default_rng(6).choice(
        sorted(bn.nodes()), size=60, replace=False
    ))
    return bn, model, features, types, targets


def feature_fn_for(features):
    return lambda k, nodes: features[np.asarray(nodes, dtype=np.int64)]


def run_replay(setup_tuple, **kwargs):
    bn, model, features, types, targets = setup_tuple
    return materialize(
        model, bn, targets, [10 * t for t in targets], [float(t) for t in targets],
        feature_fn_for(features),
        hops=HOPS, fanout=FANOUT, edge_type_order=types,
        layer_features=features[np.asarray(targets, dtype=np.int64)],
        **kwargs,
    )


def run_fullgraph(setup_tuple, **kwargs):
    bn, model, features, types, targets = setup_tuple
    return materialize_fullgraph(
        model, bn, targets, [10 * t for t in targets], [float(t) for t in targets],
        feature_fn_for(features),
        hops=HOPS, fanout=FANOUT, edge_type_order=types,
        layer_features=features[np.asarray(targets, dtype=np.int64)],
        **kwargs,
    )


def assert_states_bitexact(got, want):
    got_arrays, want_arrays = got.to_arrays(), want.to_arrays()
    assert got_arrays.keys() == want_arrays.keys()
    for name in want_arrays:
        assert got_arrays[name].tobytes() == want_arrays[name].tobytes(), name


class TestFullGraphParity:
    def test_bitexact_vs_replay(self, setup):
        want, want_stats = run_replay(setup)
        got, got_stats, mstats = run_fullgraph(setup)
        assert_states_bitexact(got, want)
        assert got_stats == want_stats
        assert mstats.mode == "full"
        assert mstats.rows_computed == len(setup[4])
        assert mstats.edges_touched > 0

    @pytest.mark.parametrize("chunk", (1, 7, 256))
    def test_chunking_does_not_change_bits(self, setup, chunk):
        want, _, _ = run_fullgraph(setup)
        got, _, _ = run_fullgraph(setup, chunk=chunk)
        assert_states_bitexact(got, want)

    def test_slices_and_dead_executor_slots(self, setup):
        """Executor results splice bit-exactly; dead (None) slots recompute."""
        bn, model, features, types, targets = setup
        sampled = build_sampled_graph(bn, FANOUT)
        node_ids = np.asarray(targets, dtype=np.int64)
        calls = []

        def executor(bounds):
            # Serve even slices like a worker would, drop odd ones.
            calls.append(list(bounds))
            out = []
            for i, (lo, hi) in enumerate(bounds):
                if i % 2:
                    out.append(None)
                    continue
                result = score_slice(
                    model, sampled, node_ids,
                    np.arange(lo, hi, dtype=np.int64),
                    feature_fn_for(features),
                    hops=HOPS, edge_type_order=types,
                    allowed_mask=sampled.allowed_mask(None),
                    transform=None, chunk=256,
                )
                out.append(SliceResult.from_arrays(result.to_arrays()))
            return out

        want, want_stats, _ = run_fullgraph(setup)
        got, got_stats, mstats = run_fullgraph(
            setup, sampled=sampled, executor=executor, slices=5
        )
        assert_states_bitexact(got, want)
        assert got_stats == want_stats
        assert mstats.slices == 5
        assert len(calls) == 1 and len(calls[0]) == 5

    def test_version_mismatch_rejected(self, setup):
        bn, model, features, types, targets = setup
        sampled = build_sampled_graph(bn, FANOUT)
        other = build_bn(seed=9)
        with pytest.raises(ValueError):
            materialize_fullgraph(
                model, other, targets[:4], [1, 2, 3, 4], [0.0] * 4,
                feature_fn_for(features),
                hops=HOPS, fanout=FANOUT, edge_type_order=types, sampled=sampled,
            )


class TestIncremental:
    def run_incremental(self, setup_tuple, prior, touched):
        bn, model, features, types, targets = setup_tuple

        def layer_row_fn(rows):
            return features[np.asarray(targets, dtype=np.int64)[rows]]

        return rematerialize(
            model, bn, prior, targets,
            [10 * t for t in targets], [float(t) for t in targets],
            feature_fn_for(features),
            hops=HOPS, fanout=FANOUT, edge_type_order=types,
            touched=touched, layer_row_fn=layer_row_fn,
        )

    def test_zero_delta_is_byte_noop(self, setup):
        prior, _, _ = run_fullgraph(setup)
        state, _, mstats = self.run_incremental(setup, prior, {})
        assert mstats.mode == "incremental"
        assert mstats.rows_computed == 0
        assert mstats.layer_rows == 0
        assert_states_bitexact(state, prior)

    @pytest.mark.parametrize("delta_seed", (1, 2, 3))
    def test_randomized_delta_cone(self, delta_seed):
        """Cone property: scores byte-equal a fresh full pass; untouched
        layer rows are byte copies of the prior."""
        # Sparse on purpose: with mean degree ~2 a two-hop reverse cone
        # around a couple of touched edges stays far from covering the
        # whole target set, so the O(affected) claim is actually exercised.
        bn = build_bn(seed=delta_seed + 50, n_users=800, n_edges=800)
        types = tuple(sorted(bn.edge_types(), key=lambda t: t.value))
        rng = np.random.default_rng(5)
        model = HAG(
            IN_DIM, len(types), rng, hidden=(8, 4), cfo_out_dim=2, mlp_hidden=(4,)
        )
        features = rng.normal(size=(900, IN_DIM))
        targets = sorted(bn.nodes())[:300]
        local = (bn, model, features, types, targets)

        prior, _, _ = run_fullgraph(local)
        touched_uids = add_delta(bn, seed=delta_seed, count=2, n_users=800)
        touched = {uid: 1 for uid in touched_uids}

        fresh, fresh_stats, _ = run_fullgraph(local)
        state, _, mstats = self.run_incremental(local, prior, touched)

        # Scores and subgraphs: byte-equal the fresh full pass everywhere.
        assert state.scores.tobytes() == fresh.scores.tobytes()
        assert state.subgraph_indptr.tobytes() == fresh.subgraph_indptr.tobytes()
        assert state.subgraph_nodes.tobytes() == fresh.subgraph_nodes.tobytes()
        assert 0 < mstats.rows_computed < len(targets)

        # Layers: equal to fresh within numerics everywhere; rows that are
        # not byte copies of the prior are exactly the recomputed cone.
        recomputed = np.zeros(len(targets), dtype=bool)
        for name, want in fresh.layers.items():
            got = state.layers[name]
            np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)
            prior_arr = prior.layers[name]
            for row in range(len(targets)):
                if got[row].tobytes() != prior_arr[row].tobytes():
                    recomputed[row] = True
        assert int(recomputed.sum()) <= mstats.layer_rows

    def test_provenance_change_recomputes_target(self, setup):
        bn, model, features, types, targets = setup
        prior, _, _ = run_fullgraph(setup)

        def layer_row_fn(rows):
            return features[np.asarray(targets, dtype=np.int64)[rows]]

        txn_ids = [10 * t for t in targets]
        txn_ids[3] += 1  # one target has a newer transaction
        state, _, mstats = rematerialize(
            model, bn, prior, targets, txn_ids, [float(t) for t in targets],
            feature_fn_for(features),
            hops=HOPS, fanout=FANOUT, edge_type_order=types,
            touched={}, layer_row_fn=layer_row_fn,
        )
        assert mstats.rows_computed >= 1
        assert state.txn_ids[3] == txn_ids[3]
        # The graph did not change, so the recomputed score matches the prior.
        assert state.scores.tobytes() == prior.scores.tobytes()

    def test_hops_mismatch_rejected(self, setup):
        bn, model, features, types, targets = setup
        prior, _, _ = run_fullgraph(setup)
        with pytest.raises(ValueError):
            rematerialize(
                model, bn, prior, targets,
                [10 * t for t in targets], [float(t) for t in targets],
                feature_fn_for(features),
                hops=HOPS + 1, fanout=FANOUT, edge_type_order=types,
            )

    def test_missing_layer_arrays_rejected(self, setup):
        bn, model, features, types, targets = setup
        prior, _, _ = run_fullgraph(setup)
        prior.layers.pop("fused")
        try:
            with pytest.raises(ValueError):
                rematerialize(
                    model, bn, prior, targets,
                    [10 * t for t in targets], [float(t) for t in targets],
                    feature_fn_for(features),
                    hops=HOPS, fanout=FANOUT, edge_type_order=types,
                    layer_row_fn=lambda rows: features[
                        np.asarray(targets, dtype=np.int64)[rows]
                    ],
                )
        finally:
            prior.layers["fused"] = np.zeros((len(targets), 2))
