"""CFO operator tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CFOLayer
from repro.nn import Tensor


class TestCFOLayer:
    def make(self, rng, n_types=3, d=4, out=2) -> CFOLayer:
        return CFOLayer(n_types=n_types, embed_dim=d, att_dim=3, out_dim=out, rng=rng)

    def test_output_dim(self, rng):
        layer = self.make(rng)
        assert layer.output_dim == 2 * 3

    def test_forward_shape(self, rng):
        layer = self.make(rng)
        gen = np.random.default_rng(0)
        embeddings = [Tensor(gen.normal(size=(5, 4))) for _ in range(3)]
        assert layer(embeddings).shape == (5, 6)

    def test_wrong_type_count_rejected(self, rng):
        layer = self.make(rng)
        with pytest.raises(ValueError):
            layer([Tensor(np.zeros((5, 4)))])

    def test_zero_types_rejected(self, rng):
        with pytest.raises(ValueError):
            CFOLayer(n_types=0, embed_dim=4, att_dim=3, out_dim=2, rng=rng)

    def test_attention_matrix_rows_normalized(self, rng):
        layer = self.make(rng)
        gen = np.random.default_rng(1)
        embeddings = [Tensor(gen.normal(size=(6, 4))) for _ in range(3)]
        alpha = layer.attention_matrix(embeddings)
        assert alpha.shape == (6, 3, 3)
        np.testing.assert_allclose(alpha.sum(axis=2), 1.0, atol=1e-9)

    def test_node_wise_attention_differs_across_nodes(self, rng):
        """Micro-level adaptivity: different nodes get different mixes."""
        layer = self.make(rng)
        gen = np.random.default_rng(2)
        embeddings = [Tensor(gen.normal(size=(8, 4)) * (r + 1)) for r in range(3)]
        alpha = layer.attention_matrix(embeddings)
        assert alpha.std(axis=0).max() > 1e-4

    def test_gradients_reach_type_parameters(self, rng):
        layer = self.make(rng)
        gen = np.random.default_rng(3)
        embeddings = [
            Tensor(gen.normal(size=(5, 4)), requires_grad=True) for _ in range(3)
        ]
        layer(embeddings).sum().backward()
        for param in layer.parameters():
            assert param.grad is not None
        for emb in embeddings:
            assert emb.grad is not None

    def test_single_type_degenerates_gracefully(self, rng):
        layer = CFOLayer(n_types=1, embed_dim=4, att_dim=3, out_dim=2, rng=rng)
        out = layer([Tensor(np.random.default_rng(4).normal(size=(5, 4)))])
        assert out.shape == (5, 2)
