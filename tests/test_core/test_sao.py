"""SAO operator tests, including the Theorem 1 over-smoothing contrast."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import SAOLayer, neighbor_mean_matrix
from repro.nn import Tensor


def clique_adjacency(n: int) -> sp.csr_matrix:
    dense = np.ones((n, n)) - np.eye(n)
    return sp.csr_matrix(dense)


class TestNeighborMeanMatrix:
    def test_rows_sum_to_one(self):
        agg = neighbor_mean_matrix(clique_adjacency(4))
        np.testing.assert_allclose(np.asarray(agg.sum(axis=1)).ravel(), 1.0)

    def test_isolated_row_stays_zero(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 0.0]]))
        agg = neighbor_mean_matrix(matrix)
        np.testing.assert_allclose(agg.toarray()[2], 0.0)

    def test_weights_preserved_relatively(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0, 3.0], [1.0, 0.0, 0.0], [3.0, 0.0, 0.0]]))
        agg = neighbor_mean_matrix(matrix).toarray()
        assert agg[0, 2] == pytest.approx(3 * agg[0, 1])


class TestSAOLayer:
    def test_output_shape(self, rng):
        layer = SAOLayer(6, 4, att_dim=3, rng=rng)
        agg = neighbor_mean_matrix(clique_adjacency(5))
        out = layer(Tensor(np.random.default_rng(0).normal(size=(5, 6))), agg)
        assert out.shape == (5, 4)

    def test_attention_coefficients_simplex(self, rng):
        layer = SAOLayer(6, 4, att_dim=3, rng=rng)
        agg = neighbor_mean_matrix(clique_adjacency(5))
        alphas = layer.attention_coefficients(
            Tensor(np.random.default_rng(0).normal(size=(5, 6))), agg
        )
        assert alphas.shape == (5, 2)
        np.testing.assert_allclose(alphas.sum(axis=1), 1.0)
        assert (alphas >= 0).all()

    def test_no_attention_coefficients_are_ones(self, rng):
        layer = SAOLayer(6, 4, att_dim=3, rng=rng, use_attention=False)
        agg = neighbor_mean_matrix(clique_adjacency(5))
        alphas = layer.attention_coefficients(Tensor(np.zeros((5, 6))), agg)
        np.testing.assert_allclose(alphas, 1.0)

    def test_gradients_flow_to_all_parameters(self, rng):
        layer = SAOLayer(4, 3, att_dim=2, rng=rng)
        agg = neighbor_mean_matrix(clique_adjacency(4))
        x = Tensor(np.random.default_rng(1).normal(size=(4, 4)))
        layer(x, agg).sum().backward()
        for param in layer.parameters():
            assert param.grad is not None


class TestOverSmoothing:
    """Theorem 1: GCN-style aggregation collapses a clique; SAO does not."""

    @staticmethod
    def _spread(embeddings: np.ndarray) -> float:
        return float(np.linalg.norm(embeddings - embeddings.mean(axis=0)))

    def test_gcn_collapses_clique_sao_preserves(self, rng):
        n = 8
        features = np.random.default_rng(0).normal(size=(n, 6))
        clique = clique_adjacency(n)

        # GCN-style: aggregate over N ∪ {v} with no self/neighbour split.
        from repro.network.adjacency import row_normalize

        gcn_agg = row_normalize(clique + sp.eye(n, format="csr"))
        collapsed = np.asarray(gcn_agg @ features)
        # After one aggregation every clique node sees (almost) the same
        # neighbourhood: spread shrinks by ~n/(n-1) factors toward zero, and
        # a second round eliminates what is left.
        twice = np.asarray(gcn_agg @ collapsed)
        assert self._spread(twice) < 0.1 * self._spread(features)

        layer = SAOLayer(6, 6, att_dim=4, rng=rng)
        agg = neighbor_mean_matrix(clique)
        sao_once = layer(Tensor(features), agg).numpy()
        sao_layer2 = SAOLayer(6, 6, att_dim=4, rng=rng)
        sao_twice = sao_layer2(Tensor(sao_once), agg).numpy()
        # SAO keeps the self path: node identity survives two rounds.
        assert self._spread(sao_twice) > 0.1 * self._spread(features)

    def test_clique_neighborhood_identical_for_all_nodes(self):
        agg = neighbor_mean_matrix(clique_adjacency(5))
        features = np.random.default_rng(1).normal(size=(5, 3))
        neighbor_means = np.asarray(agg @ features)
        # In a uniform clique, h_N differs only by the excluded self row.
        spread = neighbor_means.std(axis=0).max()
        assert spread < features.std(axis=0).max()
