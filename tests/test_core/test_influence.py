"""Influence score/distribution tests (Definition 1)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import influence_distribution, influence_scores, influence_scores_batch
from repro.nn import Linear, Tensor, spmm


class TestInfluence:
    def test_linear_model_influence_matches_jacobian(self, rng):
        """For h = A @ X @ W the influence is exactly |A_ij| * sum|W|."""
        n, d = 5, 3
        a = sp.csr_matrix(np.random.default_rng(0).random((n, n)))
        layer = Linear(d, 2, rng, bias=False)
        forward = lambda x: spmm(a, layer(x))
        features = np.random.default_rng(1).normal(size=(n, d))
        scores = influence_scores(forward, features, node=0)
        w_abs = np.abs(layer.weight.numpy()).sum()
        expected = np.abs(a.toarray()[0]) * w_abs
        np.testing.assert_allclose(scores, expected, rtol=1e-9)

    def test_distribution_sums_to_one(self, rng):
        n, d = 6, 4
        a = sp.csr_matrix(np.random.default_rng(2).random((n, n)))
        layer = Linear(d, 3, rng)
        forward = lambda x: spmm(a, layer(x)).tanh()
        dist = influence_distribution(forward, np.random.default_rng(3).normal(size=(n, d)), node=2)
        np.testing.assert_allclose(dist.sum(), 1.0)
        assert (dist >= 0).all()

    def test_disconnected_node_self_influence(self, rng):
        layer = Linear(3, 2, rng)
        forward = lambda x: layer(x)  # no mixing between rows
        dist = influence_distribution(forward, np.random.default_rng(4).normal(size=(4, 3)), node=1)
        np.testing.assert_allclose(dist[1], 1.0)
        np.testing.assert_allclose(np.delete(dist, 1), 0.0)

    def test_out_of_range_node_rejected(self, rng):
        layer = Linear(3, 2, rng)
        with pytest.raises(ValueError):
            influence_scores(lambda x: layer(x), np.zeros((3, 3)), node=5)

    def test_zero_model_distribution_degenerates_to_self(self):
        forward = lambda x: x * 0.0
        dist = influence_distribution(forward, np.ones((3, 2)), node=0)
        np.testing.assert_allclose(dist, [1.0, 0.0, 0.0])


class TestInfluenceBatch:
    def _forward(self, rng, n=7, d=4):
        a = sp.csr_matrix(np.random.default_rng(5).random((n, n)))
        layer = Linear(d, 3, rng)
        return (lambda x: spmm(a, layer(x)).tanh()), np.random.default_rng(
            6
        ).normal(size=(n, d))

    def test_bit_exact_vs_scalar_loop(self, rng):
        """One shared forward graph reproduces the per-node loop bit-for-bit."""
        forward, features = self._forward(rng)
        nodes = [0, 3, 3, 6]  # duplicates allowed: rows are independent
        batch = influence_scores_batch(forward, features, nodes)
        assert batch.shape == (len(nodes), features.shape[0])
        for row, node in zip(batch, nodes):
            scalar = influence_scores(forward, features, node)
            assert row.tobytes() == scalar.tobytes()

    def test_empty_batch(self, rng):
        forward, features = self._forward(rng)
        batch = influence_scores_batch(forward, features, [])
        assert batch.shape == (0, features.shape[0])

    def test_out_of_range_node_rejected(self, rng):
        forward, features = self._forward(rng)
        with pytest.raises(ValueError):
            influence_scores_batch(forward, features, [0, 99])
