"""Threshold calibration tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import threshold_for_fbeta, threshold_for_precision
from repro.eval.metrics import precision_score, recall_score


def scored_problem():
    labels = np.array([1, 1, 1, 1, 0, 0, 0, 0, 1, 0])
    scores = np.array([0.95, 0.9, 0.8, 0.7, 0.65, 0.4, 0.3, 0.2, 0.15, 0.1])
    return labels, scores


class TestThresholdForPrecision:
    def test_meets_precision_floor(self):
        labels, scores = scored_problem()
        point = threshold_for_precision(labels, scores, min_precision=0.9)
        predicted = (scores >= point.threshold).astype(int)
        assert precision_score(labels, predicted) >= 0.9

    def test_maximizes_recall_at_floor(self):
        labels, scores = scored_problem()
        point = threshold_for_precision(labels, scores, min_precision=1.0)
        # Perfect precision is achievable down to 0.7 (4 positives).
        assert point.recall == pytest.approx(4 / 5)
        assert point.threshold == pytest.approx(0.7)

    def test_falls_back_to_most_conservative(self):
        labels = np.array([0, 1])
        scores = np.array([0.9, 0.1])  # top-scored example is negative
        point = threshold_for_precision(labels, scores, min_precision=0.99)
        assert point.threshold == pytest.approx(0.9)

    def test_invalid_floor(self):
        labels, scores = scored_problem()
        with pytest.raises(ValueError):
            threshold_for_precision(labels, scores, min_precision=0.0)

    def test_reported_metrics_match_reality(self):
        labels, scores = scored_problem()
        point = threshold_for_precision(labels, scores, min_precision=0.75)
        predicted = (scores >= point.threshold).astype(int)
        assert point.precision == pytest.approx(precision_score(labels, predicted))
        assert point.recall == pytest.approx(recall_score(labels, predicted))


class TestThresholdForFbeta:
    def test_maximizes_f1(self):
        labels, scores = scored_problem()
        point = threshold_for_fbeta(labels, scores, beta=1.0)
        # Check no other cut does better.
        from repro.eval.metrics import fbeta_score

        best = fbeta_score(labels, (scores >= point.threshold).astype(int), 1.0)
        for cut in np.unique(scores):
            other = fbeta_score(labels, (scores >= cut).astype(int), 1.0)
            assert best >= other - 1e-12

    def test_beta_shifts_toward_recall(self):
        labels, scores = scored_problem()
        f1_point = threshold_for_fbeta(labels, scores, beta=1.0)
        f4_point = threshold_for_fbeta(labels, scores, beta=4.0)
        assert f4_point.recall >= f1_point.recall

    def test_invalid_beta(self):
        labels, scores = scored_problem()
        with pytest.raises(ValueError):
            threshold_for_fbeta(labels, scores, beta=0.0)
