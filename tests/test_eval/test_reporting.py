"""Reporting helper tests."""

from __future__ import annotations

import pytest

from repro.eval.reporting import format_percentiles, format_series, format_table


class TestFormatTable:
    def test_basic_render(self):
        text = format_table(
            {"HAG": {"AUC": 83.13, "F1": 77.91}},
            columns=["AUC", "F1"],
            title="Table III",
        )
        assert "Table III" in text
        assert "HAG" in text
        assert "83.13" in text

    def test_missing_cell_is_nan(self):
        text = format_table({"X": {"A": 1.0}}, columns=["A", "B"])
        assert "nan" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_table({})

    def test_columns_inferred(self):
        text = format_table({"X": {"A": 1.0, "B": 2.0}})
        assert "A" in text and "B" in text


class TestSeriesAndPercentiles:
    def test_series_pairs(self):
        text = format_series("hop ratio", [1, 2], [0.5, 0.25])
        assert "(1, 0.500)" in text and "(2, 0.250)" in text

    def test_percentiles(self):
        text = format_percentiles("total", [100.0] * 99 + [1000.0])
        assert "p50=100ms" in text
        assert "mean=" in text
