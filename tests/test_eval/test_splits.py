"""UID split tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import split_by_uid


class TestSplitByUid:
    def test_partition(self):
        uids = list(range(50))
        split = split_by_uid(uids, test_fraction=0.2, rng=np.random.default_rng(0))
        assert split.train_uids | split.test_uids == set(uids)
        assert not split.train_uids & split.test_uids

    def test_stratification_keeps_positives_in_both(self):
        uids = list(range(100))
        labels = {u: int(u < 10) for u in uids}
        split = split_by_uid(uids, labels, 0.2, np.random.default_rng(0))
        assert any(labels[u] for u in split.test_uids)
        assert any(labels[u] for u in split.train_uids)

    def test_duplicate_uids_deduped(self):
        split = split_by_uid([1, 1, 2, 2, 3, 4, 5], test_fraction=0.4)
        assert split.train_uids | split.test_uids == {1, 2, 3, 4, 5}

    def test_masks_align(self):
        uids = list(range(20))
        split = split_by_uid(uids, test_fraction=0.25, rng=np.random.default_rng(1))
        train_mask = split.train_mask(uids)
        test_mask = split.test_mask(uids)
        assert (train_mask ^ test_mask).all()

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            split_by_uid([1, 2, 3], test_fraction=1.0)

    def test_too_few_uids(self):
        with pytest.raises(ValueError):
            split_by_uid([1], test_fraction=0.5)

    def test_deterministic_given_rng(self):
        uids = list(range(30))
        a = split_by_uid(uids, test_fraction=0.3, rng=np.random.default_rng(5))
        b = split_by_uid(uids, test_fraction=0.3, rng=np.random.default_rng(5))
        assert a.test_uids == b.test_uids


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(5, 200),
    fraction=st.floats(0.05, 0.5),
    seed=st.integers(0, 10**6),
)
def test_property_split_sizes_reasonable(n, fraction, seed):
    uids = list(range(n))
    split = split_by_uid(uids, test_fraction=fraction, rng=np.random.default_rng(seed))
    assert 1 <= len(split.test_uids) < n
    assert len(split.train_uids) + len(split.test_uids) == n
