"""Empirical-study (Fig. 4) analysis tests on the tiny dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import BehaviorType
from repro.eval.empirical import (
    hop_degrees,
    hop_fraud_ratios,
    temporal_aggregation_intervals,
    time_burst_summary,
)


class TestTimeBurst:
    def test_summaries_computed_for_both_classes(self, tiny_dataset):
        fraud = time_burst_summary(tiny_dataset, fraud=True)
        normal = time_burst_summary(tiny_dataset, fraud=False)
        assert fraud.n_users > 0 and normal.n_users > 0
        assert 0.0 <= fraud.near_application_fraction <= 1.0

    def test_fraud_more_concentrated(self, tiny_dataset):
        fraud = time_burst_summary(tiny_dataset, fraud=True)
        normal = time_burst_summary(tiny_dataset, fraud=False)
        assert fraud.near_application_fraction > normal.near_application_fraction


class TestTemporalAggregation:
    def test_intervals_nonnegative(self, tiny_dataset):
        intervals = temporal_aggregation_intervals(
            tiny_dataset, BehaviorType.DEVICE_ID, fraud_pairs=True
        )
        assert (intervals >= 0).all()

    def test_fraud_intervals_shorter(self, tiny_dataset):
        fraud = temporal_aggregation_intervals(
            tiny_dataset, BehaviorType.DEVICE_ID, fraud_pairs=True
        )
        normal = temporal_aggregation_intervals(
            tiny_dataset, BehaviorType.WIFI_MAC, fraud_pairs=False
        )
        if len(fraud) > 5 and len(normal) > 5:
            assert np.median(fraud) < np.median(normal)


class TestHomophily:
    def test_fraud_neighborhood_more_fraudulent(self, tiny_dataset, tiny_bn):
        labels = tiny_dataset.labels
        fraud_ratios = hop_fraud_ratios(tiny_bn, labels, fraud=True, max_hops=2)
        normal_ratios = hop_fraud_ratios(tiny_bn, labels, fraud=False, max_hops=2)
        assert fraud_ratios[0] > normal_ratios[0]

    def test_per_type_restriction_runs(self, tiny_dataset, tiny_bn):
        labels = tiny_dataset.labels
        ratios = hop_fraud_ratios(
            tiny_bn, labels, fraud=True, max_hops=2, btype=BehaviorType.DEVICE_ID
        )
        assert len(ratios) == 2


class TestStructure:
    def test_hop_degree_lengths(self, tiny_dataset, tiny_bn):
        labels = tiny_dataset.labels
        degrees = hop_degrees(tiny_bn, labels, fraud=True, max_hops=2)
        assert len(degrees) == 3  # hops 0..2

    def test_weighted_degree_separation(self, tiny_dataset, tiny_bn):
        labels = tiny_dataset.labels
        fraud_w = hop_degrees(tiny_bn, labels, fraud=True, weighted=True)[0]
        normal_w = hop_degrees(tiny_bn, labels, fraud=False, weighted=True)[0]
        assert np.isfinite(fraud_w) and np.isfinite(normal_w)
