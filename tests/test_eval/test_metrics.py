"""Metric tests: exact values + property-based invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    classification_report,
    confusion,
    f1_score,
    fbeta_score,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)

LABELS = np.array([1, 0, 1, 1, 0, 0])
PRED = np.array([1, 0, 0, 1, 1, 0])


class TestConfusionAndPR:
    def test_confusion_counts(self):
        assert confusion(LABELS, PRED) == (2, 1, 1, 2)

    def test_precision(self):
        assert precision_score(LABELS, PRED) == pytest.approx(2 / 3)

    def test_recall(self):
        assert recall_score(LABELS, PRED) == pytest.approx(2 / 3)

    def test_no_predictions_zero_precision(self):
        assert precision_score(LABELS, np.zeros(6)) == 0.0

    def test_f1_harmonic_mean(self):
        assert f1_score(LABELS, PRED) == pytest.approx(2 / 3)

    def test_f2_weights_recall(self):
        labels = np.array([1, 1, 1, 1, 0])
        predicted = np.array([1, 0, 0, 0, 0])  # precision 1, recall 0.25
        f1 = fbeta_score(labels, predicted, 1.0)
        f2 = fbeta_score(labels, predicted, 2.0)
        f05 = fbeta_score(labels, predicted, 0.5)
        assert f2 < f1 < f05

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            fbeta_score(LABELS, PRED, 0.0)

    def test_nonbinary_labels_rejected(self):
        with pytest.raises(ValueError):
            precision_score(np.array([0, 2]), np.array([0, 1]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            precision_score(np.array([0, 1]), np.array([1]))


class TestAUC:
    def test_perfect_separation(self):
        assert roc_auc_score(np.array([0, 0, 1, 1]), np.array([0.1, 0.2, 0.8, 0.9])) == 1.0

    def test_inverted_is_zero(self):
        assert roc_auc_score(np.array([1, 1, 0, 0]), np.array([0.1, 0.2, 0.8, 0.9])) == 0.0

    def test_all_ties_is_half(self):
        assert roc_auc_score(np.array([0, 1, 0, 1]), np.ones(4)) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.ones(4), np.arange(4.0))

    def test_known_value_with_ties(self):
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.9, 0.9, 0.4, 0.1])
        # pairs: (1a,0a)=0.5, (1a,0b)=1, (1b,0a)=0, (1b,0b)=1 -> 2.5/4
        assert roc_auc_score(labels, scores) == pytest.approx(0.625)

    def test_roc_curve_endpoints(self):
        fpr, tpr, thresholds = roc_curve(LABELS, np.linspace(0, 1, 6))
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)
        assert thresholds[0] == np.inf


class TestReport:
    def test_report_fields(self):
        report = classification_report(LABELS, PRED.astype(float))
        assert report.precision == pytest.approx(2 / 3)
        percentages = report.as_percentages()
        assert set(percentages) == {"Precision", "Recall", "F1", "F2", "AUC"}
        assert percentages["Precision"] == pytest.approx(100 * 2 / 3)

    def test_threshold_applies(self):
        scores = np.array([0.9, 0.1, 0.6, 0.7, 0.2, 0.3])
        strict = classification_report(LABELS, scores, threshold=0.95)
        assert strict.recall == 0.0


@settings(max_examples=40, deadline=None)
@given(
    scores=st.lists(st.floats(0.01, 0.99), min_size=4, max_size=30),
    labels_seed=st.integers(0, 10**6),
)
def test_property_auc_invariant_under_monotone_transform(scores, labels_seed):
    from hypothesis import assume

    scores = np.asarray(scores)
    transformed = 1 / (1 + np.exp(-5 * scores))
    # The invariance requires the transform to preserve the tie structure;
    # floating-point rounding can merge nearly-equal scores, so skip those.
    assume(len(np.unique(transformed)) == len(np.unique(scores)))
    rng = np.random.default_rng(labels_seed)
    labels = rng.integers(0, 2, size=len(scores))
    if labels.sum() in (0, len(labels)):
        labels[0] = 1 - labels[0]
    base = roc_auc_score(labels, scores)
    squashed = roc_auc_score(labels, transformed)
    assert base == pytest.approx(squashed, abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(4, 40),
    seed=st.integers(0, 10**6),
    beta=st.floats(0.25, 4.0),
)
def test_property_fbeta_between_min_and_max_of_pr(n, seed, beta):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    predicted = rng.integers(0, 2, size=n)
    if labels.sum() in (0, n):
        labels[0] = 1 - labels[0]
    p = precision_score(labels, predicted)
    r = recall_score(labels, predicted)
    f = fbeta_score(labels, predicted, beta)
    assert min(p, r) - 1e-12 <= f <= max(p, r) + 1e-12
