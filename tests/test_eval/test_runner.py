"""Experiment runner tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import prepare_experiment, repeat_method, run_method


class TestPrepareExperiment:
    def test_bundle_shapes(self, tiny_experiment):
        data = tiny_experiment
        n = len(data.nodes)
        assert data.features.shape[0] == n
        assert data.labels.shape == (n,)
        assert data.merged.shape == (n, n)
        for matrix in data.adjacencies.values():
            assert matrix.shape == (n, n)

    def test_split_partitions_rows(self, tiny_experiment):
        data = tiny_experiment
        combined = np.concatenate([data.train_idx, data.val_idx, data.test_idx])
        assert len(combined) == len(data.nodes)
        assert len(set(combined.tolist())) == len(data.nodes)

    def test_features_standardized_on_train(self, tiny_experiment):
        data = tiny_experiment
        means = data.features[data.train_idx].mean(axis=0)
        np.testing.assert_allclose(means, 0.0, atol=1e-8)

    def test_test_set_has_both_classes(self, tiny_experiment):
        labels = tiny_experiment.labels[tiny_experiment.test_idx]
        assert 0 < labels.sum() < len(labels)

    def test_pos_weight_at_least_one(self, tiny_experiment):
        assert tiny_experiment.pos_weight() >= 1.0

    def test_include_stats_widens_features(
        self, tiny_experiment, tiny_experiment_with_stats
    ):
        assert (
            tiny_experiment_with_stats.features.shape[1]
            > tiny_experiment.features.shape[1]
        )


class TestRunMethod:
    @staticmethod
    def constant_method(data, seed):
        return np.full(len(data.nodes), 0.5)

    @staticmethod
    def oracle_method(data, seed):
        return data.labels.astype(float)

    def test_oracle_scores_perfectly(self, tiny_experiment):
        report, scores = run_method(self.oracle_method, tiny_experiment)
        assert report.auc == 1.0
        assert report.recall == 1.0
        assert len(scores) == len(tiny_experiment.nodes)

    def test_wrong_score_length_rejected(self, tiny_experiment):
        with pytest.raises(ValueError):
            run_method(lambda d, s: np.zeros(3), tiny_experiment)

    def test_repeat_method_aggregates(self, tiny_experiment):
        calls = []

        def noisy(data, seed):
            calls.append(seed)
            rng = np.random.default_rng(seed)
            return data.labels * 0.5 + rng.uniform(0, 0.5, size=len(data.nodes))

        result = repeat_method("noisy", noisy, tiny_experiment, seeds=(0, 1, 2))
        assert calls == [0, 1, 2]
        assert result.auc_variance >= 0.0
        row = result.row()
        assert "Variance" in row and "AUC" in row
