"""CLI tests for the system-level commands (tiny scale, slowish)."""

from __future__ import annotations

from repro.cli import main


class TestServeCommand:
    def test_serve_prints_telemetry(self, capsys):
        code = main(
            ["--scale", "0.06", "--seed", "3", "serve", "--requests", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "requests=5" in out
        assert "prediction" in out

    def test_serve_without_cache(self, capsys):
        code = main(
            [
                "--scale",
                "0.06",
                "--seed",
                "3",
                "serve",
                "--requests",
                "3",
                "--no-cache",
            ]
        )
        assert code == 0
        assert "requests=3" in capsys.readouterr().out


class TestAbtestCommand:
    def test_abtest_prints_ratios(self, capsys):
        code = main(["--scale", "0.06", "--seed", "3", "abtest"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline fraud ratio" in out
        assert "online precision" in out
