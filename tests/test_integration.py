"""Cross-module integration tests: the full pipeline at tiny scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    HAG,
    BNBuilder,
    classification_report,
    computation_subgraph,
    get_method,
    make_d1,
    prepare_aggregators,
    prepare_experiment,
    run_method,
)
from repro.core import TrainConfig, train_node_classifier
from repro.network import FAST_WINDOWS


class TestOfflinePipeline:
    def test_hag_beats_chance_end_to_end(self, tiny_experiment):
        """generator -> BN -> features -> HAG -> metrics, all wired."""
        report, scores = run_method(get_method("HAG"), tiny_experiment, seed=0)
        assert report.auc > 0.6
        assert len(scores) == len(tiny_experiment.nodes)

    def test_graph_signal_adds_over_features(self, tiny_experiment):
        """HAG (graph + features) should not lose badly to LR (features)."""
        lr_report, _ = run_method(get_method("LR"), tiny_experiment, seed=0)
        hag_report, _ = run_method(get_method("HAG"), tiny_experiment, seed=0)
        assert hag_report.auc >= lr_report.auc - 0.05

    def test_public_api_quickstart(self):
        """The README quickstart must keep working."""
        dataset = make_d1(scale=0.06, seed=3)
        data = prepare_experiment(dataset, windows=FAST_WINDOWS)
        report, _scores = run_method(get_method("GBDT"), data)
        assert 0.0 <= report.auc <= 1.0


class TestInductiveConsistency:
    def test_subgraph_prediction_close_to_full_graph(self, tiny_experiment):
        """Inductive scoring on G_v approximates the full-graph score.

        With no fanout cap the 2-hop computation subgraph contains everything
        a 2-layer HAG needs, so the prediction should be close (it is not
        exactly equal: the per-node 1/deg(v) renormalization sees only the
        subgraph's rows for nodes at the boundary).
        """
        data = tiny_experiment
        rng = np.random.default_rng(0)
        model = HAG(
            data.features.shape[1],
            n_types=len(data.edge_types),
            rng=rng,
            hidden=(16, 8),
            att_dim=8,
            cfo_att_dim=8,
            cfo_out_dim=4,
            mlp_hidden=(8,),
        )
        aggregators = prepare_aggregators(
            [data.adjacencies[t] for t in data.edge_types]
        )
        train_node_classifier(
            model,
            lambda x: model.forward(x, aggregators),
            data.features,
            data.labels,
            data.train_idx,
            data.val_idx,
            TrainConfig(epochs=10, lr=5e-3, min_epochs=5, patience=5),
        )
        full_scores = model.predict_proba(data.features, aggregators)

        allowed = set(data.nodes)
        index = {uid: i for i, uid in enumerate(data.nodes)}
        checked = 0
        errors = []
        for row in data.test_idx[:10]:
            uid = data.nodes[row]
            subgraph = computation_subgraph(
                data.bn, uid, hops=2, fanout=None, allowed=allowed,
                edge_types=data.edge_types,
            )
            features = data.features[[index[v] for v in subgraph.nodes]]
            inductive = model.predict_subgraph(
                subgraph, features, edge_type_order=data.edge_types
            )
            errors.append(abs(inductive - full_scores[row]))
            checked += 1
        assert checked > 0
        assert np.median(errors) < 0.15


class TestStreamingConsistency:
    def test_online_bn_matches_offline_on_closed_epochs(self, tiny_dataset):
        """Replaying window jobs yields the same BN as the batch builder."""
        builder = BNBuilder(windows=FAST_WINDOWS)
        until = float(np.floor(tiny_dataset.end_time / FAST_WINDOWS[-1])) * FAST_WINDOWS[-1]
        online = builder.replay(tiny_dataset.logs, until=until, expire=False)
        offline = builder.build(
            [l for l in tiny_dataset.logs if l.timestamp <= until]
        )
        # Every offline edge whose epochs all closed exists online with equal
        # weight; compare on the intersection to avoid boundary epochs.
        matched = 0
        for u, v, t, record in offline.iter_edges():
            w_online = online.weight(u, v, t)
            if w_online > 0:
                matched += 1
        assert matched >= 0.8 * offline.num_edges()
