"""Property tests for the open-loop workload generator.

Contracts pinned here (see ``docs/LOADTEST.md``):

* **determinism** — the same seed yields a bit-identical arrival trace,
  whether :meth:`OpenLoopLoadGenerator.generate` is called twice or two
  generators are constructed independently;
* **rate fidelity** — the empirical arrival rate of a homogeneous pattern
  matches the configured QPS within Poisson tolerance;
* **time ordering** — arrival times are strictly inside the horizon and
  nondecreasing (the queue frontend rejects anything else);
* **drift alignment** — burst labels join each arrival back to the exact
  ``datagen.drift`` period that caused the spike, traffic concentrates
  inside the windows, and a fully drifted burst draws exclusively from the
  fraud user pool when the bias says so;
* **priority classes** — deadlines are stamped as arrival time plus the
  class slack, and the class mix follows the configured weights.
"""

from __future__ import annotations

import math

import pytest

from repro.datagen import GeneratorConfig, fraud_burst_schedule, generate_drift_scenario
from repro.system import (
    BurstWindow,
    OpenLoopLoadGenerator,
    PriorityClass,
    TrafficPattern,
    bursts_from_drift,
)


@pytest.fixture(scope="module")
def txn_pool(tiny_dataset):
    return sorted(tiny_dataset.transactions, key=lambda t: t.txn_id)


@pytest.fixture(scope="module")
def fraud_uids(tiny_dataset):
    return frozenset(u.uid for u in tiny_dataset.users if u.is_fraud)


def trace_key(arrivals):
    return [
        (a.at, a.txn.txn_id, a.uid, a.priority, a.deadline, a.burst) for a in arrivals
    ]


class TestDeterminism:
    def test_same_seed_same_trace(self, txn_pool):
        pattern = TrafficPattern(base_qps=20.0, diurnal_amplitude=0.3, diurnal_period=30.0)
        first = OpenLoopLoadGenerator(pattern, txn_pool, seed=7).generate(0.0, 30.0)
        second = OpenLoopLoadGenerator(pattern, txn_pool, seed=7).generate(0.0, 30.0)
        assert trace_key(first) == trace_key(second)

    def test_generate_is_replayable(self, txn_pool):
        generator = OpenLoopLoadGenerator(
            TrafficPattern(base_qps=15.0), txn_pool, seed=3
        )
        assert trace_key(generator.generate(5.0, 20.0)) == trace_key(
            generator.generate(5.0, 20.0)
        )

    def test_different_seeds_differ(self, txn_pool):
        pattern = TrafficPattern(base_qps=20.0)
        first = OpenLoopLoadGenerator(pattern, txn_pool, seed=1).generate(0.0, 20.0)
        second = OpenLoopLoadGenerator(pattern, txn_pool, seed=2).generate(0.0, 20.0)
        assert trace_key(first) != trace_key(second)


class TestRateAndOrdering:
    def test_empirical_rate_matches_configured(self, txn_pool):
        qps, horizon = 50.0, 40.0
        arrivals = OpenLoopLoadGenerator(
            TrafficPattern(base_qps=qps), txn_pool, seed=11
        ).generate(0.0, horizon)
        expected = qps * horizon
        # ~4.5 sigma for a Poisson(2000) count — deterministic given the seed,
        # and tight enough to catch a thinning bug (those are 2x-style errors).
        assert abs(len(arrivals) - expected) < 0.10 * expected

    def test_arrivals_nondecreasing_and_inside_horizon(self, txn_pool):
        start, horizon = 12.0, 25.0
        arrivals = OpenLoopLoadGenerator(
            TrafficPattern(base_qps=30.0, diurnal_amplitude=0.5, diurnal_period=10.0),
            txn_pool,
            seed=5,
        ).generate(start, horizon)
        assert arrivals, "expected a non-empty trace"
        assert all(start <= a.at < start + horizon for a in arrivals)
        assert all(b.at >= a.at for a, b in zip(arrivals, arrivals[1:]))

    def test_diurnal_cycle_shapes_traffic(self, txn_pool):
        # sin > 0 on the first half-period, < 0 on the second: with a large
        # amplitude the first half must carry visibly more arrivals.
        period = 60.0
        arrivals = OpenLoopLoadGenerator(
            TrafficPattern(
                base_qps=40.0, diurnal_amplitude=0.9, diurnal_period=period
            ),
            txn_pool,
            seed=13,
        ).generate(0.0, period)
        first = sum(1 for a in arrivals if a.at < period / 2)
        second = len(arrivals) - first
        assert first > 1.5 * second

    def test_rate_at_composes_boosts(self):
        pattern = TrafficPattern(
            base_qps=10.0,
            bursts=(BurstWindow(start=5.0, end=10.0, boost=3.0),),
        )
        assert pattern.rate_at(2.0) == 10.0
        assert pattern.rate_at(7.0) == 30.0
        assert pattern.rate_at(10.0) == 10.0  # half-open window
        assert pattern.peak_rate() == 30.0


class TestDriftAlignment:
    @pytest.fixture(scope="class")
    def scenario(self):
        return generate_drift_scenario(
            GeneratorConfig(n_users=40, span_days=30.0), n_periods=2, seed=9
        )

    def test_burst_windows_align_with_schedule(self, scenario, txn_pool):
        schedule = fraud_burst_schedule(
            scenario, start=0.0, burst_seconds=20.0, gap_seconds=10.0, max_intensity=3.0
        )
        windows = {f"drift-{b.period_index}": (b.start, b.end) for b in schedule}
        pattern = TrafficPattern(
            base_qps=20.0, bursts=bursts_from_drift(schedule, fraud_bias=0.5)
        )
        horizon = max(b.end for b in schedule) + 10.0
        arrivals = OpenLoopLoadGenerator(pattern, txn_pool, seed=17).generate(
            0.0, horizon
        )
        labeled = [a for a in arrivals if a.burst]
        assert labeled, "expected arrivals inside the drift bursts"
        assert {a.burst for a in labeled} == set(windows)
        for arrival in labeled:
            lo, hi = windows[arrival.burst]
            assert lo <= arrival.at < hi
        for arrival in arrivals:
            if not arrival.burst:
                assert all(not (lo <= arrival.at < hi) for lo, hi in windows.values())
        # the boost concentrates traffic: in-burst rate beats out-of-burst rate
        burst_time = sum(hi - lo for lo, hi in windows.values())
        in_rate = len(labeled) / burst_time
        out_rate = (len(arrivals) - len(labeled)) / (horizon - burst_time)
        assert in_rate > 1.3 * out_rate

    def test_fully_drifted_burst_draws_fraud_users(
        self, scenario, txn_pool, fraud_uids
    ):
        # period 2 of 2 has drift_level == 1.0, so with fraud_bias=1.0 every
        # arrival inside its window must come from the fraud pool.
        schedule = fraud_burst_schedule(
            scenario, start=0.0, burst_seconds=20.0, gap_seconds=5.0, max_intensity=2.0
        )
        pattern = TrafficPattern(
            base_qps=15.0, bursts=bursts_from_drift(schedule, fraud_bias=1.0)
        )
        horizon = max(b.end for b in schedule)
        arrivals = OpenLoopLoadGenerator(
            pattern, txn_pool, fraud_uids=fraud_uids, seed=23
        ).generate(0.0, horizon)
        last = f"drift-{schedule[-1].period_index}"
        in_last = [a for a in arrivals if a.burst == last]
        assert in_last, "expected arrivals inside the fully drifted burst"
        assert all(a.uid in fraud_uids for a in in_last)

    def test_intensity_grows_with_drift_level(self, scenario):
        schedule = fraud_burst_schedule(scenario, max_intensity=4.0)
        levels = [b.drift_level for b in schedule]
        intensities = [b.intensity for b in schedule]
        assert levels == sorted(levels)
        assert intensities == sorted(intensities)
        for burst in schedule:
            assert burst.intensity == 1.0 + 3.0 * burst.drift_level


class TestPriorityClasses:
    def test_deadline_is_arrival_plus_class_slack(self, txn_pool):
        classes = (
            PriorityClass("gold", rank=0, deadline=2.0, weight=0.5),
            PriorityClass("bronze", rank=1, deadline=9.0, weight=0.5),
        )
        slack = {c.name: c.deadline for c in classes}
        rank = {c.name: c.rank for c in classes}
        arrivals = OpenLoopLoadGenerator(
            TrafficPattern(base_qps=25.0), txn_pool, classes=classes, seed=29
        ).generate(0.0, 20.0)
        assert {a.priority for a in arrivals} == {"gold", "bronze"}
        for arrival in arrivals:
            assert math.isclose(arrival.deadline, arrival.at + slack[arrival.priority])
            assert arrival.priority_rank == rank[arrival.priority]

    def test_class_mix_follows_weights(self, txn_pool):
        classes = (
            PriorityClass("heavy", rank=0, deadline=5.0, weight=0.8),
            PriorityClass("light", rank=1, deadline=5.0, weight=0.2),
        )
        arrivals = OpenLoopLoadGenerator(
            TrafficPattern(base_qps=50.0), txn_pool, classes=classes, seed=31
        ).generate(0.0, 40.0)
        heavy = sum(1 for a in arrivals if a.priority == "heavy")
        assert abs(heavy / len(arrivals) - 0.8) < 0.06


class TestValidation:
    def test_bad_inputs_raise(self, txn_pool):
        with pytest.raises(ValueError):
            TrafficPattern(base_qps=0.0)
        with pytest.raises(ValueError):
            TrafficPattern(base_qps=1.0, diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            BurstWindow(start=5.0, end=5.0)
        with pytest.raises(ValueError):
            BurstWindow(start=0.0, end=1.0, boost=0.5)
        with pytest.raises(ValueError):
            PriorityClass("x", rank=0, deadline=0.0)
        with pytest.raises(ValueError):
            OpenLoopLoadGenerator(TrafficPattern(base_qps=1.0), ())
        with pytest.raises(ValueError):
            OpenLoopLoadGenerator(
                TrafficPattern(base_qps=1.0), txn_pool
            ).generate(0.0, 0.0)
