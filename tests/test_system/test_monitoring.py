"""System telemetry tests."""

from __future__ import annotations

import pytest

from repro.system import LatencyHistogram, SystemMonitor
from repro.system.latency import LatencyBreakdown


class TestLatencyHistogram:
    def test_mean_and_percentiles(self):
        histogram = LatencyHistogram()
        for value in (0.1, 0.2, 0.3, 0.4):
            histogram.observe(value)
        assert histogram.mean_ms == pytest.approx(250.0)
        assert histogram.percentile_ms(50) == pytest.approx(250.0)
        assert histogram.count == 4

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.mean_ms == 0.0
        assert histogram.percentile_ms(99) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().observe(-1.0)

    def test_reservoir_cap(self):
        histogram = LatencyHistogram(max_samples=10)
        for i in range(100):
            histogram.observe(float(i))
        assert histogram.count == 100
        assert len(histogram._samples) == 10

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            LatencyHistogram(max_samples=0)

    def test_summary_keys(self):
        histogram = LatencyHistogram()
        histogram.observe(0.5)
        assert set(histogram.summary()) == {"count", "mean_ms", "p50_ms", "p99_ms", "p999_ms"}


class TestSystemMonitor:
    def breakdown(self) -> LatencyBreakdown:
        return LatencyBreakdown(sampling=0.05, features=0.4, prediction=0.2)

    def test_record_request(self):
        monitor = SystemMonitor()
        monitor.record_request(self.breakdown(), blocked=True, subgraph_size=42)
        monitor.record_request(self.breakdown(), blocked=False, subgraph_size=10)
        assert monitor.requests == 2
        assert monitor.blocked == 1
        assert monitor.block_rate == 0.5
        assert monitor.total.count == 2

    def test_errors_counted(self):
        monitor = SystemMonitor()
        monitor.record_error("cache_down")
        monitor.record_error("cache_down")
        assert monitor.errors["cache_down"] == 2

    def test_report_renders(self):
        monitor = SystemMonitor()
        monitor.record_request(self.breakdown(), blocked=False, subgraph_size=5)
        monitor.record_error("db_timeout")
        text = monitor.report()
        assert "requests=1" in text
        assert "prediction" in text
        assert "db_timeout" in text

    def test_block_rate_empty(self):
        assert SystemMonitor().block_rate == 0.0


class TestResilienceAccounting:
    def breakdown(self, total: float = 0.1) -> LatencyBreakdown:
        return LatencyBreakdown(prediction=total)

    def test_degradation_attribution(self):
        monitor = SystemMonitor()
        monitor.record_request(self.breakdown(), blocked=False, subgraph_size=5)
        monitor.record_request(
            self.breakdown(), blocked=True, subgraph_size=0, degradation="scorecard"
        )
        monitor.record_request(
            self.breakdown(), blocked=True, subgraph_size=0, degradation="blocklist"
        )
        assert monitor.degraded_requests == 2
        assert monitor.degraded_rate == pytest.approx(2 / 3)
        assert monitor.availability == pytest.approx(1 / 3)
        assert monitor.degraded["scorecard"] == 1
        assert monitor.degraded_total.count == 2  # full-path latency excluded
        assert "degraded[scorecard] = 1" in monitor.report()

    def test_retries_and_failovers_accumulate(self):
        monitor = SystemMonitor()
        monitor.record_request(
            self.breakdown(), blocked=False, subgraph_size=1, retries=2
        )
        monitor.record_failover(3)
        monitor.record_failover()
        assert monitor.retries == 2
        assert monitor.failovers == 4

    def test_slo_violations_per_mode(self):
        monitor = SystemMonitor()
        monitor.set_slo(500.0, degraded_target_ms=50.0, error_budget=0.5)
        # 100ms: within the full-path SLO, past the degraded one.
        monitor.record_request(self.breakdown(0.1), blocked=False, subgraph_size=1)
        assert monitor.slo_violations == 0
        monitor.record_request(
            self.breakdown(0.1), blocked=False, subgraph_size=0, degradation="scorecard"
        )
        assert monitor.slo_violations == 1
        # budget: 0.5 * 2 requests = 1 allowed violation, exactly spent.
        assert monitor.error_budget_remaining() == pytest.approx(0.0)
        assert "slo target=500ms" in monitor.report()

    def test_error_budget_disarmed_and_empty(self):
        assert SystemMonitor().error_budget_remaining() == 1.0
        monitor = SystemMonitor()
        monitor.set_slo(100.0)
        assert monitor.error_budget_remaining() == 1.0  # no traffic yet

    def test_slo_validation(self):
        monitor = SystemMonitor()
        with pytest.raises(ValueError):
            monitor.set_slo(0.0)
        with pytest.raises(ValueError):
            monitor.set_slo(100.0, error_budget=0.0)

    def test_slo_summary_keys(self):
        monitor = SystemMonitor()
        monitor.record_request(self.breakdown(), blocked=False, subgraph_size=1)
        summary = monitor.slo_summary()
        assert summary["requests"] == 1.0
        assert summary["availability"] == 1.0
        assert set(summary) >= {
            "degraded_rate",
            "retries",
            "failovers",
            "errors",
            "slo_violations",
            "error_budget_remaining",
        }


class TestTurboIntegration:
    def test_turbo_populates_monitor(self, tiny_dataset):
        from repro.network import FAST_WINDOWS
        from repro.system import TurboConfig, deploy_turbo

        turbo, data = deploy_turbo(
            tiny_dataset,
            TurboConfig(windows=FAST_WINDOWS, train_epochs=5, hidden=(8, 4), seed=0),
        )
        txn = tiny_dataset.transactions[0]
        turbo.handle_request(txn, now=txn.audit_at)
        assert turbo.monitor.requests == 1
        assert turbo.monitor.total.count == 1
        assert "requests=1" in turbo.monitor.report()
