"""Batched serving contracts: bit-exact parity with the scalar path.

The tentpole guarantee of the batched pipeline (``Turbo.predict_batch``):
micro-batching is a *latency* optimization, never a semantic one.  Pinned
here:

* probabilities, decisions and degradation tags are bit-for-bit what
  sequential ``Turbo.predict`` calls return — for any batch size and any
  request order;
* every request in a batch closes a traced root span whose stage children
  reconcile with its ``LatencyBreakdown`` exactly as in scalar mode, and
  the batch itself closes a ``batch`` root with the coalesced stage spans;
* faults poison individual requests: one poisoned request degrades through
  the fallback ladder without failing (or re-scoring) the rest of the
  batch, and the batched path never raises;
* per-request latency budgets and the circuit breaker keep working.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.network import FAST_WINDOWS
from repro.obs import assert_all_traced
from repro.system import PredictRequest, TurboConfig, deploy_turbo

pytestmark = [pytest.mark.resilience, pytest.mark.obs]


@pytest.fixture(scope="module")
def deployed(tiny_dataset):
    return deploy_turbo(
        tiny_dataset,
        TurboConfig(windows=FAST_WINDOWS, train_epochs=5, hidden=(8, 4), seed=0),
    )


@pytest.fixture()
def turbo(deployed):
    """The deployed system, guaranteed healthy before and after each test."""
    turbo, _data = deployed
    turbo.faults.clear_plans()
    turbo.recover()
    yield turbo
    turbo.faults.clear_plans()
    turbo.recover()


def requests_for(data, start, count):
    """Requests with explicit serve times, so scalar/batched runs agree."""
    transactions = data.dataset.transactions[start : start + count]
    return [PredictRequest(txn=t, now=t.audit_at) for t in transactions]


def scalar_pass(turbo, requests):
    return [turbo.predict(r) for r in requests]


def assert_response_parity(scalar, batched):
    assert len(scalar) == len(batched)
    for s, b in zip(scalar, batched):
        assert b.txn_id == s.txn_id
        assert b.probability == s.probability  # bit-for-bit, no approx
        assert b.blocked == s.blocked
        assert b.degradation == s.degradation
        assert b.degradation_reason == s.degradation_reason
        assert b.subgraph_size == s.subgraph_size
        assert b.timestamp == s.timestamp
        assert b.retries == 0


class TestBitExactParity:
    @pytest.mark.parametrize("batch_size", [1, 2, 32])
    def test_probabilities_match_scalar_bitexact(self, deployed, turbo, batch_size):
        _, data = deployed
        requests = requests_for(data, 0, 32)
        scalar = scalar_pass(turbo, requests)
        batched = []
        for k in range(0, len(requests), batch_size):
            batched.extend(turbo.predict_batch(requests[k : k + batch_size]))
        assert_response_parity(scalar, batched)
        assert all(r.degradation == "full" for r in batched)

    def test_shuffled_order_does_not_change_results(self, deployed, turbo):
        """Overlapping subgraphs shared across a batch must not leak between
        requests: serving the same requests in a different order, in
        different batch splits, yields identical per-request results."""
        _, data = deployed
        requests = requests_for(data, 0, 24)
        expected = {
            r.txn_id: r for r in turbo.predict_batch(requests)
        }
        rng = np.random.default_rng(7)
        shuffled = [requests[i] for i in rng.permutation(len(requests))]
        reshuffled = turbo.predict_batch(shuffled)
        for request, response in zip(shuffled, reshuffled):
            want = expected[request.txn.txn_id]
            assert response.probability == want.probability
            assert response.blocked == want.blocked
            assert response.degradation == want.degradation

    def test_budget_degradation_parity(self, deployed, turbo):
        """An impossible per-request budget degrades identically (same tag,
        same reason, same fallback probability) in both modes."""
        _, data = deployed
        # Stay under the breaker's failure threshold: budget failures count
        # against it in both modes, and parity is about the budget tag.
        count = turbo.breaker.failure_threshold
        transactions = data.dataset.transactions[:count]
        tight = [
            PredictRequest(txn=t, now=t.audit_at, budget=1e-9) for t in transactions
        ]
        scalar = scalar_pass(turbo, tight)
        turbo.breaker.reset()  # budget failures count against the breaker
        batched = turbo.predict_batch(tight)
        for s, b in zip(scalar, batched):
            assert s.degradation_reason == "over_budget"
            assert b.degradation_reason == "over_budget"
            assert b.degradation == s.degradation
            assert b.probability == s.probability
            assert b.blocked == s.blocked

    def test_empty_batch(self, turbo):
        assert turbo.predict_batch([]) == []

    def test_rejects_non_requests(self, deployed, turbo):
        _, data = deployed
        with pytest.raises(TypeError):
            turbo.predict_batch([data.dataset.transactions[0]])


class TestBatchTracing:
    def test_all_requests_traced_and_reconciled(self, deployed, turbo):
        _, data = deployed
        requests = requests_for(data, 0, 12)
        responses = turbo.predict_batch(requests)
        assert_all_traced(responses)
        assert turbo.tracer.open_traces() == 0
        for response in responses:
            root = response.span
            assert root.name == "request"
            assert root.duration == response.breakdown.total
            by_name = {child.name: child for child in root.children}
            assert by_name["bn_sample"].duration == response.breakdown.sampling
            assert by_name["feature_fetch"].duration == response.breakdown.features
            assert by_name["inference"].duration == response.breakdown.prediction

    def test_requests_nest_under_one_batch_span(self, deployed, turbo):
        _, data = deployed
        requests = requests_for(data, 0, 8)
        responses = turbo.predict_batch(requests)
        batch = turbo.tracer.traces[-1]
        assert batch.name == "batch"
        assert batch.attributes["size"] == len(requests)
        assert [child.name for child in batch.children] == [
            "bn_sample",
            "feature_fetch",
            "inference",
        ]
        for stage in batch.children:
            assert stage.closed
            assert stage.attributes["requests"] == len(requests)
        # Coalescing is real on overlapping neighbourhoods and annotated.
        assert batch.attributes["sample_coalescing"] >= 1.0
        assert batch.attributes["feature_coalescing"] >= 1.0
        # Every request root joins the batch trace.
        for response in responses:
            assert response.span.trace_id == batch.trace_id
            assert response.span.parent_id == batch.span_id

    def test_batch_metrics_recorded(self, deployed, turbo):
        _, data = deployed
        registry = turbo.metrics
        batches_before = registry.counter("turbo.batch.batches").value
        requests_before = registry.counter("turbo.batch.requests").value
        turbo.predict_batch(requests_for(data, 0, 8))
        assert registry.counter("turbo.batch.batches").value == batches_before + 1
        assert registry.counter("turbo.batch.requests").value == requests_before + 8
        assert registry.histogram("turbo.batch.size").count >= 1
        assert registry.histogram("turbo.batch.coalescing").count >= 1
        for slot in ("sampling", "features", "prediction"):
            assert registry.histogram(f"turbo.batch.latency.{slot}").count >= 8

    def test_clock_advances_by_batch_wall_time(self, deployed, turbo):
        _, data = deployed
        before = turbo.clock.now()
        responses = turbo.predict_batch(requests_for(data, 0, 8))
        wall = max(r.breakdown.total for r in responses)
        assert turbo.clock.now() == before + wall


class TestBatchFaultIsolation:
    def test_one_poisoned_request_degrades_without_failing_the_batch(
        self, deployed, turbo
    ):
        """Chaos contract: a seeded transient fault poisons some requests in
        the batch; they degrade through the fallback ladder while the rest
        are served full-path — with probabilities bit-for-bit equal to a
        fault-free run."""
        _, data = deployed
        requests = requests_for(data, 0, 16)
        clean = {
            response.txn_id: response.probability
            for response in turbo.predict_batch(requests)
        }
        turbo.faults.add_transient("bn_server", rate=0.4)
        responses = turbo.predict_batch(requests)  # must not raise
        degraded = [r for r in responses if r.degraded]
        served = [r for r in responses if not r.degraded]
        assert degraded, "seeded schedule injected no fault"
        assert served, "one fault must not poison the whole batch"
        for response in degraded:
            assert response.degradation == "scorecard"
            assert response.degradation_reason == "graph_path_down"
            assert response.retries == 0  # batched mode never retries
            assert response.subgraph_size == 0
        for response in served:
            assert response.probability == clean[response.txn_id]
        assert_all_traced(responses)

    def test_open_breaker_short_circuits_batched_requests(self, deployed, turbo):
        _, data = deployed
        turbo.faults.add_transient("bn_server", rate=1.0)
        # Enough failures in one batch to trip the breaker for the next.
        first = turbo.predict_batch(requests_for(data, 0, 8))
        assert all(r.degradation_reason == "graph_path_down" for r in first)
        assert turbo.breaker.state == "open"
        second = turbo.predict_batch(requests_for(data, 8, 4))
        short_circuited = [
            r for r in second if r.degradation_reason == "circuit_open"
        ]
        assert short_circuited
        for response in short_circuited:
            assert response.degraded
            events = [e["name"] for e in response.span.events]
            assert "breaker.open" in events

    def test_degraded_requests_annotate_whole_trace(self, deployed, turbo):
        _, data = deployed
        turbo.faults.add_transient("feature_server", rate=1.0)
        responses = turbo.predict_batch(requests_for(data, 0, 4))
        assert all(r.degradation_reason == "graph_path_down" for r in responses)
        for response in responses:
            for span in response.span.iter():
                assert span.attributes["degradation"] == response.degradation
                assert span.attributes["degradation_reason"] == "graph_path_down"
            assert response.span.find("fallback") is not None
