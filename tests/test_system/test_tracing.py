"""End-to-end tracing contracts of the online pipeline.

Pins the three observability guarantees of PR 3:

* every request returns a closed root span whose children mirror the
  pipeline stages, with durations bit-for-bit equal to the
  :class:`~repro.system.latency.LatencyBreakdown` slots;
* degradations are visible on *every* span of the affected trace
  (``degradation`` + ``degradation_reason`` tree annotations), and
  injected faults stamp the span that absorbed them;
* same-seed fault replays produce byte-identical span trees, and the
  metrics registry reconciles exactly with the ``SystemMonitor`` view.
"""

from __future__ import annotations

import pytest

from repro.network import FAST_WINDOWS
from repro.obs import assert_all_traced, render_span_tree, span_to_dict
from repro.system import TurboConfig, deploy_turbo

pytestmark = [pytest.mark.resilience, pytest.mark.obs]


@pytest.fixture(scope="module")
def deployed(tiny_dataset):
    return deploy_turbo(
        tiny_dataset,
        TurboConfig(windows=FAST_WINDOWS, train_epochs=5, hidden=(8, 4), seed=0),
    )


@pytest.fixture()
def turbo(deployed):
    """The deployed system, guaranteed healthy before and after each test."""
    turbo, _data = deployed
    turbo.faults.clear_plans()
    turbo.recover()
    yield turbo
    turbo.faults.clear_plans()
    turbo.recover()


class TestHealthyRequestTrace:
    def test_root_span_mirrors_breakdown(self, deployed, turbo):
        _, data = deployed
        txn = data.dataset.transactions[0]
        response = turbo.handle_request(txn, now=txn.audit_at)

        root = response.span
        assert root is not None and root.closed
        assert root.name == "request"
        assert response.trace_id == root.trace_id
        assert root.duration == response.breakdown.total
        assert root.attributes["uid"] == txn.uid
        assert root.attributes["txn_id"] == txn.txn_id
        assert root.attributes["probability"] == response.probability
        assert root.attributes["blocked"] == response.blocked

    def test_stage_spans_match_breakdown_bitexact(self, deployed, turbo):
        _, data = deployed
        txn = data.dataset.transactions[1]
        response = turbo.handle_request(txn, now=txn.audit_at)
        root = response.span

        names = [child.name for child in root.children]
        assert names == ["bn_sample", "feature_fetch", "inference"]
        by_name = {child.name: child for child in root.children}
        assert by_name["bn_sample"].duration == response.breakdown.sampling
        assert by_name["feature_fetch"].duration == response.breakdown.features
        assert by_name["inference"].duration == response.breakdown.prediction
        assert all(child.closed for child in root.children)

    def test_stage_spans_carry_storage_counters(self, deployed, turbo):
        _, data = deployed
        txn = data.dataset.transactions[2]
        turbo.bn_server.cache.clear()
        response = turbo.handle_request(txn, now=txn.audit_at)
        sample_span = response.span.find("bn_sample")
        assert sample_span.attributes.get("subgraph_size") == response.subgraph_size
        # A cold cache forces at least one primary read during sampling.
        assert sample_span.attributes.get("db.queries", 0) >= 1

    def test_tracer_retains_finished_traces(self, deployed, turbo):
        _, data = deployed
        before = len(turbo.tracer.traces)
        responses = [
            turbo.handle_request(txn, now=txn.audit_at)
            for txn in data.dataset.transactions[:4]
        ]
        assert_all_traced(responses)
        assert len(turbo.tracer.traces) == before + 4
        assert turbo.tracer.open_traces() == 0

    def test_render_span_tree_is_printable(self, deployed, turbo):
        _, data = deployed
        txn = data.dataset.transactions[0]
        response = turbo.handle_request(txn, now=txn.audit_at)
        text = render_span_tree(response.span)
        for name in ("request", "bn_sample", "feature_fetch", "inference"):
            assert name in text


class TestDegradedRequestTrace:
    def test_every_span_carries_degradation_reason(self, deployed, turbo):
        _, data = deployed
        txn = data.dataset.transactions[3]
        turbo.faults.add_transient("database", rate=1.0)
        turbo.bn_server.cache.clear()

        response = turbo.handle_request(txn, now=txn.audit_at)
        assert response.degradation == "scorecard"
        spans = list(response.span.iter())
        assert len(spans) >= 3  # request + failed stage + fallback
        for span in spans:
            assert span.attributes["degradation"] == "scorecard"
            assert span.attributes["degradation_reason"] == "graph_path_down"

    def test_failed_stage_annotated_and_fault_stamped(self, deployed, turbo):
        _, data = deployed
        txn = data.dataset.transactions[4]
        turbo.faults.add_transient("database", rate=1.0)
        turbo.bn_server.cache.clear()

        response = turbo.handle_request(txn, now=txn.audit_at)
        failed = response.span.find("bn_sample")
        assert failed is not None and failed.closed
        # The concrete class is the StorageError subclass that was raised.
        assert failed.attributes.get("error") in {"StorageError", "InjectedFault"}
        # The injected faults stamp the absorbing span as events.
        fault_events = [e for e in failed.events if e["name"].startswith("fault.")]
        assert fault_events, failed.events
        assert failed.attributes.get("faults", 0) >= 1

    def test_fallback_span_records_level_and_charge(self, deployed, turbo):
        _, data = deployed
        txn = data.dataset.transactions[5]
        turbo.faults.add_transient("feature_server", rate=1.0)

        response = turbo.handle_request(txn, now=txn.audit_at)
        assert response.degradation != "full"
        fallback = response.span.find("fallback")
        assert fallback is not None and fallback.closed
        assert fallback.attributes["level"] == response.degradation
        assert fallback.duration > 0.0

    def test_healthy_requests_carry_no_degradation_marks(self, deployed, turbo):
        _, data = deployed
        txn = data.dataset.transactions[6]
        response = turbo.handle_request(txn, now=txn.audit_at)
        assert response.degradation == "full"
        for span in response.span.iter():
            assert "degradation_reason" not in span.attributes


class TestReplayDeterminism:
    def test_same_seed_fault_replay_gives_identical_trees(self, tiny_dataset):
        def run():
            turbo, data = deploy_turbo(
                tiny_dataset,
                TurboConfig(
                    windows=FAST_WINDOWS, train_epochs=2, hidden=(8, 4), seed=0
                ),
            )
            turbo.faults.add_transient("database", rate=0.4)
            turbo.faults.add_transient("cache", rate=0.3)
            trees = []
            for txn in data.dataset.transactions[:10]:
                response = turbo.handle_request(txn, now=txn.audit_at)
                trees.append([span_to_dict(s) for s in response.span.iter()])
            return trees

        assert run() == run()


class TestMetricsReconciliation:
    def test_monitor_counters_are_registry_backed(self, deployed, turbo):
        _, data = deployed
        turbo.faults.add_transient("database", rate=0.5)
        responses = [
            turbo.handle_request(txn, now=txn.audit_at)
            for txn in data.dataset.transactions[:15]
        ]
        assert_all_traced(responses)

        monitor = turbo.monitor
        registry = turbo.metrics
        assert registry is monitor.registry
        counters = registry.counters
        assert monitor.requests == counters["turbo.requests"].as_int()
        assert monitor.blocked == counters["turbo.blocked"].as_int()
        assert monitor.retries == counters["turbo.retries"].as_int()
        assert monitor.failovers == counters["turbo.failovers"].as_int()
        assert monitor.degraded_requests == counters["turbo.degraded"].as_int()
        assert sum(monitor.errors.values()) == counters["turbo.errors"].as_int()
        assert monitor.total.count == monitor.requests
        blocked_responses = sum(1 for r in responses if r.blocked)
        degraded_responses = sum(1 for r in responses if r.degradation != "full")
        # The module-scoped monitor accumulates across tests, so check the
        # deltas indirectly: this batch's outcomes are all included.
        assert monitor.blocked >= blocked_responses
        assert monitor.degraded_requests >= degraded_responses

    def test_latency_histograms_match_monitor_views(self, deployed, turbo):
        _, data = deployed
        for txn in data.dataset.transactions[:5]:
            turbo.handle_request(txn, now=txn.audit_at)
        registry = turbo.metrics
        assert registry.histograms["turbo.latency.total"] is turbo.monitor.total
        assert registry.histograms["turbo.latency.sampling"] is turbo.monitor.sampling
        snapshot = registry.snapshot()
        assert snapshot["histograms"]["turbo.latency.total"]["count"] == float(
            turbo.monitor.requests
        )
