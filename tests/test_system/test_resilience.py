"""Failure-injection tests: the online system degrades, it does not die."""

from __future__ import annotations

import pytest

from repro.network import FAST_WINDOWS
from repro.system import TurboConfig, deploy_turbo


@pytest.fixture(scope="module")
def deployed(tiny_dataset):
    return deploy_turbo(
        tiny_dataset,
        TurboConfig(windows=FAST_WINDOWS, train_epochs=5, hidden=(8, 4), seed=0),
    )


class TestCacheCrash:
    def test_service_survives_cache_outage(self, deployed):
        """When Redis dies, requests fall back to the database path."""
        turbo, data = deployed
        transactions = data.dataset.transactions

        warm = turbo.handle_request(transactions[0], now=transactions[0].audit_at)

        cache = turbo.bn_server.cache
        assert cache is not None
        cache.crash()
        try:
            degraded = turbo.handle_request(
                transactions[1], now=transactions[1].audit_at
            )
        finally:
            cache.recover()

        # The request still succeeds with a valid probability...
        assert 0.0 <= degraded.probability <= 1.0
        # ...and the degraded path is slower than the cached path by a
        # visible margin (it pays database scans for everything).
        assert degraded.breakdown.features > warm.breakdown.features

    def test_recovered_cache_serves_again(self, deployed):
        turbo, data = deployed
        cache = turbo.bn_server.cache
        cache.crash()
        cache.recover()
        txn = data.dataset.transactions[2]
        response = turbo.handle_request(txn, now=txn.audit_at)
        assert 0.0 <= response.probability <= 1.0
        # Cache repopulates after recovery.
        assert cache.hits + cache.misses > 0
