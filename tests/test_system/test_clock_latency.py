"""SimulatedClock + LatencyModel tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.system import LatencyBreakdown, LatencyModel, SimulatedClock


class TestSimulatedClock:
    def test_advance(self):
        clock = SimulatedClock(start=10.0)
        assert clock.advance(5.0) == 15.0
        assert clock.now() == 15.0

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)

    def test_advance_to_is_monotone(self):
        clock = SimulatedClock(start=10.0)
        clock.advance_to(5.0)
        assert clock.now() == 10.0
        clock.advance_to(20.0)
        assert clock.now() == 20.0


class TestLatencyModel:
    def test_costs_positive_and_scale_with_rows(self):
        model = LatencyModel(jitter_sigma=0.0, seed=0)
        assert model.charge_db_query(1000) > model.charge_db_query(1)
        assert model.charge_cache_get() < model.charge_db_query(1)

    def test_no_jitter_deterministic(self):
        model = LatencyModel(jitter_sigma=0.0, seed=0)
        assert model.charge_db_query(5) == model.charge_db_query(5)

    def test_jitter_produces_spread(self):
        model = LatencyModel(seed=0)
        samples = [model.charge_db_query(10) for _ in range(200)]
        assert np.std(samples) > 0.0

    def test_model_forward_scales_with_nodes(self):
        model = LatencyModel(jitter_sigma=0.0)
        assert model.charge_model_forward(500) > model.charge_model_forward(10)

    def test_mem_scan_cheaper_than_db(self):
        model = LatencyModel(jitter_sigma=0.0)
        assert model.charge_mem_scan(200) < model.charge_db_query(200)


class TestBreakdown:
    def test_total_and_millis(self):
        breakdown = LatencyBreakdown(sampling=0.1, features=0.5, prediction=0.2)
        assert breakdown.total == pytest.approx(0.8)
        millis = breakdown.as_millis()
        assert millis["total_ms"] == pytest.approx(800.0)
        assert millis["feature_ms"] == pytest.approx(500.0)
