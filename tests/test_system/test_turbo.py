"""End-to-end Turbo system tests (on the tiny dataset; slow-ish)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network import FAST_WINDOWS
from repro.system import TurboConfig, deploy_turbo


@pytest.fixture(scope="module")
def deployed(tiny_dataset):
    turbo, data = deploy_turbo(
        tiny_dataset,
        TurboConfig(windows=FAST_WINDOWS, train_epochs=15, hidden=(16, 8), seed=0),
    )
    return turbo, data


class TestTurboRequests:
    def test_bn_metrics_wired_to_monitor_registry(self, deployed):
        turbo, _ = deployed
        assert turbo.bn_server.metrics is turbo.monitor.registry

    def test_response_fields(self, deployed):
        turbo, data = deployed
        dataset = data.dataset
        txn = dataset.transactions[0]
        response = turbo.handle_request(txn, now=txn.audit_at)
        assert response.uid == txn.uid
        assert 0.0 <= response.probability <= 1.0
        assert response.breakdown.total > 0
        assert response.subgraph_size >= 1
        assert response.blocked == (response.probability >= turbo.threshold)

    def test_clock_advances_with_requests(self, deployed):
        turbo, data = deployed
        before = turbo.clock.now()
        txn = data.dataset.transactions[1]
        turbo.handle_request(txn, now=txn.audit_at)
        assert turbo.clock.now() > before

    def test_latency_breakdown_components_positive(self, deployed):
        turbo, data = deployed
        txn = data.dataset.transactions[2]
        response = turbo.handle_request(txn, now=txn.audit_at)
        assert response.breakdown.sampling > 0
        assert response.breakdown.features > 0
        assert response.breakdown.prediction > 0

    def test_detects_fraud_better_than_chance(self, deployed):
        """Online scores on held-out users must beat random ranking."""
        from repro.eval import roc_auc_score

        turbo, data = deployed
        test_uids = {data.nodes[i] for i in data.test_idx}
        latest = {t.uid: t for t in data.feature_manager.latest_transactions()}
        labels, scores = [], []
        label_map = data.dataset.labels
        for uid in sorted(test_uids):
            txn = latest[uid]
            response = turbo.handle_request(txn, now=txn.audit_at)
            labels.append(label_map[uid])
            scores.append(response.probability)
        auc = roc_auc_score(np.asarray(labels), np.asarray(scores))
        assert auc > 0.6

    def test_invalid_threshold_rejected(self, deployed):
        from repro.system import Turbo

        turbo, _ = deployed
        with pytest.raises(ValueError):
            Turbo(
                turbo.bn_server,
                turbo.feature_server,
                turbo.prediction_server,
                turbo.clock,
                threshold=1.5,
            )
