"""Failure-mode suite: every component outage degrades Turbo, never kills it.

Contracts pinned here (see ``docs/RESILIENCE.md``):

* ``Turbo.predict`` never raises on a component failure — it returns a
  degraded :class:`TurboResponse` tagged with the fallback level that
  served it;
* the degraded probability matches the scorecard/blocklist fallback
  **bit-for-bit** (same floats the pre-Turbo production models produce);
* after ``recover()`` the system returns to full-path scoring, and the
  full-path probability is bit-for-bit identical to the pre-outage score;
* the end-to-end chaos regression: a mid-run primary-DB crash keeps p99
  under the degraded SLO and the monitor counts exactly the injected
  errors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import Blocklist, FallbackStack, default_scorecard
from repro.network import FAST_WINDOWS
from repro.system import TurboConfig, deploy_turbo

pytestmark = pytest.mark.resilience


@pytest.fixture(scope="module")
def deployed(tiny_dataset):
    return deploy_turbo(
        tiny_dataset,
        TurboConfig(windows=FAST_WINDOWS, train_epochs=5, hidden=(8, 4), seed=0),
    )


@pytest.fixture()
def turbo(deployed):
    """The deployed system, guaranteed healthy before and after each test."""
    turbo, _data = deployed
    turbo.faults.clear_plans()
    turbo.recover()
    yield turbo
    turbo.faults.clear_plans()
    turbo.recover()


def full_path_probability(turbo, txn) -> float:
    response = turbo.handle_request(txn, now=txn.audit_at)
    assert response.degradation == "full", response.degradation_reason
    return response.probability


class TestComponentOutages:
    """One outage per component: degrade to the scorecard, then recover."""

    @pytest.mark.parametrize(
        "component", ["database", "cache", "bn_server", "feature_server"]
    )
    def test_outage_degrades_then_recovers(self, deployed, turbo, component):
        _, data = deployed
        txn = data.dataset.transactions[3]
        user = data.dataset.user_by_id()[txn.uid]
        baseline = full_path_probability(turbo, txn)

        # Inject a hard failure on every call to the component.  The cache
        # is cleared so storage-level faults cannot be routed around by
        # warm entries from earlier requests.
        turbo.faults.add_transient(component, rate=1.0)
        turbo.bn_server.cache.clear()

        degraded = turbo.handle_request(txn, now=txn.audit_at)
        assert degraded.degradation == "scorecard"
        assert degraded.degradation_reason == "graph_path_down"
        assert degraded.subgraph_size == 0
        # Bit-for-bit the pre-Turbo production scorecard.
        expected = turbo.fallbacks.scorecard.score(user, txn)
        assert degraded.probability == expected
        assert degraded.blocked == (
            expected >= turbo.fallbacks.scorecard.decision_threshold
        )

        # Clear the fault and recover: full-path scoring resumes and the
        # probability is exactly the pre-outage one.
        turbo.faults.clear_plans(component)
        turbo.recover()
        assert full_path_probability(turbo, txn) == baseline

    def test_manual_database_crash_never_raises(self, deployed, turbo):
        _, data = deployed
        turbo.bn_server.database.crash()
        turbo.bn_server.cache.clear()
        for txn in data.dataset.transactions[5:10]:
            response = turbo.handle_request(txn, now=txn.audit_at)
            assert response.degradation in ("scorecard", "blocklist", "reject")
        turbo.recover()
        txn = data.dataset.transactions[5]
        assert turbo.handle_request(txn, now=txn.audit_at).degradation == "full"

    def test_cache_crash_window_routes_to_database(self, deployed, turbo):
        """An injected cache *crash window* is visible via ``available`` —
        the BN/feature servers route around it (slower, but still the full
        graph path), exactly like a manual ``cache.crash()``."""
        _, data = deployed
        now = turbo.faults.now()
        turbo.faults.add_crash("cache", now, now + 1e9)
        assert not turbo.bn_server.cache.available
        txn = data.dataset.transactions[4]
        response = turbo.handle_request(txn, now=txn.audit_at)
        assert response.degradation == "full"
        assert response.retries == 0


class TestRetriesAndBudget:
    def test_transient_flap_is_retried_on_the_full_path(self, deployed, turbo):
        """A low transient error rate is absorbed by retries, not fallback."""
        _, data = deployed
        turbo.faults.add_transient("bn_server", rate=0.5)
        served_full_with_retries = 0
        for txn in data.dataset.transactions[10:20]:
            response = turbo.handle_request(txn, now=txn.audit_at)
            if response.degradation == "full" and response.retries > 0:
                served_full_with_retries += 1
        assert served_full_with_retries > 0
        assert turbo.monitor.retries > 0

    def test_retry_backoff_charged_to_breakdown(self, deployed, turbo):
        _, data = deployed
        txn = data.dataset.transactions[6]
        clean = turbo.handle_request(txn, now=txn.audit_at)
        # Force exactly one failure, then let the retry succeed: done by a
        # rate that the seeded rng turns into at least one retry over a few
        # requests; assert the retried request is slower in the failed stage.
        turbo.faults.add_transient("feature_server", rate=0.4)
        retried = None
        for candidate in data.dataset.transactions[20:40]:
            response = turbo.handle_request(candidate, now=candidate.audit_at)
            if response.degradation == "full" and response.retries > 0:
                retried = response
                break
        assert retried is not None, "seeded schedule produced no retried request"
        min_backoff = turbo.retry_policy.base_backoff * (1 - turbo.retry_policy.jitter)
        assert retried.breakdown.features >= min_backoff
        assert clean.retries == 0

    def test_brownout_over_budget_degrades(self, deployed, turbo):
        """A latency spike that blows the request budget triggers fallback,
        and the injected latency is still charged to the breakdown."""
        _, data = deployed
        assert turbo.request_budget == 15.0
        turbo.faults.add_latency("bn_server", extra=30.0)
        txn = data.dataset.transactions[7]
        user = data.dataset.user_by_id()[txn.uid]
        response = turbo.handle_request(txn, now=txn.audit_at)
        assert response.degradation == "scorecard"
        assert response.degradation_reason == "over_budget"
        assert response.breakdown.sampling >= 30.0  # spike charged, not dropped
        assert response.probability == turbo.fallbacks.scorecard.score(user, txn)


class TestCircuitBreaker:
    def test_breaker_short_circuits_persistent_outage(self, deployed, turbo):
        _, data = deployed
        turbo.faults.add_transient("bn_server", rate=1.0)
        transactions = data.dataset.transactions[40:52]
        responses = [turbo.handle_request(t, now=t.audit_at) for t in transactions]
        assert all(r.degradation == "scorecard" for r in responses)
        reasons = [r.degradation_reason for r in responses]
        threshold = turbo.breaker.failure_threshold
        assert reasons[:threshold] == ["graph_path_down"] * threshold
        assert "circuit_open" in reasons[threshold:]
        assert turbo.breaker.short_circuited > 0

    def test_breaker_recloses_after_fault_clears(self, deployed, turbo):
        _, data = deployed
        turbo.faults.add_transient("bn_server", rate=1.0)
        transactions = data.dataset.transactions[52:56]
        for txn in transactions:
            turbo.handle_request(txn, now=txn.audit_at)
        assert turbo.breaker.state == "open"
        turbo.faults.clear_plans("bn_server")
        # Keep serving: a half-open probe eventually closes the breaker
        # without any operator action.
        txn = data.dataset.transactions[56]
        for _ in range(turbo.breaker.probe_interval + 1):
            response = turbo.handle_request(txn, now=txn.audit_at)
        assert turbo.breaker.state == "closed"
        assert response.degradation == "full"


class TestFallbackLadder:
    def test_ladder_orders_scorecard_blocklist_reject(self, deployed):
        _, data = deployed
        dataset = data.dataset
        txn = dataset.transactions[0]
        users = dataset.user_by_id()
        fraud_uids = {uid for uid, label in dataset.labels.items() if label == 1}
        blocklist = Blocklist().fit(dataset.logs, fraud_uids)

        scorecard_stack = FallbackStack(users, default_scorecard(), blocklist, dataset.logs)
        assert scorecard_stack.decide(txn).level == "scorecard"

        blocklist_stack = FallbackStack(users, None, blocklist, dataset.logs)
        decision = blocklist_stack.decide(txn)
        assert decision.level == "blocklist"
        assert decision.probability == pytest.approx(
            float(blocklist.predict_proba(dataset.logs, [txn.uid])[0])
        )
        assert decision.blocked == (decision.probability > 0.0)

        reject_stack = FallbackStack(users, None, None)
        decision = reject_stack.decide(txn)
        assert decision.level == "reject"
        assert decision.probability == 1.0 and decision.blocked

    def test_unknown_user_falls_through_scorecard(self, deployed):
        _, data = deployed
        dataset = data.dataset
        fraud_uids = {uid for uid, label in dataset.labels.items() if label == 1}
        blocklist = Blocklist().fit(dataset.logs, fraud_uids)
        stack = FallbackStack({}, default_scorecard(), blocklist, dataset.logs)
        decision = stack.decide(dataset.transactions[0])
        assert decision.level == "blocklist"


class TestChaosRegression:
    """Fig. 8-style replay with a mid-run primary-DB crash (end to end)."""

    def test_mid_run_db_crash_meets_degraded_slo(self, deployed, turbo):
        _, data = deployed
        latest = {
            t.uid: t for t in turbo.feature_server.feature_manager.latest_transactions()
        }
        rng = np.random.default_rng(0)
        uids = rng.choice(sorted(latest), size=45, replace=False)
        transactions = [latest[int(uid)] for uid in uids]
        pre, chaos, post = transactions[:15], transactions[15:30], transactions[30:]

        degraded_slo_ms = 1000.0
        monitor = turbo.monitor
        errors_before = sum(monitor.errors.values())
        faults_before = turbo.faults.fault_count
        degraded_before = monitor.degraded_requests

        # Phase 1 — healthy traffic, also pins the fault-free probabilities.
        baseline = {
            t.txn_id: turbo.handle_request(t, now=t.audit_at).probability for t in pre
        }

        # Phase 2 — primary DB crash window + the cache invalidation storm
        # that accompanies a failover in production.
        onset = turbo.faults.now()
        turbo.faults.add_crash("database", onset, onset + 1e9)
        turbo.bn_server.cache.clear()
        chaos_responses = [turbo.handle_request(t, now=t.audit_at) for t in chaos]

        # Phase 3 — outage ends; operator recovers the system.
        turbo.faults.clear_plans("database")
        turbo.recover()
        post_responses = [turbo.handle_request(t, now=t.audit_at) for t in post]

        # Never raises, and the outage visibly degraded traffic.
        assert monitor.degraded_requests > degraded_before
        assert all(r.degradation == "scorecard" for r in chaos_responses)

        # Degraded-mode latency meets the degraded SLO at p99.
        chaos_ms = [1000.0 * r.breakdown.total for r in chaos_responses]
        assert float(np.percentile(chaos_ms, 99)) < degraded_slo_ms

        # The monitor counted *exactly* the injected errors, and the report
        # surfaces them.
        injected = turbo.faults.fault_count - faults_before
        counted = sum(monitor.errors.values()) - errors_before
        assert injected > 0
        assert counted == injected
        assert f"errors={sum(monitor.errors.values())}" in monitor.report()

        # Post-recovery scoring is full-path and bit-for-bit identical to
        # the fault-free run on the same seed/model.
        assert all(r.degradation == "full" for r in post_responses)
        recovered = {
            t.txn_id: turbo.handle_request(t, now=t.audit_at).probability for t in pre
        }
        assert recovered == baseline

    def test_slo_accounting_in_report(self, deployed, turbo):
        _, data = deployed
        monitor = turbo.monitor
        monitor.set_slo(2000.0, degraded_target_ms=1000.0, error_budget=0.05)
        txn = data.dataset.transactions[8]
        turbo.handle_request(txn, now=txn.audit_at)
        text = monitor.report()
        assert "slo target=2000ms" in text
        assert "error_budget_remaining" in text
        assert 0.0 <= monitor.degraded_rate <= 1.0
        assert monitor.availability == 1.0 - monitor.degraded_rate
