"""Storage substrate tests, including crash/failover injection."""

from __future__ import annotations

import pytest

from repro.system import (
    InMemoryCache,
    LatencyModel,
    LocalDatabase,
    ReplicatedStore,
    StorageError,
)


def latency() -> LatencyModel:
    return LatencyModel(jitter_sigma=0.0, seed=0)


class TestLocalDatabase:
    def test_insert_and_query(self):
        db = LocalDatabase(latency())
        db.insert("logs", 1, "a")
        db.insert("logs", 1, "b")
        rows, seconds = db.query("logs", 1)
        assert rows == ["a", "b"]
        assert seconds > 0

    def test_put_replaces(self):
        db = LocalDatabase(latency())
        db.put("profile", 1, {"age": 30})
        db.put("profile", 1, {"age": 31})
        rows, _ = db.query("profile", 1)
        assert rows == [{"age": 31}]

    def test_missing_key_empty(self):
        rows, _ = LocalDatabase(latency()).query("logs", 99)
        assert rows == []

    def test_scan(self):
        db = LocalDatabase(latency())
        db.insert("t", 1, "x")
        db.insert("t", 2, "y")
        items, _ = db.scan("t")
        assert dict(items) == {1: ["x"], 2: ["y"]}

    def test_crash_blocks_access(self):
        db = LocalDatabase(latency())
        db.crash()
        with pytest.raises(StorageError):
            db.query("t", 1)
        db.recover()
        db.query("t", 1)

    def test_snapshot_roundtrip(self):
        db = LocalDatabase(latency())
        db.insert("t", 1, "x")
        clone = LocalDatabase(latency())
        clone.load_snapshot(db.snapshot())
        rows, _ = clone.query("t", 1)
        assert rows == ["x"]


class TestInMemoryCache:
    def test_set_get_hit(self):
        cache = InMemoryCache(latency())
        cache.set("k", 42, now=0.0)
        value, hit, _ = cache.get("k", now=1.0)
        assert hit and value == 42
        assert cache.hit_rate == 1.0

    def test_miss_counted(self):
        cache = InMemoryCache(latency())
        _value, hit, _ = cache.get("absent")
        assert not hit
        assert cache.misses == 1

    def test_ttl_expiry(self):
        cache = InMemoryCache(latency())
        cache.set("k", 1, now=0.0, ttl=10.0)
        assert cache.get("k", now=5.0)[1]
        assert not cache.get("k", now=11.0)[1]

    def test_default_ttl(self):
        cache = InMemoryCache(latency(), default_ttl=5.0)
        cache.set("k", 1, now=0.0)
        assert not cache.get("k", now=6.0)[1]

    def test_invalidate(self):
        cache = InMemoryCache(latency())
        cache.set("k", 1)
        cache.invalidate("k")
        assert not cache.get("k")[1]

    def test_crash_clears_and_blocks(self):
        cache = InMemoryCache(latency())
        cache.set("k", 1)
        cache.crash()
        with pytest.raises(StorageError):
            cache.get("k")
        cache.recover()
        assert not cache.get("k")[1]  # contents lost, service restored


class TestReplicatedStore:
    def make(self):
        model = latency()
        return ReplicatedStore(LocalDatabase(model), LocalDatabase(model), model)

    def test_writes_go_to_both(self):
        store = self.make()
        store.insert("t", 1, "x")
        assert store.primary.query("t", 1)[0] == ["x"]
        assert store.replica.query("t", 1)[0] == ["x"]

    def test_failover_on_primary_crash(self):
        store = self.make()
        store.insert("t", 1, "x")
        store.primary.crash()
        rows, _ = store.query("t", 1)
        assert rows == ["x"]
        assert store.failovers == 1

    def test_total_outage_raises(self):
        store = self.make()
        store.primary.crash()
        store.replica.crash()
        with pytest.raises(StorageError):
            store.query("t", 1)
        with pytest.raises(StorageError):
            store.insert("t", 1, "x")

    def test_promote_replica_switch(self):
        store = self.make()
        store.insert("t", 1, "x")
        store.primary.crash()
        store.promote_replica()
        rows, _ = store.query("t", 1)  # new primary serves directly
        assert rows == ["x"]
        assert store.failovers == 0

    def test_writes_survive_single_crash(self):
        store = self.make()
        store.primary.crash()
        store.insert("t", 2, "y")  # lands on replica only
        store.primary.recover()
        assert store.replica.query("t", 2)[0] == ["y"]
