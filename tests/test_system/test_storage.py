"""Storage substrate tests, including crash/failover injection."""

from __future__ import annotations

import pytest

from repro.system import (
    FaultInjector,
    InMemoryCache,
    InjectedFault,
    LatencyModel,
    LocalDatabase,
    ReplicatedStore,
    StorageError,
)
from repro.system.clock import SimulatedClock


def latency() -> LatencyModel:
    return LatencyModel(jitter_sigma=0.0, seed=0)


class TestLocalDatabase:
    def test_insert_and_query(self):
        db = LocalDatabase(latency())
        db.insert("logs", 1, "a")
        db.insert("logs", 1, "b")
        rows, seconds = db.query("logs", 1)
        assert rows == ["a", "b"]
        assert seconds > 0

    def test_put_replaces(self):
        db = LocalDatabase(latency())
        db.put("profile", 1, {"age": 30})
        db.put("profile", 1, {"age": 31})
        rows, _ = db.query("profile", 1)
        assert rows == [{"age": 31}]

    def test_missing_key_empty(self):
        rows, _ = LocalDatabase(latency()).query("logs", 99)
        assert rows == []

    def test_scan(self):
        db = LocalDatabase(latency())
        db.insert("t", 1, "x")
        db.insert("t", 2, "y")
        items, _ = db.scan("t")
        assert dict(items) == {1: ["x"], 2: ["y"]}

    def test_crash_blocks_access(self):
        db = LocalDatabase(latency())
        db.crash()
        with pytest.raises(StorageError):
            db.query("t", 1)
        db.recover()
        db.query("t", 1)

    def test_snapshot_roundtrip(self):
        db = LocalDatabase(latency())
        db.insert("t", 1, "x")
        clone = LocalDatabase(latency())
        clone.load_snapshot(db.snapshot())
        rows, _ = clone.query("t", 1)
        assert rows == ["x"]


class TestInMemoryCache:
    def test_set_get_hit(self):
        cache = InMemoryCache(latency())
        cache.set("k", 42, now=0.0)
        value, hit, _ = cache.get("k", now=1.0)
        assert hit and value == 42
        assert cache.hit_rate == 1.0

    def test_miss_counted(self):
        cache = InMemoryCache(latency())
        _value, hit, _ = cache.get("absent")
        assert not hit
        assert cache.misses == 1

    def test_ttl_expiry(self):
        cache = InMemoryCache(latency())
        cache.set("k", 1, now=0.0, ttl=10.0)
        assert cache.get("k", now=5.0)[1]
        assert not cache.get("k", now=11.0)[1]

    def test_default_ttl(self):
        cache = InMemoryCache(latency(), default_ttl=5.0)
        cache.set("k", 1, now=0.0)
        assert not cache.get("k", now=6.0)[1]

    def test_invalidate(self):
        cache = InMemoryCache(latency())
        cache.set("k", 1)
        cache.invalidate("k")
        assert not cache.get("k")[1]

    def test_crash_clears_and_blocks(self):
        cache = InMemoryCache(latency())
        cache.set("k", 1)
        cache.crash()
        with pytest.raises(StorageError):
            cache.get("k")
        cache.recover()
        assert not cache.get("k")[1]  # contents lost, service restored


class TestReplicatedStore:
    def make(self):
        model = latency()
        return ReplicatedStore(LocalDatabase(model), LocalDatabase(model), model)

    def test_writes_go_to_both(self):
        store = self.make()
        store.insert("t", 1, "x")
        assert store.primary.query("t", 1)[0] == ["x"]
        assert store.replica.query("t", 1)[0] == ["x"]

    def test_failover_on_primary_crash(self):
        store = self.make()
        store.insert("t", 1, "x")
        store.primary.crash()
        rows, _ = store.query("t", 1)
        assert rows == ["x"]
        assert store.failovers == 1

    def test_total_outage_raises(self):
        store = self.make()
        store.primary.crash()
        store.replica.crash()
        with pytest.raises(StorageError):
            store.query("t", 1)
        with pytest.raises(StorageError):
            store.insert("t", 1, "x")

    def test_promote_replica_switch(self):
        store = self.make()
        store.insert("t", 1, "x")
        store.primary.crash()
        store.promote_replica()
        rows, _ = store.query("t", 1)  # new primary serves directly
        assert rows == ["x"]
        assert store.failovers == 0

    def test_writes_survive_single_crash(self):
        store = self.make()
        store.primary.crash()
        store.insert("t", 2, "y")  # lands on replica only
        store.primary.recover()
        assert store.replica.query("t", 2)[0] == ["y"]

    def test_insert_many_and_scan_with_failover(self):
        store = self.make()
        store.insert_many("t", [(1, "a"), (2, "b")])
        assert dict(store.primary.scan("t")[0]) == {1: ["a"], 2: ["b"]}
        assert dict(store.replica.scan("t")[0]) == {1: ["a"], 2: ["b"]}
        store.primary.crash()
        items, _ = store.scan("t")
        assert dict(items) == {1: ["a"], 2: ["b"]}
        assert store.failovers == 1

    def test_failover_counter_survives_promotion(self):
        """Pinned contract: ``failovers`` is a lifetime counter — promotion
        does NOT reset it; promotions are counted separately."""
        store = self.make()
        store.insert("t", 1, "x")
        store.primary.crash()
        store.query("t", 1)  # redirected read
        assert store.failovers == 1
        store.promote_replica()
        assert store.failovers == 1  # untouched by the switch
        assert store.promotions == 1
        store.query("t", 1)  # new primary serves directly
        assert store.failovers == 1

    def test_recover_brings_both_nodes_back(self):
        store = self.make()
        store.crash()
        assert not store.available
        with pytest.raises(StorageError):
            store.ping()
        store.recover()
        assert store.available
        store.ping()


class TestFaultGateContract:
    """The satellite fix: a crashed cache raises, it never silently misses."""

    def test_crashed_cache_raises_instead_of_silent_miss(self):
        cache = InMemoryCache(latency())
        cache.set("k", 1, now=0.0, ttl=10.0)
        misses_before = cache.misses
        cache.crash()
        with pytest.raises(StorageError):
            cache.get("k", now=99.0)  # expired entry + crashed instance
        # No phantom miss was counted and nothing was evicted mid-crash.
        assert cache.misses == misses_before

    def test_injected_cache_crash_raises_before_ttl_eviction(self):
        """During an injected crash window the TTL sweep must not run: the
        call raises with the store untouched, so a flapping cache cannot
        silently age out entries while it is down."""
        clock = SimulatedClock()
        faults = FaultInjector(seed=0, clock=clock)
        faults.add_crash("cache", 5.0, 10.0)
        cache = InMemoryCache(latency(), faults=faults)
        cache.set("k", 1, now=0.0, ttl=2.0)
        clock.advance_to(6.0)
        misses_before = cache.misses
        with pytest.raises(InjectedFault):
            cache.get("k", now=6.0)
        assert cache.misses == misses_before
        assert "k" in cache._store  # eviction deferred until the cache is up
        clock.advance_to(10.0)
        _value, hit, _seconds = cache.get("k", now=10.0)
        assert not hit  # now the expired entry is evicted and counted
        assert cache.misses == misses_before + 1

    def test_injected_transient_counts_no_hit_or_miss(self):
        faults = FaultInjector(seed=0)
        faults.add_transient("cache", rate=1.0)
        cache = InMemoryCache(latency(), faults=faults)
        with pytest.raises(InjectedFault):
            cache.get("k")
        assert cache.hits == 0 and cache.misses == 0

    def test_injected_db_crash_leaves_no_partial_write(self):
        clock = SimulatedClock()
        faults = FaultInjector(seed=0, clock=clock)
        faults.add_crash("database", 0.0, 10.0)
        db = LocalDatabase(latency(), faults=faults)
        with pytest.raises(InjectedFault):
            db.insert_many("t", [(1, "a"), (2, "b")])
        assert db.write_count == 0
        clock.advance_to(10.0)
        assert db.query("t", 1)[0] == []
