"""Property-based tests (seeded, no hypothesis) for the fault-injection layer.

Three contracts, each checked over many seeded random schedules:

* determinism — same seed + same call sequence => identical fault trace;
* validity — crash windows never overlap a component's recovery;
* accounting — injected latency is always charged to the caller's breakdown.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.system import (
    CircuitBreaker,
    CrashWindow,
    FaultInjector,
    InMemoryCache,
    InjectedFault,
    LatencyModel,
    LocalDatabase,
    RetryPolicy,
    StorageError,
    random_fault_plan,
)
from repro.system.clock import SimulatedClock

COMPONENTS = ["database", "cache", "bn_server", "feature_server"]


def drive_schedule(plan_seed: int, injector_seed: int = 7, calls: int = 400):
    """Build a seeded random plan and replay a seeded random call schedule."""
    injector = FaultInjector(seed=injector_seed, clock=SimulatedClock())
    random_fault_plan(
        injector, COMPONENTS, np.random.default_rng(plan_seed), horizon=100.0
    )
    schedule_rng = np.random.default_rng(plan_seed + 1)
    charged = 0.0
    for _ in range(calls):
        injector.clock.advance(float(schedule_rng.exponential(0.3)))
        component = COMPONENTS[int(schedule_rng.integers(len(COMPONENTS)))]
        try:
            charged += injector.before_call(component)
        except InjectedFault:
            pass
    return injector, charged


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 2, 17, 123])
    def test_same_seed_same_trace(self, seed):
        first, charged_a = drive_schedule(seed)
        second, charged_b = drive_schedule(seed)
        assert first.trace == second.trace
        assert first.injected == second.injected
        assert charged_a == charged_b

    def test_different_seeds_diverge(self):
        """Across several seeds at least one pair of traces must differ."""
        traces = [tuple(drive_schedule(seed)[0].trace) for seed in range(6)]
        assert len(set(traces)) > 1

    def test_empty_plan_is_inert(self):
        """No plan => no rng draws, no events, zero extra latency."""
        injector = FaultInjector(seed=0)
        state_before = injector._rng.bit_generator.state
        for _ in range(50):
            injector.clock.advance(1.0)
            assert injector.before_call("database") == 0.0
        assert injector.trace == []
        assert injector._rng.bit_generator.state == state_before


class TestCrashWindows:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_plans_never_overlap_recovery(self, seed):
        """Every seeded random plan satisfies the non-overlap invariant."""
        injector = FaultInjector(seed=0)
        random_fault_plan(
            injector, COMPONENTS, np.random.default_rng(seed), horizon=50.0
        )
        for component in COMPONENTS:
            windows = sorted(
                injector._plans.get(component, type("P", (), {"crash_windows": []})).crash_windows
                if component in injector._plans
                else [],
                key=lambda w: w.start,
            )
            for earlier, later in zip(windows, windows[1:]):
                assert earlier.end <= later.start, (
                    f"{component}: window [{earlier.start}, {earlier.end}) overlaps "
                    f"[{later.start}, {later.end})"
                )

    def test_overlapping_window_rejected(self):
        injector = FaultInjector()
        injector.add_crash("database", 10.0, 20.0)
        with pytest.raises(ValueError):
            injector.add_crash("database", 15.0, 25.0)
        # Disjoint windows and other components are fine.
        injector.add_crash("database", 20.0, 30.0)
        injector.add_crash("cache", 15.0, 25.0)

    def test_degenerate_window_rejected(self):
        with pytest.raises(ValueError):
            CrashWindow(5.0, 5.0)

    def test_crash_window_boundaries_half_open(self):
        injector = FaultInjector()
        injector.add_crash("database", 10.0, 20.0)
        assert not injector.crashed("database", now=9.999)
        assert injector.crashed("database", now=10.0)
        assert injector.crashed("database", now=19.999)
        assert not injector.crashed("database", now=20.0)


class TestLatencyCharging:
    @pytest.mark.parametrize("seed", range(10))
    def test_injected_latency_always_charged(self, seed):
        """Every latency event in the trace shows up in the charged seconds."""
        injector, charged = drive_schedule(seed)
        expected = sum(e.latency for e in injector.trace if e.kind == "latency")
        assert charged == pytest.approx(expected)

    def test_spike_charged_through_database(self):
        clock = SimulatedClock()
        injector = FaultInjector(seed=0, clock=clock)
        injector.add_latency("database", extra=0.5)
        model = LatencyModel(jitter_sigma=0.0, seed=0)
        db = LocalDatabase(model, faults=injector)
        baseline = LocalDatabase(model)
        db.insert("t", 1, "x")
        baseline.insert("t", 1, "x")
        _rows, seconds = db.query("t", 1)
        _rows, base_seconds = baseline.query("t", 1)
        assert seconds == pytest.approx(base_seconds + 0.5)

    def test_spike_charged_through_cache(self):
        injector = FaultInjector(seed=0)
        injector.add_latency("cache", extra=0.25)
        cache = InMemoryCache(LatencyModel(jitter_sigma=0.0), faults=injector)
        seconds = cache.set("k", 1)
        assert seconds >= 0.25
        _value, _hit, seconds = cache.get("k")
        assert seconds >= 0.25


class TestInjectedCrashSemantics:
    def test_crash_window_makes_store_unavailable_and_raise(self):
        """During a window the store is visibly down and calls raise."""
        clock = SimulatedClock()
        injector = FaultInjector(seed=0, clock=clock)
        injector.add_crash("database", 5.0, 10.0)
        db = LocalDatabase(LatencyModel(jitter_sigma=0.0), faults=injector)
        db.insert("t", 1, "x")
        clock.advance_to(5.0)
        assert not db.available
        with pytest.raises(InjectedFault):
            db.query("t", 1)
        clock.advance_to(10.0)
        assert db.available
        assert db.query("t", 1)[0] == ["x"]

    def test_transient_errors_are_storage_errors(self):
        injector = FaultInjector(seed=0)
        injector.add_transient("cache", rate=1.0)
        cache = InMemoryCache(LatencyModel(), faults=injector)
        with pytest.raises(StorageError):
            cache.get("k")
        assert injector.injected[("cache", "transient")] == 1

    def test_passive_probe_records_nothing(self):
        clock = SimulatedClock()
        injector = FaultInjector(seed=0, clock=clock)
        injector.add_crash("cache", 0.0, 10.0)
        cache = InMemoryCache(LatencyModel(), faults=injector)
        assert not cache.available  # check-then-use routes around the outage
        assert injector.trace == []  # ...without materializing a fault


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=2.0, max_backoff=0.5, jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.5)
        assert policy.backoff(10) == pytest.approx(0.5)

    def test_jitter_bounded_and_seeded(self):
        policy = RetryPolicy(base_backoff=0.1, jitter=0.25)
        rng = np.random.default_rng(3)
        values = [policy.backoff(1, rng) for _ in range(100)]
        assert all(0.075 <= v <= 0.125 for v in values)
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        assert policy.backoff(2, rng_a) == policy.backoff(2, rng_b)

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=-0.1)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_probes(self):
        breaker = CircuitBreaker(failure_threshold=3, probe_interval=4)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        # While open, only every 4th request is allowed through as a probe.
        decisions = [breaker.allow() for _ in range(8)]
        assert decisions == [False, False, False, True, False, False, False, True]
        assert breaker.short_circuited == 6

    def test_successful_probe_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=2)
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.allow()  # probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_reset_closes(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0
