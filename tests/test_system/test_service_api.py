"""Unified service API: ``Service`` protocol, ``PredictRequest``, ``TurboConfig``.

Pins the PR 3 API-redesign satellites:

* all four online servers satisfy the :class:`~repro.system.Service`
  protocol (``name`` / ``ping`` / ``stats`` / ``handle``);
* ``Turbo.predict`` takes a frozen :class:`~repro.system.PredictRequest`;
  the legacy positional shapes still work — behind one
  once-per-process ``DeprecationWarning`` shim — and return identical
  decisions;
* ``deploy_turbo`` accepts a validated :class:`~repro.system.TurboConfig`
  in place of loose kwargs (the kwargs style warns once), and rejects
  mixing the two styles;
* the active sampling tier satisfies the :class:`~repro.system.Sampler`
  protocol (PR 8's unification).
"""

from __future__ import annotations

import warnings

import pytest

from repro.network import FAST_WINDOWS
from repro.system import (
    PredictRequest,
    Sampler,
    Service,
    TurboConfig,
    deploy_turbo,
)
from repro.system.turbo import _reset_legacy_warnings

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def deployed(tiny_dataset):
    return deploy_turbo(
        tiny_dataset,
        TurboConfig(windows=FAST_WINDOWS, train_epochs=5, hidden=(8, 4), seed=0),
    )


@pytest.fixture()
def turbo(deployed):
    turbo, _data = deployed
    turbo.faults.clear_plans()
    turbo.recover()
    yield turbo
    turbo.faults.clear_plans()
    turbo.recover()


class TestServiceProtocol:
    def test_all_servers_satisfy_protocol(self, turbo):
        for service in turbo.services.values():
            assert isinstance(service, Service)

    def test_services_registry_covers_pipeline(self, turbo):
        assert set(turbo.services) == {
            "bn_server",
            "feature_server",
            "prediction_server",
            "model_manager",
        }
        for name, service in turbo.services.items():
            assert service.name == name

    def test_ping_all_healthy(self, turbo):
        assert turbo.ping_all() == {name: True for name in turbo.services}

    def test_ping_all_reports_sick_component(self, turbo):
        turbo.faults.add_transient("bn_server", rate=1.0)
        pings = turbo.ping_all()
        assert pings["bn_server"] is False
        assert pings["prediction_server"] is True

    def test_service_stats_are_numeric(self, turbo):
        stats = turbo.service_stats()
        assert set(stats) == set(turbo.services)
        for per_service in stats.values():
            assert per_service, per_service
            assert all(isinstance(v, float) for v in per_service.values())

    def test_active_sampler_satisfies_protocol(self, turbo):
        sampler = turbo.bn_server.sampler
        assert isinstance(sampler, Sampler)
        assert sampler.tier in {"local", "sharded", "lambda"}


class TestPredictRequest:
    def test_uid_defaults_to_txn_uid(self, deployed):
        _, data = deployed
        txn = data.dataset.transactions[0]
        request = PredictRequest(txn=txn)
        assert request.uid == int(txn.uid)
        assert request.budget is None

    def test_frozen(self, deployed):
        _, data = deployed
        request = PredictRequest(txn=data.dataset.transactions[0])
        with pytest.raises(AttributeError):
            request.uid = 99

    def test_budget_must_be_positive(self, deployed):
        _, data = deployed
        with pytest.raises(ValueError):
            PredictRequest(txn=data.dataset.transactions[0], budget=0.0)

    def test_txn_type_checked(self):
        with pytest.raises(TypeError):
            PredictRequest(txn="not a transaction")

    def test_budget_override_degrades_request(self, deployed, turbo):
        _, data = deployed
        txn = data.dataset.transactions[1]
        response = turbo.predict(PredictRequest(txn=txn, now=txn.audit_at, budget=1e-9))
        assert response.degradation != "full"
        assert response.degradation_reason == "over_budget"


class TestPredictShim:
    def test_request_object_emits_no_warning(self, deployed, turbo):
        _, data = deployed
        txn = data.dataset.transactions[2]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            turbo.predict(PredictRequest(txn=txn, now=txn.audit_at))
            turbo.handle_request(txn, now=txn.audit_at)

    def test_legacy_shapes_warn_once_and_match(self, deployed, turbo):
        _, data = deployed
        txn = data.dataset.transactions[3]

        canonical = turbo.predict(PredictRequest(txn=txn, now=txn.audit_at))
        _reset_legacy_warnings()
        with pytest.warns(DeprecationWarning):
            legacy_txn = turbo.predict(txn, now=txn.audit_at)
        # The shim warns once per process, not per call: the second legacy
        # call (even the other positional shape) stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            legacy_uid = turbo.predict(txn.uid, txn, txn.audit_at)

        for legacy in (legacy_txn, legacy_uid):
            assert legacy.probability == canonical.probability
            assert legacy.blocked == canonical.blocked
            assert legacy.uid == canonical.uid
            assert legacy.txn_id == canonical.txn_id
            assert legacy.degradation == canonical.degradation

    def test_uid_first_shape_warns_after_reset(self, deployed, turbo):
        _, data = deployed
        txn = data.dataset.transactions[3]
        _reset_legacy_warnings()
        with pytest.warns(DeprecationWarning):
            turbo.predict(txn.uid, txn, txn.audit_at)

    def test_unexpected_kwargs_rejected(self, deployed, turbo):
        _, data = deployed
        txn = data.dataset.transactions[0]
        with pytest.raises(TypeError):
            turbo.predict(PredictRequest(txn=txn), bogus=1)


class TestTurboConfig:
    def test_defaults_match_paper_deployment(self):
        config = TurboConfig()
        assert config.threshold == 0.85
        assert config.request_budget == 15.0
        assert config.hops == 2
        assert config.fanout == 10

    @pytest.mark.parametrize(
        "bad",
        [
            {"threshold": 0.0},
            {"threshold": 1.5},
            {"request_budget": -1.0},
            {"train_epochs": 0},
            {"hops": -1},
            {"trace_max": 0},
            {"windows": ()},
            {"hidden": ()},
        ],
    )
    def test_validation_rejects(self, bad):
        with pytest.raises(ValueError):
            TurboConfig(**bad)

    def test_mixing_config_and_kwargs_rejected(self, tiny_dataset):
        with pytest.raises(TypeError):
            deploy_turbo(tiny_dataset, TurboConfig(), threshold=0.9)

    def test_legacy_kwargs_warn_once(self, tiny_dataset):
        _reset_legacy_warnings()
        with pytest.warns(DeprecationWarning):
            deploy_turbo(
                tiny_dataset, windows=FAST_WINDOWS, train_epochs=1, hidden=(4,)
            )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            deploy_turbo(
                tiny_dataset, windows=FAST_WINDOWS, train_epochs=1, hidden=(4,)
            )

    @pytest.mark.parametrize(
        "bad",
        [
            {"lambda_refresh_period": 3600.0},
            {"lambda_staleness_budget": 4},
            {"lambda_tier": True, "lambda_refresh_period": -1.0},
            {"lambda_tier": True, "lambda_staleness_budget": -1},
        ],
    )
    def test_lambda_knobs_validated(self, bad):
        with pytest.raises(ValueError):
            TurboConfig(**bad)

    def test_deploy_with_config_object(self, tiny_dataset):
        config = TurboConfig(
            windows=FAST_WINDOWS, train_epochs=1, hidden=(4,), seed=0, trace_max=8
        )
        turbo, data = deploy_turbo(tiny_dataset, config)
        txn = data.dataset.transactions[0]
        response = turbo.handle_request(txn, now=txn.audit_at)
        assert response.span is not None and response.span.closed
        assert turbo.tracer.max_traces == 8
