"""``bn.ingest.*`` observability: counters, maintenance histogram, spans."""

from __future__ import annotations

from repro.datagen import DAY, HOUR, BehaviorLog, BehaviorType
from repro.network import BNBuilder
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, use_span
from repro.system import BNServer, LatencyModel

DEV = BehaviorType.DEVICE_ID


def make_server(metrics: MetricsRegistry | None = None) -> BNServer:
    latency = LatencyModel(jitter_sigma=0.0, seed=0)
    return BNServer(BNBuilder(windows=(HOUR, DAY)), latency, metrics=metrics)


def sample_logs():
    return [
        BehaviorLog(1, DEV, "d0", 60.0),
        BehaviorLog(2, DEV, "d0", 120.0),
        BehaviorLog(3, DEV, "d0", 180.0),
    ]


class TestIngestCounters:
    def test_ingest_counts_logs(self):
        registry = MetricsRegistry()
        server = make_server(metrics=registry)
        server.ingest(sample_logs())
        assert registry.counter("bn.ingest.logs").as_int() == 3

    def test_jobs_and_contributions_counted(self):
        registry = MetricsRegistry()
        server = make_server(metrics=registry)
        server.ingest(sample_logs())
        jobs, _ = server.run_due_jobs(now=HOUR)
        assert jobs >= 1
        assert registry.counter("bn.ingest.jobs").as_int() == jobs
        # 3 co-occurring users -> 3 pairs in the closed 1-hour epoch
        assert registry.counter("bn.ingest.contributions").as_int() == 3

    def test_expired_edges_counted(self):
        registry = MetricsRegistry()
        server = make_server(metrics=registry)
        server.ingest(sample_logs())
        server.run_due_jobs(now=HOUR)
        ttl = server.builder.ttl
        server.run_due_jobs(now=ttl + 2 * DAY)
        assert registry.counter("bn.ingest.expired_edges").as_int() == 3
        assert server.bn.num_edges() == 0

    def test_maintenance_histogram_observed(self):
        registry = MetricsRegistry()
        server = make_server(metrics=registry)
        server.ingest(sample_logs())
        server.run_due_jobs(now=HOUR)
        histogram = registry.histogram("bn.ingest.maintenance_seconds")
        assert histogram.count == 1
        assert histogram.total > 0.0

    def test_silent_without_registry(self):
        server = make_server(metrics=None)
        server.ingest(sample_logs())
        jobs, _ = server.run_due_jobs(now=HOUR)
        assert jobs >= 1  # no registry wired: still works, just no series


class TestIngestSpans:
    def test_ambient_span_stamped_with_counters(self):
        server = make_server(metrics=None)
        tracer = Tracer()
        root = tracer.start_trace("maintenance", at=0.0)
        with use_span(root):
            server.ingest(sample_logs())
            server.run_due_jobs(now=HOUR)
        assert root.attributes["bn.ingest.logs"] == 3
        assert root.attributes["bn.ingest.jobs"] >= 1
        assert root.attributes["bn.ingest.contributions"] == 3
