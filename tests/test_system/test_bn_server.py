"""BN server tests: streaming ingestion, window jobs, sampling."""

from __future__ import annotations

import pytest

from repro.datagen import DAY, HOUR, BehaviorLog, BehaviorType
from repro.network import BNBuilder
from repro.system import BNServer, InMemoryCache, LatencyModel

DEV = BehaviorType.DEVICE_ID


def make_server(cache: bool = False, windows=(HOUR, DAY)) -> BNServer:
    latency = LatencyModel(jitter_sigma=0.0, seed=0)
    builder = BNBuilder(windows=windows)
    return BNServer(
        builder,
        latency,
        cache=InMemoryCache(latency) if cache else None,
    )


def shared_logs(t0: float = 0.0):
    return [
        BehaviorLog(1, DEV, "d0", t0 + 60.0),
        BehaviorLog(2, DEV, "d0", t0 + 120.0),
    ]


class TestIngestion:
    def test_out_of_order_rejected(self):
        server = make_server()
        server.ingest([BehaviorLog(1, DEV, "d", 100.0)])
        with pytest.raises(ValueError):
            server.ingest([BehaviorLog(1, DEV, "d", 50.0)])

    def test_ingest_charges_latency(self):
        server = make_server()
        assert server.ingest(shared_logs()) > 0.0


class TestWindowJobs:
    def test_jobs_build_edges_after_epoch_closes(self):
        server = make_server()
        server.ingest(shared_logs())
        jobs, _ = server.run_due_jobs(now=HOUR)  # 1-hour epoch closed
        assert jobs >= 1
        assert server.bn.weight(1, 2, DEV) == pytest.approx(0.5)

    def test_no_jobs_before_epoch_closes(self):
        server = make_server()
        server.ingest(shared_logs())
        jobs, _ = server.run_due_jobs(now=HOUR / 2)
        assert jobs == 0
        assert server.bn.weight(1, 2, DEV) == 0.0

    def test_hierarchy_accumulates_across_windows(self):
        server = make_server()
        server.ingest(shared_logs())
        server.run_due_jobs(now=DAY)
        # Both the 1-hour and the 1-day jobs contributed 1/2.
        assert server.bn.weight(1, 2, DEV) == pytest.approx(1.0)

    def test_jobs_run_incrementally(self):
        server = make_server(windows=(HOUR,))
        server.ingest(shared_logs(0.0))
        server.run_due_jobs(now=HOUR)
        server.ingest(shared_logs(HOUR))
        jobs, _ = server.run_due_jobs(now=2 * HOUR)
        assert jobs == 1
        assert server.bn.weight(1, 2, DEV) == pytest.approx(1.0)

    def test_shorter_windows_run_more_jobs(self):
        server = make_server(windows=(HOUR, DAY))
        server.ingest(shared_logs())
        server.run_due_jobs(now=DAY)
        assert server.jobs_run == 24 + 1

    def test_ttl_sweep_prunes_old_edges(self):
        latency = LatencyModel(jitter_sigma=0.0)
        builder = BNBuilder(windows=(HOUR,), ttl=2 * DAY)
        server = BNServer(builder, latency, ttl_sweep_interval=DAY)
        server.ingest(shared_logs())
        server.run_due_jobs(now=HOUR)
        assert server.bn.num_edges() == 1
        server.run_due_jobs(now=5 * DAY)
        assert server.bn.num_edges() == 0


class TestSampling:
    def test_sample_returns_subgraph_and_cost(self):
        server = make_server()
        server.ingest(shared_logs())
        server.run_due_jobs(now=DAY)
        subgraph, seconds = server.sample(1, now=DAY)
        assert subgraph.target == 1
        assert 2 in subgraph.nodes
        assert seconds > 0

    def test_unknown_target_becomes_isolated_node(self):
        server = make_server()
        subgraph, _ = server.sample(42, now=0.0)
        assert subgraph.nodes == [42]

    def test_cache_reduces_repeat_cost(self):
        server = make_server(cache=True)
        server.ingest(shared_logs())
        server.run_due_jobs(now=DAY)
        _, cold = server.sample(1, now=DAY)
        _, warm = server.sample(1, now=DAY)
        assert warm < cold

    def test_allowed_filters_sample(self):
        server = make_server()
        server.ingest(shared_logs())
        server.run_due_jobs(now=DAY)
        subgraph, _ = server.sample(1, now=DAY, allowed={1})
        assert subgraph.nodes == [1]


class TestLogPruning:
    def test_prune_drops_logs_older_than_largest_window(self):
        server = make_server(windows=(HOUR, DAY))
        server.ingest(shared_logs(0.0))
        server.ingest(shared_logs(2 * DAY))
        server.run_due_jobs(now=3 * DAY)
        # Every pending job reads at most (now - DAY, now]; the t0=0 logs
        # can never contribute again and must leave the in-memory buffer.
        assert all(t > 3 * DAY - DAY for t in server._log_times)
        assert len(server._logs) == len(server._log_times) == 2

    def test_prune_keeps_logs_future_jobs_still_need(self):
        server = make_server(windows=(HOUR, DAY))
        server.ingest(shared_logs(0.0))
        server.run_due_jobs(now=HOUR)  # day job still pending for these logs
        assert len(server._logs) == 2

    def test_pruned_buffer_does_not_change_job_results(self):
        kept = make_server(windows=(HOUR,))
        for t0 in (0.0, HOUR, 2 * HOUR):
            kept.ingest(shared_logs(t0))
        # Run hour-by-hour (pruning after each job) vs all at once.
        for now in (HOUR, 2 * HOUR, 3 * HOUR):
            kept.run_due_jobs(now=now)
        batch = make_server(windows=(HOUR,))
        for t0 in (0.0, HOUR, 2 * HOUR):
            batch.ingest(shared_logs(t0))
        batch.run_due_jobs(now=3 * HOUR)
        assert kept.bn.weight(1, 2, DEV) == pytest.approx(
            batch.bn.weight(1, 2, DEV)
        )
        assert kept.bn.weight(1, 2, DEV) == pytest.approx(1.5)
