"""Chaos suite for the queueing front: shedding is degradation, never failure.

Contracts pinned here (see ``docs/LOADTEST.md`` and ``docs/RESILIENCE.md``):

* a shed request — at admission or at its deadline — is answered with the
  **bit-for-bit** decision of the same :class:`FallbackStack` ladder that
  serves in-pipeline degradation, tagged ``shed_admission`` /
  ``shed_deadline``;
* every queued, batched and shed request closes exactly one traced root
  span, and a served root's duration reconciles exactly with its
  ``queue_wait`` child plus the pipeline's ``LatencyBreakdown`` total;
* the queue front composes with fault injection: shard loss and latency
  spikes degrade responses through the existing ladder while the frontend
  keeps serving — nothing raises;
* pure sheds never touch the circuit breaker, and ``Turbo.predict``'s
  retry/breaker/budget semantics are unchanged by the queue sitting in
  front of it;
* both worker pools satisfy the ``Service`` protocol surface the
  autoscaler and health checks rely on.
"""

from __future__ import annotations

import pytest

from repro.network import FAST_WINDOWS
from repro.obs import assert_all_traced
from repro.system import (
    Arrival,
    QueueConfig,
    Service,
    ShardWorkerPool,
    SimulatedWorkerPool,
    StorageError,
    TurboConfig,
    deploy_turbo,
)

pytestmark = pytest.mark.resilience


@pytest.fixture(scope="module")
def deployed(tiny_dataset):
    return deploy_turbo(
        tiny_dataset,
        TurboConfig(windows=FAST_WINDOWS, train_epochs=5, hidden=(8, 4), seed=0),
    )


@pytest.fixture(scope="module")
def sharded_deployed(tiny_dataset):
    return deploy_turbo(
        tiny_dataset,
        TurboConfig(
            windows=FAST_WINDOWS, train_epochs=5, hidden=(8, 4), seed=0, shards=2
        ),
    )


@pytest.fixture()
def turbo(deployed):
    turbo, _data = deployed
    turbo.faults.clear_plans()
    turbo.recover()
    yield turbo
    turbo.faults.clear_plans()
    turbo.recover()


@pytest.fixture()
def sharded(sharded_deployed):
    turbo, _data = sharded_deployed
    turbo.faults.clear_plans()
    turbo.recover()
    yield turbo
    turbo.faults.clear_plans()
    turbo.recover()


def make_arrivals(turbo, count, gap=0.0, deadline=30.0, start=None):
    """A deterministic arrival trace over the deployment's latest transactions."""
    latest = sorted(
        turbo.feature_server.feature_manager.latest_transactions(),
        key=lambda t: t.txn_id,
    )
    start = turbo.clock.now() if start is None else start
    arrivals = []
    for i in range(count):
        txn = latest[i % len(latest)]
        at = start + i * gap
        arrivals.append(
            Arrival(
                at=at,
                txn=txn,
                uid=int(txn.uid),
                priority="standard",
                priority_rank=1,
                deadline=at + deadline,
            )
        )
    return arrivals


def queue_counter(turbo, name) -> float:
    return float(turbo.metrics.snapshot()["counters"].get(name, 0.0))


def assert_shed_bit_exact(turbo, record):
    """A shed record carries exactly the fallback ladder's decision."""
    decision = turbo.fallbacks.decide(record.arrival.txn)
    response = record.response
    assert response.degradation == decision.level
    assert response.probability == decision.probability
    assert response.blocked == decision.blocked
    assert response.degradation_reason == record.outcome
    assert response.subgraph_size == 0


def assert_served_spans_reconcile(records):
    """root duration == queue_wait child + pipeline LatencyBreakdown, exactly."""
    for record in (r for r in records if r.served):
        root = record.root
        wait = root.find("queue_wait")
        assert wait is not None and wait.duration is not None
        assert root.duration == wait.duration + record.response.breakdown.total


class TestShedding:
    def test_admission_shed_is_bit_exact_fallback(self, turbo):
        frontend = turbo.frontend(QueueConfig(max_depth=2, batch_size=2))
        arrivals = make_arrivals(turbo, 12)  # a burst landing at one instant
        before = queue_counter(turbo, "turbo.queue.shed.admission")
        records = frontend.run(arrivals)
        shed = [r for r in records if r.outcome == "shed_admission"]
        served = [r for r in records if r.served]
        assert len(records) == len(arrivals)
        assert shed and served, "expected both sheds and serves"
        for record in shed:
            assert_shed_bit_exact(turbo, record)
        assert (
            queue_counter(turbo, "turbo.queue.shed.admission") - before == len(shed)
        )
        assert_all_traced([r.response for r in records])
        assert turbo.tracer.open_traces() == 0
        assert_served_spans_reconcile(records)

    def test_deadline_shed_is_bit_exact_fallback(self, turbo):
        # Admission control off: everything queues, and whatever is still
        # waiting when its (tiny) deadline passes must be shed on dispatch.
        frontend = turbo.frontend(
            QueueConfig(
                max_depth=64,
                batch_size=4,
                batch_wait=0.0,
                admission_deadline_aware=False,
            )
        )
        arrivals = make_arrivals(turbo, 12, gap=0.0, deadline=1e-6)
        records = frontend.run(arrivals)
        shed = [r for r in records if r.outcome == "shed_deadline"]
        served = [r for r in records if r.served]
        # the head request dispatches before its deadline can pass; everything
        # behind it waits out the busy worker and expires on the next dispatch.
        assert len(served) == 1
        assert len(shed) == 11
        for record in shed:
            assert_shed_bit_exact(turbo, record)
        assert_all_traced([r.response for r in records])
        assert turbo.tracer.open_traces() == 0

    def test_served_past_deadline_counts_a_miss(self, turbo):
        frontend = turbo.frontend(
            QueueConfig(batch_size=1, admission_deadline_aware=False)
        )
        before = queue_counter(turbo, "turbo.queue.deadline_misses")
        # deadlines shorter than any charged pipeline time, arrivals spaced
        # far apart: each dispatches immediately, serves, and completes late.
        records = frontend.run(make_arrivals(turbo, 3, gap=100.0, deadline=1e-3))
        assert all(r.served for r in records)
        missed = queue_counter(turbo, "turbo.queue.deadline_misses") - before
        assert missed == len(records)
        for record in records:
            assert record.root.attributes.get("deadline_missed") is True


class TestChaos:
    def test_shard_loss_keeps_serving_degraded(self, sharded):
        sharded.faults.add_crash("bn_shard1", 0.0, 1e12)
        frontend = sharded.frontend(QueueConfig(batch_size=4))
        records = frontend.run(make_arrivals(sharded, 10, gap=0.5))
        assert len(records) == 10
        assert all(r.served for r in records)
        degradations = {r.response.degradation for r in records}
        assert "partial" in degradations, "shard loss should surface as partial"
        assert degradations <= {"partial", "full"}
        assert_all_traced([r.response for r in records])
        assert sharded.tracer.open_traces() == 0
        assert_served_spans_reconcile(records)

    def test_latency_spike_with_flooding_still_total(self, turbo):
        turbo.faults.add_latency("bn_server", extra=2.0)
        frontend = turbo.frontend(QueueConfig(max_depth=4, batch_size=2))
        records = frontend.run(make_arrivals(turbo, 10))
        assert len(records) == 10
        shed = [r for r in records if not r.served]
        assert shed, "flooding a depth-4 queue must shed"
        for record in shed:
            assert_shed_bit_exact(turbo, record)
        assert_all_traced([r.response for r in records])
        assert turbo.tracer.open_traces() == 0

    def test_pure_sheds_leave_breaker_and_predict_untouched(self, turbo):
        breaker = turbo.breaker
        state_before = (
            breaker.state,
            breaker.consecutive_failures,
            breaker.opened_count,
            breaker.short_circuited,
        )
        frontend = turbo.frontend(QueueConfig(max_depth=1, batch_size=1))
        records = frontend.run(make_arrivals(turbo, 8))
        shed = [r for r in records if not r.served]
        assert len(records) == 8 and shed, "flooding a depth-1 queue must shed"
        state_after = (
            breaker.state,
            breaker.consecutive_failures,
            breaker.opened_count,
            breaker.short_circuited,
        )
        # sheds answer from the ladder without attempting the graph path,
        # so the breaker sees only the single served request's success.
        assert state_after == state_before
        # and the bare predict path is exactly as healthy as before
        txn = make_arrivals(turbo, 1)[0].txn
        response = turbo.handle_request(txn, now=turbo.clock.now())
        assert response.degradation == "full"


class TestServiceSurface:
    def test_simulated_pool_satisfies_service_protocol(self, turbo):
        pool = SimulatedWorkerPool(turbo, n_workers=2, startup=1.0)
        assert isinstance(pool, Service)
        assert pool.name == "worker_pool"
        assert pool.ping() == 0.0
        assert pool.stats()["workers"] == 2.0

    def test_simulated_pool_scaling(self, turbo):
        pool = SimulatedWorkerPool(turbo, n_workers=1, startup=2.0)
        assert pool.scale_to(3, now=10.0) == 3
        assert pool.peak_size == 3
        # new workers come online only after the startup delay
        assert pool.next_free() == 0.0  # the original worker is already free
        assert sorted(pool._busy)[1:] == [12.0, 12.0]
        assert pool.scale_to(1) == 1
        assert pool.stats()["scale_ups"] == 2.0
        assert pool.stats()["scale_downs"] == 2.0
        assert pool.peak_size == 3
        with pytest.raises(ValueError):
            pool.scale_to(0)

    def test_shard_worker_pool_exposes_service_surface(self):
        # checked on the class: forking real shard workers is bench territory
        for method in ("ping", "stats", "handle", "scale_to"):
            assert callable(getattr(ShardWorkerPool, method))
        assert isinstance(ShardWorkerPool.name, property)
        assert isinstance(ShardWorkerPool.size, property)

    def test_empty_pool_ping_raises_storage_error(self, turbo):
        pool = SimulatedWorkerPool(turbo, n_workers=1)
        pool._busy.clear()  # simulate total worker loss
        with pytest.raises(StorageError):
            pool.ping()


class TestMetricsReconcile:
    def test_offered_splits_into_admitted_and_shed(self, turbo):
        names = (
            "turbo.queue.offered",
            "turbo.queue.admitted",
            "turbo.queue.shed",
        )
        before = {n: queue_counter(turbo, n) for n in names}
        frontend = turbo.frontend(QueueConfig(max_depth=3, batch_size=2))
        arrivals = make_arrivals(turbo, 9)
        records = frontend.run(arrivals)
        delta = {n: queue_counter(turbo, n) - before[n] for n in names}
        assert delta["turbo.queue.offered"] == len(arrivals)
        assert (
            delta["turbo.queue.admitted"] + delta["turbo.queue.shed"]
            == delta["turbo.queue.offered"]
        )
        assert len(records) == len(arrivals)
        # every response (served and shed) lands in the deployment log too
        assert all(r.response in turbo.responses for r in records)
