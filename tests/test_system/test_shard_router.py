"""Shard router + worker pool: frontier exchange, failover, Turbo serving.

Covers the system half of the sharding tentpole:

* :meth:`ShardRouter.sample_batch` is bit-exact vs the single-network
  batched sampler and emits the ``turbo.shard.*`` series;
* a crashed shard degrades sampling to the surviving frontier (requests
  flagged partial, nothing raises, breaker opens) and recovery restores
  bit-exact full serving;
* :class:`ShardWorkerPool` serves sub-batches bit-identically from forked
  processes over shared memory, survives worker crashes via in-process
  failover, and leaks no segments;
* a sharded :class:`BNServer` mirrors ingest into ``bn.shard.ingest.*``;
* ``deploy_turbo(..., shards=N)`` serves bit-for-bit what the unsharded
  deployment serves, and tags shard-down requests ``partial``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import DAY, HOUR, BehaviorLog, BehaviorType
from repro.network import (
    FAST_WINDOWS,
    BNBuilder,
    BehaviorNetwork,
    ShardedBehaviorNetwork,
    computation_subgraphs_batch,
)
from repro.obs.metrics import MetricsRegistry
from repro.system import (
    BNServer,
    CircuitBreaker,
    FaultInjector,
    LatencyModel,
    PredictRequest,
    ShardRouter,
    ShardWorkerPool,
    TurboConfig,
    deploy_turbo,
)

from tests.test_network.test_sampling_batch import assert_subgraph_equal
from tests.test_network.test_sharding import TYPES, contribution_batches, build_pair

pytestmark = pytest.mark.sharding

DEV = BehaviorType.DEVICE_ID


def make_router(rng, n_shards=4, with_faults=False, metrics=None):
    bn, sharded = build_pair(contribution_batches(rng), n_shards)
    faults = FaultInjector() if with_faults else None
    breakers = {s: CircuitBreaker() for s in range(n_shards)} if with_faults else None
    router = ShardRouter(sharded, faults=faults, metrics=metrics, breakers=breakers)
    return bn, sharded, router


class TestRouterSampling:
    def test_bitexact_and_observable(self, rng):
        registry = MetricsRegistry()
        bn, _sharded, router = make_router(rng, metrics=registry)
        targets = [int(t) for t in rng.integers(0, 200, size=16)]
        try:
            got, stats, gate_s = router.sample_batch(targets, hops=2, fanout=5)
            want, _ = computation_subgraphs_batch(
                bn, targets, hops=2, fanout=5, edge_types=TYPES
            )
            for want_sub, got_sub in zip(want, got):
                assert_subgraph_equal(got_sub, want_sub)
            assert stats.partial == ()
            assert gate_s == 0.0  # healthy path: no probe gate charged
            counters = registry.snapshot()["counters"]
            assert counters["turbo.shard.publish.count"] == 1
            assert counters["turbo.shard.frontier.exchanges"] >= 1
            assert counters["turbo.shard.frontier.keys"] > 0
            assert "turbo.shard.frontier.lost" not in counters
        finally:
            router.close()

    def test_selection_cache_reused_across_calls(self, rng):
        bn, _sharded, router = make_router(rng, n_shards=2)
        cache: dict = {}
        try:
            first, _, _ = router.sample_batch([3, 9], fanout=5, selection_cache=cache)
            cached = len(cache)
            assert cached > 0
            again, _, _ = router.sample_batch([3, 9], fanout=5, selection_cache=cache)
            assert len(cache) == cached
            for a, b in zip(first, again):
                assert_subgraph_equal(b, a)
        finally:
            router.close()


class TestShardLoss:
    def test_dead_shard_degrades_not_raises(self, rng):
        registry = MetricsRegistry()
        bn, _sharded, router = make_router(
            rng, with_faults=True, metrics=registry
        )
        router.faults.add_crash("bn_shard1", 0.0, 1e12)
        targets = [int(t) for t in rng.integers(0, 200, size=32)]
        try:
            got, stats, gate_s = router.sample_batch(targets, fanout=5, now=1.0)
            assert len(got) == len(targets)
            assert stats.partial, "a crashed shard must flag partial requests"
            assert gate_s >= 0.0  # crash probes fail fast (no latency charged)
            counters = registry.snapshot()["counters"]
            assert counters["turbo.shard.down"] >= 1
            assert counters["turbo.shard.partial_requests"] == len(stats.partial)
            # Intact requests are still bit-exact vs the healthy sampler.
            want, _ = computation_subgraphs_batch(
                bn, targets, hops=2, fanout=5, edge_types=TYPES
            )
            for i, (want_sub, got_sub) in enumerate(zip(want, got)):
                if i not in stats.partial:
                    assert_subgraph_equal(got_sub, want_sub)
        finally:
            router.close()

    def test_breaker_opens_then_recovery_restores_bits(self, rng):
        bn, _sharded, router = make_router(rng, with_faults=True)
        router.faults.add_crash("bn_shard1", 0.0, 1e12)
        targets = [int(t) for t in rng.integers(0, 200, size=16)]
        try:
            for _ in range(4):  # past the breaker's failure threshold
                router.sample_batch(targets, fanout=5, now=1.0)
            assert not router.breakers[1].allow()
            # Operator recovery: plans cleared, breakers reset.
            router.faults.clear_plans()
            for breaker in router.breakers.values():
                breaker.reset()
            got, stats, _ = router.sample_batch(targets, fanout=5, now=2.0)
            assert stats.partial == ()
            want, _ = computation_subgraphs_batch(
                bn, targets, hops=2, fanout=5, edge_types=TYPES
            )
            for want_sub, got_sub in zip(want, got):
                assert_subgraph_equal(got_sub, want_sub)  # no stale emptiness
        finally:
            router.close()


class TestWorkerPool:
    def test_worker_sample_bitexact_and_failover(self, rng):
        registry = MetricsRegistry()
        bn, _sharded, router = make_router(rng, n_shards=2, metrics=registry)
        pool = None
        try:
            router.ensure_published()
            pool = ShardWorkerPool(router.segments, n_workers=2)
            targets = [int(t) for t in rng.integers(0, 200, size=8)]
            out = pool.sample(0, targets, hops=2, fanout=5)
            assert out is not None
            got, stats = out
            want, _ = computation_subgraphs_batch(
                bn, targets, hops=2, fanout=5, edge_types=TYPES
            )
            for want_sub, got_sub in zip(want, got):
                assert_subgraph_equal(got_sub, want_sub)
            assert stats.partial == ()

            # Hard-kill one worker: pool reports it dead, the router falls
            # back in-process and stays bit-exact.
            pool.crash(0)
            assert pool.sample(0, targets) is None
            assert pool.alive_count() == 1
            routed, r_stats, _ = router.sample_batch(targets, fanout=5, pool=pool)
            for want_sub, got_sub in zip(want, routed):
                assert_subgraph_equal(got_sub, want_sub)
            assert r_stats.partial == ()
            counters = registry.snapshot()["counters"]
            assert counters["turbo.shard.worker_failover"] >= 1
        finally:
            if pool is not None:
                pool.close()
            router.close()

    def test_reattach_after_republish(self, rng):
        _bn, sharded, router = make_router(rng, n_shards=2)
        pool = None
        try:
            router.ensure_published()
            pool = ShardWorkerPool(router.segments, n_workers=1)
            batches = contribution_batches(rng, n_batches=1)
            u, v, codes, weights, stamps = batches[0]
            sharded.add_weights(u, v, codes, weights, stamps, btype_table=TYPES)
            index = router.ensure_published()  # new version, old retired
            assert pool.reattach(router.segments) == 1
            out = pool.sample(0, [int(u[0])], fanout=5)
            assert out is not None
            want, _ = computation_subgraphs_batch(
                sharded, [int(u[0])], hops=2, fanout=5, edge_types=TYPES
            )
            assert_subgraph_equal(out[0][0], want[0])
            assert index.version == sharded.version
        finally:
            if pool is not None:
                pool.close()
            router.close()


class TestShardedBNServer:
    def logs(self):
        return [
            BehaviorLog(1, DEV, "d0", 60.0),
            BehaviorLog(2, DEV, "d0", 120.0),
            BehaviorLog(3, DEV, "d0", 180.0),
        ]

    def test_shard_ingest_metrics_mirrored(self):
        registry = MetricsRegistry()
        server = BNServer(
            BNBuilder(windows=(HOUR, DAY)),
            LatencyModel(jitter_sigma=0.0, seed=0),
            metrics=registry,
            shards=2,
        )
        assert isinstance(server.bn, ShardedBehaviorNetwork)
        server.ingest(self.logs())
        jobs, _ = server.run_due_jobs(now=HOUR)
        assert jobs >= 1
        counters = registry.snapshot()["counters"]
        assert counters["bn.shard.ingest.jobs"] == counters["bn.ingest.jobs"]
        assert (
            counters["bn.shard.ingest.contributions"]
            == counters["bn.ingest.contributions"]
        )
        assert counters["bn.shard.ingest.barriers"] >= 1
        assert counters["bn.shard.ingest.rows"] == 3  # pairs (1,2) (1,3) (2,3)
        per_shard = sum(
            counters.get(f"bn.shard.ingest.shard{s}.rows", 0) for s in range(2)
        )
        assert per_shard == counters["bn.shard.ingest.rows"]
        assert "bn.shard.ingest.cross_shard" in counters

    def test_sharded_stats_and_unsharded_default(self):
        latency = LatencyModel(jitter_sigma=0.0, seed=0)
        sharded = BNServer(BNBuilder(windows=(HOUR, DAY)), latency, shards=2)
        sharded.ingest(self.logs())
        sharded.run_due_jobs(now=HOUR)
        stats = sharded.stats()
        assert stats["shards"] == 2
        # Boundary nodes appear in every shard holding one of their pairs,
        # so the per-shard counts sum to at least the global node count.
        assert stats["shard0_nodes"] + stats["shard1_nodes"] >= stats["bn_nodes"]
        assert max(stats["shard0_nodes"], stats["shard1_nodes"]) <= stats["bn_nodes"]
        plain = BNServer(BNBuilder(windows=(HOUR, DAY)), latency)
        assert isinstance(plain.bn, BehaviorNetwork)
        assert plain.router is None
        with pytest.raises(ValueError):
            BNServer(BNBuilder(windows=(HOUR, DAY)), latency, shards=0)


@pytest.fixture(scope="module")
def deployed_pair(tiny_dataset):
    """The same dataset deployed unsharded and with 2 BN shards."""
    plain = deploy_turbo(
        tiny_dataset,
        TurboConfig(windows=FAST_WINDOWS, train_epochs=5, hidden=(8, 4), seed=0),
    )
    sharded = deploy_turbo(
        tiny_dataset,
        TurboConfig(
            windows=FAST_WINDOWS, train_epochs=5, hidden=(8, 4), seed=0, shards=2
        ),
    )
    return plain, sharded


def requests_for(data, count=24):
    return [
        PredictRequest(txn=t, now=t.audit_at)
        for t in data.dataset.transactions[:count]
    ]


class TestTurboSharded:
    def test_serving_bitexact_vs_unsharded(self, deployed_pair):
        (plain, data), (sharded, _data) = deployed_pair
        requests = requests_for(data)
        want = [plain.predict(r) for r in requests]
        got_scalar = [sharded.predict(r) for r in requests]
        got_batch = sharded.predict_batch(requests)
        for w, s, b in zip(want, got_scalar, got_batch):
            for got in (s, b):
                assert got.probability == w.probability
                assert got.blocked == w.blocked
                assert got.degradation == w.degradation == "full"
                assert got.subgraph_size == w.subgraph_size

    def test_shard_down_tags_partial_and_recovers(self, deployed_pair):
        (_plain, _), (sharded, data) = deployed_pair
        requests = requests_for(data)
        baseline = {
            r.txn.txn_id: p.probability
            for r, p in zip(requests, sharded.predict_batch(requests))
        }
        sharded.faults.add_crash("bn_shard1", 0.0, 1e12)
        responses = sharded.predict_batch(requests)
        partial = [r for r in responses if r.degradation == "partial"]
        assert partial, "losing a shard must surface partial degradation"
        assert all(r.degradation_reason == "shard_down" for r in partial)
        assert all(r.degraded for r in partial)
        scalar = sharded.predict(requests[0])
        assert scalar.degradation in ("partial", "full")

        sharded.faults.clear_plans()
        sharded.recover()  # also resets the per-shard breakers
        recovered = sharded.predict_batch(requests)
        assert all(r.degradation == "full" for r in recovered)
        assert {
            r.txn_id: r.probability for r in recovered
        } == baseline, "recovery must restore bit-exact full serving"


class TestPoolMaterialize:
    """Full-graph sweep sharded across the worker pool: bit-exact, degradable."""

    @pytest.fixture()
    def sweep(self, rng):
        import pickle

        from repro.core import HAG
        from repro.core.lambda_infer import materialize_fullgraph
        from repro.features.pipeline import StandardScaler
        from repro.network import build_sampled_graph

        bn, sharded = build_pair(contribution_batches(rng, n_users=160), 4)
        types = tuple(sorted(bn.edge_types(), key=lambda t: t.value))
        model_rng = np.random.default_rng(3)
        model = HAG(
            5, len(types), model_rng, hidden=(8, 4), cfo_out_dim=2, mlp_hidden=(4,)
        )
        features = model_rng.normal(size=(200, 5))
        scaler = StandardScaler().fit(features)
        targets = sorted(int(t) for t in rng.choice(160, size=48, replace=False))
        sampled = build_sampled_graph(bn, 5)

        def feature_fn(k, nodes):
            return features[np.asarray(nodes, dtype=np.int64)]

        def run(**kwargs):
            return materialize_fullgraph(
                model, bn, targets,
                [10 * t for t in targets], [float(t) for t in targets],
                feature_fn,
                hops=2, fanout=5, edge_type_order=types,
                transform=scaler.transform, sampled=sampled,
                layer_features=scaler.transform(
                    features[np.asarray(targets, dtype=np.int64)]
                ),
                **kwargs,
            )

        bundle = pickle.dumps(
            {"model": model, "scaler": scaler, "edge_type_order": types}
        )
        router = ShardRouter(sharded)
        try:
            router.ensure_published()
            from repro.system import publish_materialize_inputs

            handle = publish_materialize_inputs(
                router.store, "mat", sampled,
                np.asarray(targets, dtype=np.int64),
                features[sampled.node_ids],
                features[np.asarray(targets, dtype=np.int64)],
                hops=2, chunk=64,
            )
            yield router, handle, bundle, sampled, run
        finally:
            router.close()

    def test_four_worker_sweep_bitexact(self, sweep):
        from repro.system import fullgraph_executor

        router, handle, bundle, sampled, run = sweep
        want, want_stats, _ = run()
        with ShardWorkerPool(
            router.segments, n_workers=4, model_payload=bundle
        ) as pool:
            for wid in range(4):
                assert pool.materialize_attach(wid, handle.segment) == sampled.version
            got, got_stats, mstats = run(
                executor=fullgraph_executor(pool), slices=8
            )
            assert mstats.slices == 8
            assert got_stats == want_stats
            got_arrays, want_arrays = got.to_arrays(), want.to_arrays()
            assert got_arrays.keys() == want_arrays.keys()
            for name in want_arrays:
                assert got_arrays[name].tobytes() == want_arrays[name].tobytes()

            # Worker loss degrades to in-process recompute, still bit-exact.
            pool.crash(0)
            pool.crash(2)
            degraded, degraded_stats, _ = run(
                executor=fullgraph_executor(pool), slices=8
            )
            assert degraded_stats == want_stats
            for name, arr in degraded.to_arrays().items():
                assert arr.tobytes() == want_arrays[name].tobytes()

    def test_materialize_without_attach_errors(self, sweep):
        router, _handle, bundle, _sampled, _run = sweep
        with ShardWorkerPool(
            router.segments, n_workers=1, model_payload=bundle
        ) as pool:
            with pytest.raises(RuntimeError):
                pool.materialize_slice(0, 0, 4)

    def test_slice_round_trip(self, sweep):
        router, handle, bundle, sampled, run = sweep
        want, _, _ = run()
        with ShardWorkerPool(
            router.segments, n_workers=1, model_payload=bundle
        ) as pool:
            assert pool.materialize_attach(0, handle.segment) == sampled.version
            result = pool.materialize_slice(0, 0, 6)
            assert result is not None
            assert result.scores.tobytes() == want.scores[:6].tobytes()
