"""Feature server tests: assembly correctness + cache economics."""

from __future__ import annotations

import numpy as np

from repro.features import FeatureManager
from repro.system import FeatureServer, InMemoryCache, LatencyModel


def build(tiny_dataset, cache: bool):
    latency = LatencyModel(jitter_sigma=0.0, seed=0)
    manager = FeatureManager(tiny_dataset, include_stats=True)
    server = FeatureServer(
        manager,
        latency,
        cache=InMemoryCache(latency) if cache else None,
    )
    return server, manager


class TestFeatureServer:
    def test_rows_align_with_nodes(self, tiny_dataset):
        server, manager = build(tiny_dataset, cache=False)
        txn = tiny_dataset.transactions[0]
        nodes = [txn.uid] + [u.uid for u in tiny_dataset.users[:3] if u.uid != txn.uid]
        matrix, seconds = server.features_for(nodes, txn, now=txn.audit_at)
        assert matrix.shape == (len(nodes), manager.dim)
        assert seconds > 0

    def test_target_row_uses_target_transaction(self, tiny_dataset):
        server, manager = build(tiny_dataset, cache=False)
        by_user = tiny_dataset.transactions_by_user()
        uid, txns = next((u, t) for u, t in by_user.items() if len(t) >= 2)
        early, late = sorted(txns, key=lambda t: t.created_at)[:2]
        row_early, _ = server.features_for([uid], early, now=early.audit_at)
        row_late, _ = server.features_for([uid], late, now=late.audit_at)
        assert not np.allclose(row_early, row_late)

    def test_unknown_context_node_zero_row(self, tiny_dataset):
        server, manager = build(tiny_dataset, cache=False)
        txn = tiny_dataset.transactions[0]
        matrix, _ = server.features_for([txn.uid, 10**9], txn, now=txn.audit_at)
        np.testing.assert_allclose(matrix[1], 0.0)

    def test_cache_cuts_latency(self, tiny_dataset):
        cached, _ = build(tiny_dataset, cache=True)
        uncached, _ = build(tiny_dataset, cache=False)
        txn = tiny_dataset.transactions[0]
        nodes = [txn.uid] + [u.uid for u in tiny_dataset.users[:10] if u.uid != txn.uid]
        _, cold = cached.features_for(nodes, txn, now=txn.audit_at)
        _, warm = cached.features_for(nodes, txn, now=txn.audit_at)
        _, disk = uncached.features_for(nodes, txn, now=txn.audit_at)
        assert warm < disk
        assert warm <= cold
