"""Model manager tests: registration, activation, rollback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HAG
from repro.system import ModelManager


def factory_for(seed: int = 0):
    def factory() -> HAG:
        return HAG(
            4, 2, np.random.default_rng(seed), hidden=(6, 4), cfo_out_dim=2, mlp_hidden=(4,)
        )

    return factory


class TestModelManager:
    def test_register_and_materialize(self):
        manager = ModelManager(factory_for())
        trained = factory_for(7)()
        version = manager.register(trained.state_dict(), trained_at=100.0)
        assert manager.active_version == version
        restored = manager.materialize_active()
        for a, b in zip(restored.parameters(), trained.parameters()):
            np.testing.assert_allclose(a.numpy(), b.numpy())

    def test_daily_retrain_swaps_active(self):
        manager = ModelManager(factory_for())
        v1 = manager.register(factory_for(1)().state_dict(), trained_at=0.0)
        v2 = manager.register(factory_for(2)().state_dict(), trained_at=86400.0)
        assert manager.active_version == v2
        assert [v.version for v in manager.versions()] == [v1, v2]

    def test_rollback(self):
        manager = ModelManager(factory_for())
        v1 = manager.register(factory_for(1)().state_dict(), trained_at=0.0)
        manager.register(factory_for(2)().state_dict(), trained_at=1.0)
        assert manager.rollback() == v1
        assert manager.active_version == v1

    def test_rollback_without_history(self):
        manager = ModelManager(factory_for())
        manager.register(factory_for(1)().state_dict(), trained_at=0.0)
        with pytest.raises(RuntimeError):
            manager.rollback()

    def test_activate_unknown_version(self):
        manager = ModelManager(factory_for())
        with pytest.raises(KeyError):
            manager.activate(99)

    def test_materialize_without_active(self):
        with pytest.raises(RuntimeError):
            ModelManager(factory_for()).materialize_active()

    def test_register_without_activation(self):
        manager = ModelManager(factory_for())
        v1 = manager.register(factory_for(1)().state_dict(), trained_at=0.0)
        manager.register(factory_for(2)().state_dict(), trained_at=1.0, activate=False)
        assert manager.active_version == v1

    def test_metrics_stored(self):
        manager = ModelManager(factory_for())
        manager.register(
            factory_for(1)().state_dict(), trained_at=0.0, metrics={"auc": 0.9}
        )
        assert manager.versions()[0].metrics["auc"] == 0.9
