"""Lambda two-tier serving: bit-exact cache hits, staleness gates, recovery.

Contracts pinned here (see ``docs/LAMBDA.md``):

* at zero delta the cached score served by the lambda tier is **bit-for-bit**
  what the fresh sampled path computes — same probability, same decision;
* every lambda-served request is traced (a ``lambda_delta`` child span under
  the request root, tier annotated);
* the batch-pass state checkpoints through the database and round-trips
  losslessly (disaster recovery without a recompute);
* delta edge touches beyond the staleness budget force fallthrough to the
  exact sampled path; raising the budget serves the stale score and prices
  it honestly in ``TurboResponse.staleness``;
* faults keep their PR-4 semantics: a cache hit needs no graph path (it is
  served even during a BN outage), a miss degrades through the usual
  :class:`~repro.baselines.FallbackStack` tags;
* score drift under a ``datagen.drift`` replay is quantified and bounded —
  untouched users stay bit-exact, touched users drift by less than the
  pinned envelope;
* the forked :class:`~repro.system.ShardWorkerPool` can attach the
  published lambda segment and serve cached lookups zero-copy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import BehaviorLog, GeneratorConfig
from repro.datagen.drift import generate_drift_scenario
from repro.datagen.entities import HOUR
from repro.network import FAST_WINDOWS
from repro.system import (
    DeltaSampler,
    LambdaLayer,
    PredictRequest,
    ShardWorkerPool,
    TurboConfig,
    deploy_turbo,
)

pytestmark = pytest.mark.resilience


def lambda_config(**overrides) -> TurboConfig:
    kwargs = dict(
        windows=FAST_WINDOWS,
        train_epochs=5,
        hidden=(8, 4),
        seed=0,
        lambda_tier=True,
    )
    kwargs.update(overrides)
    return TurboConfig(**kwargs)


@pytest.fixture(scope="module")
def lambda_deployed(tiny_dataset):
    return deploy_turbo(tiny_dataset, lambda_config())


@pytest.fixture(scope="module")
def plain_deployed(tiny_dataset):
    return deploy_turbo(
        tiny_dataset,
        TurboConfig(windows=FAST_WINDOWS, train_epochs=5, hidden=(8, 4), seed=0),
    )


@pytest.fixture()
def turbo(lambda_deployed):
    turbo, _data = lambda_deployed
    turbo.faults.clear_plans()
    turbo.recover()
    yield turbo
    turbo.faults.clear_plans()
    turbo.recover()


def covered_requests(turbo, data, count=20):
    """Replay-style requests the batch pass covers: latest txn, audit time."""
    lam = turbo.lambda_layer
    latest = {t.uid: t for t in data.feature_manager.latest_transactions()}
    uids = [int(u) for u in lam.state.node_ids[:count]]
    return [latest[uid] for uid in uids]


class TestZeroDeltaParity:
    def test_deploy_runs_one_batch_pass(self, lambda_deployed):
        turbo, _ = lambda_deployed
        lam = turbo.lambda_layer
        assert lam is not None
        assert lam.batch_passes >= 1
        assert lam.state is not None and lam.state.num_nodes > 0

    def test_sampler_is_delta_tier(self, lambda_deployed):
        turbo, _ = lambda_deployed
        sampler = turbo.bn_server.sampler
        assert isinstance(sampler, DeltaSampler)
        assert sampler.tier == "lambda"

    def test_bit_exact_vs_fresh_path(self, turbo, lambda_deployed, plain_deployed):
        _, data = lambda_deployed
        fresh_turbo, _fresh_data = plain_deployed
        for txn in covered_requests(turbo, data, count=25):
            cached = turbo.handle_request(txn, now=txn.audit_at)
            fresh = fresh_turbo.handle_request(txn, now=txn.audit_at)
            assert cached.tier == "lambda"
            assert cached.staleness == 0
            assert fresh.tier == "sampled"
            # Bit-for-bit: the cached score is the fresh path's replay.
            assert cached.probability == fresh.probability
            assert cached.blocked == fresh.blocked

    def test_lambda_hits_are_traced(self, turbo, lambda_deployed):
        _, data = lambda_deployed
        txn = covered_requests(turbo, data, count=1)[0]
        response = turbo.handle_request(txn, now=txn.audit_at)
        assert response.tier == "lambda"
        assert response.span is not None and response.span.closed
        assert response.span.attributes["tier"] == "lambda"
        children = [s for s in response.span.iter() if s.name == "lambda_delta"]
        assert len(children) == 1
        assert children[0].attributes["staleness"] == 0

    def test_predict_batch_serves_lambda_tier(self, turbo, lambda_deployed):
        _, data = lambda_deployed
        txns = covered_requests(turbo, data, count=8)
        requests = [PredictRequest(txn=t, now=t.audit_at) for t in txns]
        scalar = [turbo.predict(PredictRequest(txn=t, now=t.audit_at)) for t in txns]
        batch = turbo.predict_batch(requests)
        for one, many in zip(scalar, batch):
            assert many.tier == "lambda"
            assert many.staleness == 0
            assert many.probability == one.probability
            assert many.span is not None and many.span.closed

    def test_non_latest_transaction_misses(self, turbo, lambda_deployed):
        """Cached scores carry provenance: an older txn takes the fresh path."""
        _, data = lambda_deployed
        lam = turbo.lambda_layer
        by_uid: dict[int, list] = {}
        for txn in data.dataset.transactions:
            by_uid.setdefault(int(txn.uid), []).append(txn)
        covered = set(int(u) for u in lam.state.node_ids)
        stale_txn = next(
            txns[0]
            for uid, txns in by_uid.items()
            if uid in covered and len(txns) > 1
        )
        before = lam.misses["uncovered"]
        response = turbo.handle_request(stale_txn, now=stale_txn.audit_at)
        assert response.tier == "sampled"
        assert lam.misses["uncovered"] == before + 1

    def test_lambda_metrics_registered(self, turbo, lambda_deployed):
        _, data = lambda_deployed
        txn = covered_requests(turbo, data, count=1)[0]
        turbo.handle_request(txn, now=txn.audit_at)
        snapshot = turbo.metrics.snapshot()
        assert snapshot["counters"]["turbo.lambda.batch_passes"] >= 1
        assert snapshot["counters"]["turbo.lambda.hits"] >= 1
        assert snapshot["gauges"]["turbo.lambda.covered_nodes"] > 0


class TestCheckpoint:
    def test_round_trip_restores_identical_state(self, turbo):
        lam = turbo.lambda_layer
        live = lam.state
        loaded = lam.load_checkpoint()
        assert loaded is not None
        assert loaded.bn_version == live.bn_version
        np.testing.assert_array_equal(loaded.node_ids, live.node_ids)
        np.testing.assert_array_equal(loaded.scores, live.scores)
        np.testing.assert_array_equal(loaded.txn_ids, live.txn_ids)
        np.testing.assert_array_equal(loaded.nows, live.nows)
        np.testing.assert_array_equal(loaded.subgraph_nodes, live.subgraph_nodes)
        assert set(loaded.layers) == set(live.layers)

    def test_fresh_layer_recovers_from_checkpoint(self, turbo):
        """A rebuilt speed layer serves the checkpointed scores (recovery)."""
        lam = turbo.lambda_layer
        rebuilt = LambdaLayer(
            turbo.bn_server,
            turbo.feature_server,
            turbo.prediction_server,
            lam.database,
            hops=lam.hops,
            fanout=lam.fanout,
            allowed=lam.allowed,
        )
        state = rebuilt.load_checkpoint()
        assert state is not None
        assert rebuilt.state is not None  # installed: version + tracking match
        uid = int(state.node_ids[0])
        hit = rebuilt.lookup(uid, int(state.txn_ids[0]), float(state.nows[0]))
        assert hit is not None
        assert hit.score == float(state.scores[0])


class TestFaultSemantics:
    def test_hit_served_during_bn_outage(self, turbo, lambda_deployed):
        """A cache hit needs no graph path: BN down, score still exact."""
        _, data = lambda_deployed
        txn = covered_requests(turbo, data, count=3)[2]
        baseline = turbo.handle_request(txn, now=txn.audit_at)
        turbo.faults.add_transient("bn_server", rate=1.0)
        turbo.bn_server.cache.clear()
        response = turbo.handle_request(txn, now=txn.audit_at)
        assert response.tier == "lambda"
        assert response.degradation == "full"
        assert response.probability == baseline.probability

    def test_miss_with_fault_keeps_fallback_tags(self, turbo, lambda_deployed):
        """A cache miss under a BN outage degrades exactly like PR 4."""
        _, data = lambda_deployed
        by_uid: dict[int, list] = {}
        for txn in data.dataset.transactions:
            by_uid.setdefault(int(txn.uid), []).append(txn)
        covered = set(int(u) for u in turbo.lambda_layer.state.node_ids)
        stale_txn = next(
            txns[0]
            for uid, txns in by_uid.items()
            if uid in covered and len(txns) > 1
        )
        user = data.dataset.user_by_id()[stale_txn.uid]
        turbo.faults.add_transient("bn_server", rate=1.0)
        turbo.bn_server.cache.clear()
        response = turbo.handle_request(stale_txn, now=stale_txn.audit_at)
        assert response.tier == "sampled"
        assert response.degradation == "scorecard"
        assert response.degradation_reason == "graph_path_down"
        assert response.probability == turbo.fallbacks.scorecard.score(
            user, stale_txn
        )


class TestStalenessBudget:
    @pytest.fixture()
    def drifted(self, tiny_dataset):
        """A lambda deployment with a re-baselined pass plus a small delta.

        The first ``run_due_jobs`` after deploy replays every window epoch
        since the origin (and runs the TTL sweep), touching most of the
        graph — so the fixture flushes that backlog, re-runs the batch
        pass to re-baseline delta tracking, and only then ingests fresh
        co-occurring logs inside one new epoch.
        """
        turbo, data = deploy_turbo(tiny_dataset, lambda_config())
        lam = turbo.lambda_layer
        t_end = max(log.timestamp for log in tiny_dataset.logs)
        turbo.bn_server.run_due_jobs(now=t_end)
        lam.run_batch_pass(turbo.clock.now())

        covered = [int(u) for u in lam.state.node_ids]
        a, b = covered[0], covered[1]
        template = tiny_dataset.logs[0]
        logs = [
            BehaviorLog(
                uid=uid,
                btype=template.btype,
                value="lambda-shared-device",
                timestamp=t_end + 60.0 + i,
            )
            for i, uid in enumerate((a, b))
        ]
        turbo.bn_server.ingest(logs)
        turbo.bn_server.run_due_jobs(now=t_end + 2 * HOUR)
        assert lam._bn.delta_size() > 0
        return turbo, data, (a, b)

    def test_touched_users_fall_through_at_zero_budget(self, drifted):
        turbo, data, (a, b) = drifted
        lam = turbo.lambda_layer
        latest = {t.uid: t for t in data.feature_manager.latest_transactions()}
        before = lam.misses["stale"]
        txn = latest[a]
        response = turbo.handle_request(txn, now=txn.audit_at)
        assert response.tier == "sampled"
        assert lam.misses["stale"] == before + 1
        assert lam.fallthrough_requests >= 1
        assert lam.fallthrough_nodes > 0

    def test_untouched_users_still_hit_bit_exact(self, drifted):
        turbo, data, (a, b) = drifted
        lam = turbo.lambda_layer
        touched = lam._delta_touched()
        latest = {t.uid: t for t in data.feature_manager.latest_transactions()}
        untouched_uid = next(
            int(uid)
            for uid in lam.state.node_ids
            if lam.state.staleness_of(lam.state.position_of(int(uid)), touched) == 0
        )
        txn = latest[untouched_uid]
        response = turbo.handle_request(txn, now=txn.audit_at)
        assert response.tier == "lambda"
        assert response.staleness == 0

    def test_budget_admits_stale_hits_with_honest_price(self, drifted):
        turbo, data, (a, b) = drifted
        lam = turbo.lambda_layer
        latest = {t.uid: t for t in data.feature_manager.latest_transactions()}
        lam.staleness_budget = 10**9
        txn = latest[a]
        response = turbo.handle_request(txn, now=txn.audit_at)
        assert response.tier == "lambda"
        assert response.staleness > 0

    def test_new_batch_pass_resets_staleness(self, drifted):
        turbo, data, (a, b) = drifted
        lam = turbo.lambda_layer
        lam.run_batch_pass(turbo.clock.now())
        latest = {t.uid: t for t in data.feature_manager.latest_transactions()}
        txn = latest[a]
        response = turbo.handle_request(txn, now=txn.audit_at)
        assert response.tier == "lambda"
        assert response.staleness == 0

    def test_refresh_period_drives_maybe_refresh(self, tiny_dataset):
        turbo, _data = deploy_turbo(
            tiny_dataset, lambda_config(lambda_refresh_period=50.0)
        )
        lam = turbo.lambda_layer
        passes = lam.batch_passes
        assert not lam.maybe_refresh(lam.last_pass_at + 10.0)
        assert lam.maybe_refresh(lam.last_pass_at + 60.0)
        assert lam.batch_passes == passes + 1


class TestDriftReplay:
    def test_drift_replay_quantifies_bounded_score_drift(self, tiny_dataset):
        """Replay a ``datagen.drift`` period as new behavior; bound the drift.

        The drifted period's logs are remapped onto covered users (a fresh
        population shares no uids with the deployment) so the new
        co-occurrences land inside cached subgraphs.  Serving then happens
        twice: once at budget 0 (forcing the exact fresh path — the ground
        truth) and once at an unbounded budget (serving the stale cached
        scores).  Users whose subgraphs absorbed no touches must be
        bit-exact; touched users' drift is quantified and pinned.
        """
        turbo, data = deploy_turbo(tiny_dataset, lambda_config())
        lam = turbo.lambda_layer
        t_end = max(log.timestamp for log in tiny_dataset.logs)
        turbo.bn_server.run_due_jobs(now=t_end)
        lam.run_batch_pass(turbo.clock.now())

        scenario = generate_drift_scenario(
            base=GeneratorConfig(n_users=60, span_days=30.0),
            n_periods=1,
            seed=3,
        )
        period = scenario.periods[0]
        covered = [int(u) for u in lam.state.node_ids]
        drift_logs = []
        for i, log in enumerate(sorted(period.dataset.logs, key=lambda l: l.timestamp)[:300]):
            drift_logs.append(
                BehaviorLog(
                    uid=covered[hash(log.uid) % len(covered)],
                    btype=log.btype,
                    value=f"drift:{log.value}",
                    timestamp=t_end + 1.0 + 0.01 * i,
                )
            )
        turbo.bn_server.ingest(drift_logs)
        turbo.bn_server.run_due_jobs(now=t_end + 2 * HOUR)
        assert lam._bn.delta_size() > 0

        latest = {t.uid: t for t in data.feature_manager.latest_transactions()}
        sample = covered[:40]

        lam.staleness_budget = 0
        fresh = {}
        for uid in sample:
            txn = latest[uid]
            fresh[uid] = turbo.handle_request(txn, now=txn.audit_at)
        lam.staleness_budget = 10**9
        drifts, stale_count = [], 0
        for uid in sample:
            txn = latest[uid]
            cached = turbo.handle_request(txn, now=txn.audit_at)
            assert cached.tier == "lambda"
            delta = abs(cached.probability - fresh[uid].probability)
            if cached.staleness == 0:
                # Zero staleness ⇒ bit-exactness held through the replay.
                assert delta == 0.0
            else:
                stale_count += 1
                drifts.append(delta)
        assert stale_count > 0, "drift replay touched no sampled user"
        # The pinned envelope: deterministic under the fixed seeds above.
        assert max(drifts) < 0.35, f"stale-score drift too large: {max(drifts)}"


class TestWorkerPoolLambda:
    def test_pool_serves_cached_lookups_from_published_segment(self, tiny_dataset):
        turbo, _data = deploy_turbo(tiny_dataset, lambda_config(shards=2))
        lam = turbo.lambda_layer
        router = turbo.bn_server.router
        assert router is not None and lam._segment is not None
        router.ensure_published()
        state = lam.state
        with ShardWorkerPool(router.segments, n_workers=1) as pool:
            version = pool.lambda_attach(0, lam._segment.segment)
            assert version == state.bn_version
            uid = int(state.node_ids[0])
            triples = [
                (uid, int(state.txn_ids[0]), float(state.nows[0])),
                (uid, 10**9, float(state.nows[0])),  # wrong txn -> miss
            ]
            scores = pool.lambda_lookup(0, triples)
            assert scores[0] == float(state.scores[0])
            assert scores[1] is None

    def test_lookup_without_attach_is_an_error(self, tiny_dataset):
        turbo, _data = deploy_turbo(tiny_dataset, lambda_config(shards=2))
        router = turbo.bn_server.router
        router.ensure_published()
        with ShardWorkerPool(router.segments, n_workers=1) as pool:
            with pytest.raises(RuntimeError):
                pool.lambda_lookup(0, [(1, 1, 0.0)])


class TestIncrementalRefresh:
    """Full-graph + incremental maybe_refresh (the PR-9 materialize tier)."""

    def test_deploy_pass_is_full_graph(self, lambda_deployed):
        turbo, _ = lambda_deployed
        lam = turbo.lambda_layer
        assert lam.full_graph and lam.incremental
        assert lam.last_materialize is not None
        assert lam.last_materialize.mode == "full"
        assert lam.last_materialize.rows_computed == lam.state.num_nodes

    def test_maybe_refresh_prefers_incremental(self, tiny_dataset):
        turbo, _data = deploy_turbo(
            tiny_dataset, lambda_config(lambda_refresh_period=50.0)
        )
        lam = turbo.lambda_layer
        passes = lam.batch_passes
        assert lam.maybe_refresh(lam.last_pass_at + 60.0)
        assert lam.batch_passes == passes + 1
        assert lam.incremental_passes == 1
        assert lam.last_materialize.mode == "incremental"
        # Zero delta since the deploy pass: the refresh recomputes nothing.
        assert lam.last_materialize.rows_computed == 0

    def test_incremental_off_runs_full_sweeps(self, tiny_dataset):
        turbo, _data = deploy_turbo(
            tiny_dataset,
            lambda_config(lambda_refresh_period=50.0, lambda_incremental=False),
        )
        lam = turbo.lambda_layer
        assert lam.maybe_refresh(lam.last_pass_at + 60.0)
        assert lam.incremental_passes == 0
        assert lam.last_materialize.mode == "full"

    def test_legacy_replay_config_still_serves(self, tiny_dataset):
        turbo, data = deploy_turbo(
            tiny_dataset,
            lambda_config(lambda_full_graph=False, lambda_incremental=False),
        )
        lam = turbo.lambda_layer
        assert lam.last_materialize is None  # replay path has no sweep stats
        txn = covered_requests(turbo, data, count=1)[0]
        response = turbo.handle_request(txn, now=txn.audit_at)
        assert response.tier == "lambda"

    def test_incremental_refresh_after_delta_matches_full(self, tiny_dataset):
        turbo, _data = deploy_turbo(tiny_dataset, lambda_config())
        lam = turbo.lambda_layer
        t_end = max(log.timestamp for log in tiny_dataset.logs)
        turbo.bn_server.run_due_jobs(now=t_end)
        lam.run_batch_pass(turbo.clock.now())

        covered = [int(u) for u in lam.state.node_ids]
        template = tiny_dataset.logs[0]
        turbo.bn_server.ingest(
            [
                BehaviorLog(
                    uid=uid,
                    btype=template.btype,
                    value="inc-shared-device",
                    timestamp=t_end + 60.0 + i,
                )
                for i, uid in enumerate(covered[:2])
            ]
        )
        turbo.bn_server.run_due_jobs(now=t_end + 2 * HOUR)
        assert lam._bn.delta_size() > 0
        lam.run_incremental_pass(turbo.clock.now())
        incremental = lam.state
        assert lam.last_materialize.mode == "incremental"
        assert 0 < lam.last_materialize.rows_computed < incremental.num_nodes

        lam.run_batch_pass(turbo.clock.now())
        full = lam.state
        # Scores and subgraphs must be byte-equal the fresh full sweep;
        # layer rows recomputed through the rectangular path are equal
        # within numerics (BLAS shape-dependence), untouched rows exactly.
        assert incremental.scores.tobytes() == full.scores.tobytes()
        assert (
            incremental.subgraph_nodes.tobytes() == full.subgraph_nodes.tobytes()
        )
        for name, want in full.layers.items():
            np.testing.assert_allclose(
                incremental.layers[name], want, rtol=1e-9, atol=1e-12
            )

    def test_materialize_metrics_and_span(self, tiny_dataset):
        turbo, _data = deploy_turbo(tiny_dataset, lambda_config())
        lam = turbo.lambda_layer
        lam.run_incremental_pass(turbo.clock.now())
        counters = turbo.metrics.snapshot()["counters"]
        assert "turbo.lambda.materialize.rows" in counters
        assert "turbo.lambda.materialize.edges" in counters
        histograms = turbo.metrics.snapshot()["histograms"]
        assert "turbo.lambda.materialize.wall_seconds" in histograms
        assert "turbo.lambda.materialize.clock_seconds" in histograms
        assert "turbo.lambda.materialize.cone_rows" in histograms

        trace = next(
            t for t in reversed(turbo.tracer.traces) if t.name == "lambda_batch"
        )
        mat = next(s for s in trace.children if s.name == "lambda_materialize")
        assert mat.attributes["mode"] == "incremental"
        assert mat.closed
        stages = [child.name for child in mat.children]
        assert "scores" in stages
        assert "fused" in stages

    def test_stats_expose_materialize_counters(self, lambda_deployed):
        turbo, _ = lambda_deployed
        stats = turbo.lambda_layer.stats()
        assert "incremental_passes" in stats
        assert stats["materialize_rows"] >= 0
        assert stats["materialize_edges"] >= 0
