"""Batched feature assembly + latest-transaction visibility contracts.

Pins the feature-server half of the batched serving PR:

* ``features_for_batch`` matrices are bit-for-bit what per-request
  ``features_for`` calls return, while unique context rows are charged and
  computed once per batch (the coalescing economics);
* the ``(uid, time-bucket)`` feature-row cache serves bit-identical rows;
* the latest-transaction table is *not* frozen at construction:
  ``observe`` makes post-deploy transactions visible (and invalidates the
  affected cached rows), ``refresh`` rebuilds the table wholesale;
* the scan-pricing fix: ``_charge_node`` counts history via bisect and
  agrees exactly with the pinned slice-materializing reference.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.features import FeatureManager
from repro.system import FeatureServer, InMemoryCache, LatencyModel


@pytest.fixture()
def server(tiny_dataset):
    latency = LatencyModel(jitter_sigma=0.0, seed=0)
    manager = FeatureManager(tiny_dataset, include_stats=True)
    return FeatureServer(manager, latency, cache=InMemoryCache(latency))


def batch_inputs(tiny_dataset, count=8, context=6):
    """Overlapping node lists: every request shares most context nodes."""
    transactions = tiny_dataset.transactions[:count]
    shared = [u.uid for u in tiny_dataset.users[:context]]
    node_lists = [
        [t.uid] + [uid for uid in shared if uid != t.uid] for t in transactions
    ]
    nows = [t.audit_at for t in transactions]
    return node_lists, transactions, nows


class TestBatchParity:
    def test_matrices_bitexact_vs_scalar(self, tiny_dataset, server):
        node_lists, transactions, nows = batch_inputs(tiny_dataset)
        scalar = [
            server.features_for(nodes, txn, now)[0]
            for nodes, txn, now in zip(node_lists, transactions, nows)
        ]
        matrices, seconds, errors, stats = server.features_for_batch(
            node_lists, transactions, nows
        )
        assert errors == [None] * len(node_lists)
        for got, want in zip(matrices, scalar):
            np.testing.assert_array_equal(got, want)
        assert all(s > 0 for s in seconds)

    def test_row_cache_hits_stay_bitexact(self, tiny_dataset, server):
        node_lists, transactions, nows = batch_inputs(tiny_dataset)
        first, *_ = server.features_for_batch(node_lists, transactions, nows)
        assert server.row_cache_misses > 0
        hits_before = server.row_cache_hits
        second, *_ = server.features_for_batch(node_lists, transactions, nows)
        assert server.row_cache_hits > hits_before  # second pass reuses rows
        for got, want in zip(second, first):
            np.testing.assert_array_equal(got, want)

    def test_failed_upstream_requests_are_skipped(self, tiny_dataset, server):
        node_lists, transactions, nows = batch_inputs(tiny_dataset, count=4)
        node_lists[2] = None  # failed in the sampling stage
        matrices, seconds, errors, stats = server.features_for_batch(
            node_lists, transactions, nows
        )
        assert matrices[2] is None
        assert seconds[2] == 0.0
        assert errors[2] is None
        assert stats.requests == 3

    def test_coalescing_charges_unique_rows_once(self, tiny_dataset, server):
        node_lists, transactions, nows = batch_inputs(tiny_dataset)
        _, batch_seconds, _, stats = server.features_for_batch(
            node_lists, transactions, nows
        )
        assert stats.coalescing > 1.5  # shared context actually coalesced
        assert stats.unique_rows < stats.node_touches
        fresh_scalar, _ = (
            FeatureServer(
                server.feature_manager,
                server.latency,
                cache=InMemoryCache(server.latency),
            ),
            None,
        )
        scalar_total = sum(
            fresh_scalar.features_for(nodes, txn, now)[1]
            for nodes, txn, now in zip(node_lists, transactions, nows)
        )
        assert sum(batch_seconds) < scalar_total


class TestLatestTransactionVisibility:
    def test_observe_updates_latest_and_invalidates_rows(self, tiny_dataset, server):
        node_lists, transactions, nows = batch_inputs(tiny_dataset)
        server.features_for_batch(node_lists, transactions, nows)
        uid = next(uid for uid in server._row_cache)
        old = server._latest_txn[uid]
        newer = replace(old, txn_id=10**6, created_at=old.created_at + 3600.0)

        assert server.observe([newer]) == 1
        assert server._latest_txn[uid] is newer
        assert uid not in server._row_cache  # cached row invalidated
        # Older duplicates are ignored.
        assert server.observe([old]) == 0
        assert server._latest_txn[uid] is newer

    def test_observed_transaction_changes_context_rows(self, tiny_dataset, server):
        node_lists, transactions, nows = batch_inputs(tiny_dataset, count=2)
        uid = node_lists[0][1]
        before, *_ = server.features_for_batch(node_lists, transactions, nows)
        old = server._latest_txn[uid]
        newer = replace(
            old,
            txn_id=10**6,
            created_at=old.created_at + 3600.0,
            item_value=old.item_value * 3,
        )
        server.observe([newer])
        after, *_ = server.features_for_batch(node_lists, transactions, nows)
        position = node_lists[0].index(uid)
        assert not np.array_equal(after[0][position], before[0][position])

    def test_refresh_rebuilds_table(self, tiny_dataset, server):
        uid = next(iter(server._latest_txn))
        del server._latest_txn[uid]
        server.refresh()
        assert uid in server._latest_txn  # not frozen at construction
        assert server.refreshes == 1
        assert server._row_cache == {}
        assert server.stats()["row_cache_rows"] == 0.0


class TestScanPricing:
    def test_count_matches_reference(self, tiny_dataset, server):
        nows = [t.audit_at for t in tiny_dataset.transactions[:10]]
        for uid in [u.uid for u in tiny_dataset.users[:20]]:
            for now in nows:
                assert server._count_logs(uid, now) == server._count_logs_reference(
                    uid, now
                )

    def test_charged_seconds_identical_to_reference_counting(self, tiny_dataset):
        latency_a = LatencyModel(jitter_sigma=0.0, seed=0)
        latency_b = LatencyModel(jitter_sigma=0.0, seed=0)
        manager = FeatureManager(tiny_dataset, include_stats=True)
        fast = FeatureServer(manager, latency_a, cache=InMemoryCache(latency_a))
        slow = FeatureServer(manager, latency_b, cache=InMemoryCache(latency_b))
        slow._count_logs = slow._count_logs_reference
        txn = tiny_dataset.transactions[0]
        nodes = [txn.uid] + [u.uid for u in tiny_dataset.users[:5] if u.uid != txn.uid]
        _, fast_seconds = fast.features_for(nodes, txn, now=txn.audit_at)
        _, slow_seconds = slow.features_for(nodes, txn, now=txn.audit_at)
        assert fast_seconds == slow_seconds
