"""Online A/B replay tests (Section VI-E)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import default_scorecard
from repro.network import FAST_WINDOWS
from repro.system import TurboConfig, deploy_turbo, run_ab_test
from repro.system.abtest import ABTestResult


@pytest.fixture(scope="module")
def deployed(tiny_dataset):
    return deploy_turbo(
        tiny_dataset,
        TurboConfig(windows=FAST_WINDOWS, train_epochs=15, hidden=(16, 8), seed=0),
    )


class TestABTest:
    def test_result_fields_consistent(self, deployed, tiny_dataset):
        turbo, data = deployed
        test_uids = {data.nodes[i] for i in data.test_idx}
        txns = [t for t in tiny_dataset.transactions if t.uid in test_uids]
        result = run_ab_test(
            turbo, default_scorecard(0.6), tiny_dataset, txns, np.random.default_rng(0)
        )
        assert result.n_baseline + result.n_test == len(txns)
        assert 0.0 <= result.baseline_fraud_ratio <= 1.0
        assert 0.0 <= result.test_fraud_ratio <= 1.0
        assert 0.0 <= result.online_precision <= 1.0
        assert 0.0 <= result.online_recall <= 1.0

    def test_turbo_reduces_fraud_ratio(self, deployed, tiny_dataset):
        turbo, data = deployed
        test_uids = {data.nodes[i] for i in data.test_idx}
        txns = [t for t in tiny_dataset.transactions if t.uid in test_uids]
        result = run_ab_test(
            turbo, default_scorecard(0.6), tiny_dataset, txns, np.random.default_rng(1)
        )
        assert result.test_fraud_ratio <= result.baseline_fraud_ratio

    def test_empty_transactions_rejected(self, deployed, tiny_dataset):
        turbo, _ = deployed
        with pytest.raises(ValueError):
            run_ab_test(turbo, default_scorecard(), tiny_dataset, [])

    def test_reduction_property(self):
        result = ABTestResult(
            n_baseline=10,
            n_test=10,
            baseline_accepted=8,
            test_accepted=7,
            baseline_fraud_ratio=0.2,
            test_fraud_ratio=0.1,
            online_precision=0.9,
            online_recall=0.5,
        )
        assert result.fraud_ratio_reduction == pytest.approx(0.5)

    def test_reduction_zero_baseline(self):
        result = ABTestResult(1, 1, 1, 1, 0.0, 0.0, 0.0, 0.0)
        assert result.fraud_ratio_reduction == 0.0
