"""Documentation-coverage checks: every public item carries a docstring."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.nn",
    "repro.datagen",
    "repro.network",
    "repro.features",
    "repro.core",
    "repro.baselines",
    "repro.system",
    "repro.eval",
    "repro.obs",
]


def iter_modules() -> list[str]:
    names = set(PACKAGES)
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                if not info.name.startswith("_"):
                    names.add(f"{package_name}.{info.name}")
    return sorted(names)


@pytest.mark.parametrize("module_name", iter_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", PACKAGES)
def test_public_api_documented(module_name):
    """Everything exported via __all__ has a non-trivial docstring."""
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    undocumented: list[str] = []
    for name in exported:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            doc = inspect.getdoc(obj)
            if not doc or len(doc.strip()) < 10:
                undocumented.append(f"{module_name}.{name}")
    assert not undocumented, undocumented


@pytest.mark.parametrize("module_name", PACKAGES)
def test_public_classes_document_their_methods(module_name):
    """Public (non-dunder) methods of exported classes are documented."""
    module = importlib.import_module(module_name)
    undocumented: list[str] = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if not inspect.isclass(obj):
            continue
        for method_name, method in inspect.getmembers(obj, inspect.isfunction):
            if method_name.startswith("_"):
                continue
            if method.__qualname__.split(".")[0] != obj.__name__:
                continue  # inherited elsewhere; documented at the source
            if not inspect.getdoc(method):
                undocumented.append(f"{module_name}.{name}.{method_name}")
    assert not undocumented, undocumented


def test_version_exported():
    assert repro.__version__
