"""Behavior statistical feature (X_s) tests."""

from __future__ import annotations

import numpy as np

from repro.datagen import DAY, HOUR, BehaviorLog, BehaviorType
from repro.features import (
    UserLogIndex,
    statistical_feature_names,
    statistical_features,
)

DEV = BehaviorType.DEVICE_ID
IP = BehaviorType.IPV4


def make_index() -> UserLogIndex:
    logs = [
        BehaviorLog(1, DEV, "d1", 10.0),
        BehaviorLog(1, DEV, "d2", 30 * 60.0),
        BehaviorLog(1, IP, "ip1", 40 * 60.0),
        BehaviorLog(1, DEV, "d1", 2 * DAY),
        BehaviorLog(2, DEV, "x", 100.0),
    ]
    return UserLogIndex(logs)


class TestUserLogIndex:
    def test_logs_before_cutoff(self):
        index = make_index()
        assert len(index.logs_before(1, HOUR)) == 3
        assert len(index.logs_before(1, 5.0)) == 0

    def test_logs_in_window(self):
        index = make_index()
        window_logs = index.logs_in_window(1, HOUR, HOUR)
        assert len(window_logs) == 3

    def test_unknown_user_empty(self):
        assert make_index().logs_before(99, 1e9) == []

    def test_users_listed(self):
        assert set(make_index().users()) == {1, 2}


class TestStatisticalFeatures:
    def test_length_matches_names(self):
        vector = statistical_features(make_index(), 1, as_of=DAY)
        assert vector.shape == (len(statistical_feature_names()),)

    def test_window_counts(self):
        names = statistical_feature_names()
        vector = statistical_features(make_index(), 1, as_of=HOUR)
        assert vector[names.index("logs_1h")] == 3.0
        assert vector[names.index("distinct_device_id_1h")] == 2.0
        assert vector[names.index("distinct_ipv4_1h")] == 1.0

    def test_total_logs_and_span(self):
        names = statistical_feature_names()
        vector = statistical_features(make_index(), 1, as_of=3 * DAY)
        assert vector[names.index("total_logs")] == 4.0
        np.testing.assert_allclose(
            vector[names.index("span_days")], (2 * DAY - 10.0) / DAY
        )

    def test_empty_user_is_zero_vector(self):
        vector = statistical_features(make_index(), 99, as_of=DAY)
        np.testing.assert_allclose(vector, 0.0)

    def test_burstiness_bounds(self):
        rng = np.random.default_rng(0)
        logs = [
            BehaviorLog(5, DEV, "d", float(t))
            for t in np.sort(rng.uniform(0, 30 * DAY, size=60))
        ]
        vector = statistical_features(UserLogIndex(logs), 5, as_of=31 * DAY)
        burst = vector[statistical_feature_names().index("gap_burstiness")]
        assert -1.0 <= burst <= 1.0

    def test_bursty_user_scores_higher_than_regular(self):
        names = statistical_feature_names()
        regular = [BehaviorLog(1, DEV, "d", i * HOUR) for i in range(50)]
        bursty = [BehaviorLog(2, DEV, "d", float(t)) for t in
                  sorted([i * 10.0 for i in range(25)] + [DAY + i * 10.0 for i in range(25)])]
        index = UserLogIndex(regular + bursty)
        b_regular = statistical_features(index, 1, as_of=10 * DAY)[
            names.index("gap_burstiness")
        ]
        b_bursty = statistical_features(index, 2, as_of=10 * DAY)[
            names.index("gap_burstiness")
        ]
        assert b_bursty > b_regular
