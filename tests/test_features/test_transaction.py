"""Transaction feature (X_tau) tests."""

from __future__ import annotations

import numpy as np

from repro.datagen import DAY, HOUR, Transaction, User
from repro.features import TRANSACTION_FEATURE_NAMES, transaction_features


def make_pair(**txn_kwargs):
    user = User(uid=1, registered_at=0.0, income_level=3.0)
    defaults = dict(txn_id=0, uid=1, created_at=2 * DAY + 14 * HOUR)
    defaults.update(txn_kwargs)
    return Transaction(**defaults), user


class TestTransactionFeatures:
    def test_length_matches_names(self):
        txn, user = make_pair()
        assert transaction_features(txn, user).shape == (
            len(TRANSACTION_FEATURE_NAMES),
        )

    def test_log_scaling(self):
        txn, user = make_pair(item_value=999.0)
        vector = transaction_features(txn, user)
        idx = TRANSACTION_FEATURE_NAMES.index("log_item_value")
        np.testing.assert_allclose(vector[idx], np.log1p(999.0))

    def test_application_hour(self):
        txn, user = make_pair()
        idx = TRANSACTION_FEATURE_NAMES.index("application_hour")
        np.testing.assert_allclose(transaction_features(txn, user)[idx], 14.0)

    def test_rent_to_income_guards_zero_income(self):
        txn, user = make_pair(monthly_rent=100.0)
        user.income_level = 0.0
        vector = transaction_features(txn, user)
        assert np.isfinite(vector).all()

    def test_weekday_in_range(self):
        txn, user = make_pair()
        idx = TRANSACTION_FEATURE_NAMES.index("application_weekday")
        assert 0 <= transaction_features(txn, user)[idx] < 7
