"""Profile feature (X_u) tests."""

from __future__ import annotations

import numpy as np

from repro.datagen import DAY, User
from repro.features import N_OCCUPATIONS, PROFILE_FEATURE_NAMES, profile_features


class TestProfileFeatures:
    def make_user(self, **kwargs) -> User:
        defaults = dict(uid=1, registered_at=10 * DAY)
        defaults.update(kwargs)
        return User(**defaults)

    def test_length_matches_names(self):
        vector = profile_features(self.make_user(), as_of=20 * DAY)
        assert vector.shape == (len(PROFILE_FEATURE_NAMES),)

    def test_occupation_one_hot(self):
        vector = profile_features(self.make_user(occupation_code=3), as_of=20 * DAY)
        one_hot = vector[-N_OCCUPATIONS:]
        assert one_hot.sum() == 1.0
        assert one_hot[3] == 1.0

    def test_occupation_code_wraps(self):
        vector = profile_features(
            self.make_user(occupation_code=N_OCCUPATIONS + 2), as_of=20 * DAY
        )
        assert vector[-N_OCCUPATIONS:][2] == 1.0

    def test_account_age_in_days(self):
        vector = profile_features(self.make_user(), as_of=17 * DAY)
        age_index = PROFILE_FEATURE_NAMES.index("account_age_days")
        np.testing.assert_allclose(vector[age_index], 7.0)

    def test_account_age_never_negative(self):
        vector = profile_features(self.make_user(), as_of=0.0)
        age_index = PROFILE_FEATURE_NAMES.index("account_age_days")
        assert vector[age_index] == 0.0

    def test_boolean_flags_encoded(self):
        vector = profile_features(
            self.make_user(phone_verified=False, id_verified=True), as_of=20 * DAY
        )
        assert vector[PROFILE_FEATURE_NAMES.index("phone_verified")] == 0.0
        assert vector[PROFILE_FEATURE_NAMES.index("id_verified")] == 1.0
