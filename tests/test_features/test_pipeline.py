"""FeatureManager / StandardScaler tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features import FeatureManager, StandardScaler


class TestStandardScaler:
    def test_fit_transform_standardizes(self, rng):
        matrix = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(matrix)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_not_divided_by_zero(self):
        matrix = np.ones((10, 2))
        scaled = StandardScaler().fit_transform(matrix)
        assert np.isfinite(scaled).all()

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((0, 3)))


class TestFeatureManager:
    def test_dim_matches_names(self, tiny_dataset):
        fm = FeatureManager(tiny_dataset)
        assert fm.dim == len(fm.feature_names)

    def test_include_stats_toggles_dimension(self, tiny_dataset):
        with_stats = FeatureManager(tiny_dataset, include_stats=True)
        without = FeatureManager(tiny_dataset, include_stats=False)
        assert with_stats.dim > without.dim

    def test_vector_shape(self, tiny_dataset):
        fm = FeatureManager(tiny_dataset)
        txn = tiny_dataset.transactions[0]
        assert fm.vector(txn).shape == (fm.dim,)

    def test_unknown_user_raises(self, tiny_dataset):
        fm = FeatureManager(tiny_dataset)
        txn = tiny_dataset.transactions[0]
        bad = type(txn)(txn_id=-1, uid=10**9, created_at=0.0)
        with pytest.raises(KeyError):
            fm.vector(bad)

    def test_matrix_aligned_with_labels(self, tiny_dataset):
        fm = FeatureManager(tiny_dataset)
        txns = tiny_dataset.transactions[:20]
        labeled = fm.matrix(txns)
        assert labeled.features.shape == (20, fm.dim)
        np.testing.assert_array_equal(
            labeled.labels, [int(t.is_fraud) for t in txns]
        )
        np.testing.assert_array_equal(labeled.uids, [t.uid for t in txns])

    def test_matrix_rejects_empty(self, tiny_dataset):
        with pytest.raises(ValueError):
            FeatureManager(tiny_dataset).matrix([])

    def test_latest_transactions_one_per_user(self, tiny_dataset):
        fm = FeatureManager(tiny_dataset)
        latest = fm.latest_transactions()
        uids = [t.uid for t in latest]
        assert len(uids) == len(set(uids))
        by_user = tiny_dataset.transactions_by_user()
        for txn in latest[:20]:
            assert txn.created_at == max(t.created_at for t in by_user[txn.uid])

    def test_node_matrix_row_order(self, tiny_dataset):
        fm = FeatureManager(tiny_dataset)
        uids = sorted(tiny_dataset.labels)[:10]
        matrix = fm.node_matrix(uids)
        assert matrix.shape == (10, fm.dim)

    def test_node_matrix_unknown_user(self, tiny_dataset):
        fm = FeatureManager(tiny_dataset)
        with pytest.raises(KeyError):
            fm.node_matrix([10**9])

    def test_features_observed_at_audit_time(self, tiny_dataset):
        """Changing as_of changes the statistical features (no future leak)."""
        fm = FeatureManager(tiny_dataset, include_stats=True)
        txn = max(tiny_dataset.transactions, key=lambda t: t.created_at)
        early = fm.vector(txn, as_of=tiny_dataset.start_time + 1.0)
        late = fm.vector(txn, as_of=tiny_dataset.end_time)
        assert not np.allclose(early, late)
