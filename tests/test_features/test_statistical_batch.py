"""Columnar feature assembly parity: batched == scalar, bit for bit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features import FeatureManager
from repro.features.statistical import (
    UserLogIndex,
    statistical_features,
    statistical_features_batch,
)


@pytest.fixture(scope="module")
def index(tiny_dataset):
    return UserLogIndex(tiny_dataset.logs)


class TestVectorizedConstruction:
    def test_matches_reference_tables(self, tiny_dataset, index):
        """The lexsort constructor reproduces the pinned per-user-sort
        construction exactly: same keys, same order, same log objects."""
        by_user, by_time = UserLogIndex.reference_tables(tiny_dataset.logs)
        assert list(index._logs) == list(by_user)  # insertion order too
        for uid in by_user:
            assert index._logs[uid] == by_user[uid]
            assert index._times[uid] == by_time[uid]

    def test_stable_on_equal_timestamps(self, tiny_dataset):
        """Ties keep input order (lexsort stability == list.sort stability)."""
        logs = list(tiny_dataset.logs[:50])
        tied = [l for l in logs]
        for log in logs[:25]:
            tied.append(type(log)(uid=log.uid, btype=log.btype, value=log.value,
                                  timestamp=log.timestamp))
        got = UserLogIndex(tied)
        by_user, _ = UserLogIndex.reference_tables(tied)
        for uid in by_user:
            assert got._logs[uid] == by_user[uid]

    def test_empty_logs(self):
        empty = UserLogIndex([])
        assert empty.users() == []
        assert empty.count_before(1, 1e12) == 0
        assert empty.logs_before(1, 1e12) == []


class TestCountBefore:
    def test_equals_len_logs_before(self, tiny_dataset, index):
        times = [l.timestamp for l in tiny_dataset.logs]
        cuts = np.quantile(times, [0.0, 0.1, 0.5, 0.9, 1.0])
        for uid in index.users()[:40]:
            for as_of in cuts:
                assert index.count_before(uid, as_of) == len(
                    index.logs_before(uid, as_of)
                )

    def test_unknown_user(self, index):
        assert index.count_before(10**9, 1e12) == 0


class TestStatisticalBatchParity:
    def test_bitexact_rows(self, tiny_dataset, index):
        times = [l.timestamp for l in tiny_dataset.logs]
        end = max(times)
        pairs = []
        for uid in index.users()[:60]:
            first = index._times[uid][0]
            pairs.extend(
                [
                    (uid, end),
                    (uid, (first + end) / 2.0),
                    (uid, first - 1.0),  # empty history
                ]
            )
        pairs.append((10**9, end))  # unknown user
        batch = statistical_features_batch(index, pairs)
        for row, (uid, as_of) in zip(batch, pairs):
            np.testing.assert_array_equal(
                row, statistical_features(index, uid, as_of)
            )

    def test_empty_pairs(self, index):
        assert statistical_features_batch(index, []).shape[0] == 0


class TestVectorBatchParity:
    def test_bitexact_vs_scalar_vector(self, tiny_dataset):
        manager = FeatureManager(tiny_dataset, include_stats=True)
        transactions = tiny_dataset.transactions[:24]
        # Mix of target-style (explicit as_of) and context-style (audit time).
        as_ofs = [
            t.audit_at if i % 2 == 0 else None for i, t in enumerate(transactions)
        ]
        batch = manager.vector_batch(transactions, as_ofs)
        assert len(batch) == len(transactions)
        for row, txn, as_of in zip(batch, transactions, as_ofs):
            np.testing.assert_array_equal(row, manager.vector(txn, as_of=as_of))
