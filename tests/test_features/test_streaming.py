"""Streaming feature aggregator tests, including batch equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import DAY, HOUR, BehaviorLog, BehaviorType
from repro.features import (
    StreamingAggregator,
    UserLogIndex,
    statistical_feature_names,
    statistical_features,
)

DEV = BehaviorType.DEVICE_ID
IP = BehaviorType.IPV4


def sample_logs():
    return [
        BehaviorLog(1, DEV, "d1", 10.0),
        BehaviorLog(1, DEV, "d2", 30 * 60.0),
        BehaviorLog(1, IP, "ip1", 40 * 60.0),
        BehaviorLog(2, DEV, "x", 50 * 60.0),
        BehaviorLog(1, DEV, "d1", 2 * DAY),
    ]


class TestStreamingAggregator:
    def test_matches_batch_computation(self, tiny_dataset):
        """Streaming features equal the batch scan at the last event time."""
        aggregator = StreamingAggregator()
        aggregator.ingest(tiny_dataset.logs)
        index = UserLogIndex(tiny_dataset.logs)
        last_per_user: dict[int, float] = {}
        for log in tiny_dataset.logs:
            last_per_user[log.uid] = log.timestamp
        checked = 0
        for uid in list(last_per_user)[:40]:
            as_of = last_per_user[uid]
            streaming = aggregator.features(uid, as_of)
            batch = statistical_features(index, uid, as_of)
            np.testing.assert_allclose(streaming, batch, atol=1e-9)
            checked += 1
        assert checked == 40

    def test_unknown_user_zero_vector(self):
        aggregator = StreamingAggregator()
        vector = aggregator.features(99, as_of=1000.0)
        np.testing.assert_allclose(vector, 0.0)
        assert vector.shape == (len(statistical_feature_names()),)

    def test_rewound_query_rejected(self):
        aggregator = StreamingAggregator()
        aggregator.ingest(sample_logs())
        with pytest.raises(ValueError):
            aggregator.features(1, as_of=100.0)  # before the last event

    def test_retention_bounds_state(self):
        aggregator = StreamingAggregator()
        logs = [
            BehaviorLog(5, DEV, "d", float(day) * DAY) for day in range(120)
        ]
        aggregator.ingest(logs)
        # Only the ~30-day retention window is kept in state...
        assert aggregator.state_size(5) <= 32
        # ...but lifetime totals are preserved.
        names = statistical_feature_names()
        vector = aggregator.features(5, as_of=119.0 * DAY)
        assert vector[names.index("total_logs")] == 120.0

    def test_incremental_equals_bulk_ingest(self):
        logs = sample_logs()
        bulk = StreamingAggregator()
        bulk.ingest(logs)
        piecemeal = StreamingAggregator()
        for log in logs:
            piecemeal.ingest([log])
        as_of = logs[-1].timestamp
        np.testing.assert_allclose(
            bulk.features(1, as_of), piecemeal.features(1, as_of)
        )

    def test_event_counter(self):
        aggregator = StreamingAggregator()
        assert aggregator.ingest(sample_logs()) == 5
        assert aggregator.events_processed == 5
        assert set(aggregator.users()) == {1, 2}
