"""Tests for the builder's weighting-scheme ablation option."""

from __future__ import annotations

import pytest

from repro.datagen import HOUR, BehaviorLog, BehaviorType
from repro.network import BNBuilder

DEV = BehaviorType.DEVICE_ID


def group_logs(n: int):
    return [BehaviorLog(u, DEV, "d", 100.0 + u) for u in range(n)]


class TestWeightingOption:
    def test_uniform_gives_unit_share(self):
        bn = BNBuilder(windows=(HOUR,), weighting="uniform").build(group_logs(5))
        assert bn.weight(0, 1, DEV) == pytest.approx(1.0)

    def test_inverse_gives_reciprocal_share(self):
        bn = BNBuilder(windows=(HOUR,), weighting="inverse").build(group_logs(5))
        assert bn.weight(0, 1, DEV) == pytest.approx(0.2)

    def test_invalid_scheme_rejected(self):
        with pytest.raises(ValueError):
            BNBuilder(weighting="nope")

    def test_uniform_incremental_matches_batch(self):
        from repro.network import BehaviorNetwork

        builder = BNBuilder(windows=(HOUR,), weighting="uniform")
        online = BehaviorNetwork()
        builder.run_window_job(online, group_logs(4), HOUR, job_end=HOUR)
        batch = builder.build(group_logs(4))
        assert online.weight(0, 1, DEV) == pytest.approx(batch.weight(0, 1, DEV))
