"""Bit-exact parity contracts for the vectorized BN write path.

Every vectorized ingest component keeps a pinned ``*_reference`` twin (the
original Python loops); these tests assert the two produce *identical*
networks — same edge sets, bit-for-bit equal weights and timestamps — plus
the batch-mutation contracts (single version bump, all-or-nothing
validation, O(1) edge counter) that the online system depends on.
"""

import copy

import numpy as np
import pytest

from repro.datagen import DAY, HOUR, BehaviorLog, BehaviorType
from repro.network import BehaviorNetwork, BNBuilder

TYPES = tuple(BehaviorType)[:3]
WINDOWS = (HOUR, DAY)


def edge_state(bn: BehaviorNetwork) -> dict:
    return {
        (u, v, t): (record.weight, record.last_update)
        for u, v, t, record in bn.iter_edges()
    }


def make_logs(n: int = 3000, n_users: int = 90, span: float = 3 * DAY, seed: int = 2):
    rng = np.random.default_rng(seed)
    logs = [
        BehaviorLog(
            int(rng.integers(0, n_users)),
            TYPES[int(rng.integers(0, len(TYPES)))],
            f"v{int(rng.integers(0, 18))}",
            float(rng.uniform(0.0, span)),
        )
        for _ in range(n)
    ]
    logs.sort(key=lambda log: log.timestamp)
    return logs


@pytest.fixture(scope="module")
def logs():
    return make_logs()


@pytest.fixture(scope="module")
def builder():
    return BNBuilder(windows=WINDOWS, edge_types=TYPES, ttl=2 * DAY)


class TestBuildParity:
    def test_build_bit_exact(self, builder, logs):
        vec = builder.build(logs)
        ref = builder.build_reference(logs)
        assert edge_state(vec) == edge_state(ref)
        assert sorted(vec.nodes()) == sorted(ref.nodes())

    def test_window_job_bit_exact_cold_and_warm(self, builder, logs):
        epoch_logs = [log for log in logs if log.timestamp <= HOUR]
        for warm in (False, True):
            vec, ref = BehaviorNetwork(), BehaviorNetwork()
            if warm:
                for bn in (vec, ref):
                    bn.add_weight(1, 2, TYPES[0], 0.125, 10.0)
                    bn.add_weight(3, 7, TYPES[1], 0.5, 20.0)
            n_vec = builder.run_window_job(vec, epoch_logs, HOUR, job_end=HOUR)
            n_ref = builder.run_window_job_reference(ref, epoch_logs, HOUR, job_end=HOUR)
            assert n_vec == n_ref
            assert edge_state(vec) == edge_state(ref)

    def test_replay_bit_exact(self, builder, logs):
        vec = builder.replay(logs, until=3 * DAY)
        ref = builder.replay_reference(logs, until=3 * DAY)
        assert edge_state(vec) == edge_state(ref)

    def test_adversarial_uid_span_parity(self):
        """Huge uid spans force the lexicographic fallback; results match."""
        big = 2**40
        logs = [
            BehaviorLog(0, TYPES[0], "shared", 100.0),
            BehaviorLog(big, TYPES[0], "shared", 200.0),
            BehaviorLog(3 * big, TYPES[0], "shared", 300.0),
            BehaviorLog(0, TYPES[1], "other", 400.0),
            BehaviorLog(2 * big, TYPES[1], "other", 500.0),
        ]
        builder = BNBuilder(windows=WINDOWS, edge_types=TYPES)
        assert edge_state(builder.build(logs)) == edge_state(
            builder.build_reference(logs)
        )

    def test_negative_epoch_parity(self):
        """Logs before the origin (negative epochs) stay exact."""
        logs = [
            BehaviorLog(1, TYPES[0], "x", -5 * DAY + 7.0),
            BehaviorLog(2, TYPES[0], "x", -5 * DAY + 9.0),
            BehaviorLog(3, TYPES[0], "x", 11.0),
            BehaviorLog(1, TYPES[0], "x", 13.0),
        ]
        builder = BNBuilder(windows=WINDOWS, edge_types=TYPES)
        assert edge_state(builder.build(logs)) == edge_state(
            builder.build_reference(logs)
        )


class TestAddWeightsContract:
    def test_scalar_loop_vs_one_batch(self):
        """One batch with duplicate typed edges == the scalar call sequence."""
        rng = np.random.default_rng(9)
        n = 1500
        u = rng.integers(0, 40, size=n)
        v = rng.integers(40, 80, size=n)
        w = rng.uniform(0.01, 1.0, size=n)
        ts = rng.uniform(0.0, 1e6, size=n)
        codes = rng.integers(0, len(TYPES), size=n)
        scalar, batch, precoded = (
            BehaviorNetwork(),
            BehaviorNetwork(),
            BehaviorNetwork(),
        )
        for i in range(n):
            scalar.add_weight(int(u[i]), int(v[i]), TYPES[codes[i]], float(w[i]), float(ts[i]))
        batch.add_weights(u, v, [TYPES[c] for c in codes], w, ts)
        precoded.add_weights(u, v, codes, w, ts, btype_table=TYPES)
        assert edge_state(scalar) == edge_state(batch) == edge_state(precoded)

    def test_scalar_timestamp_broadcast(self):
        """A scalar timestamp applies to every contribution, bit-exactly."""
        scalar, batch = BehaviorNetwork(), BehaviorNetwork()
        u = np.array([1, 2, 1, 5])
        v = np.array([2, 3, 2, 6])
        w = np.array([0.1, 0.2, 0.3, 0.4])
        for ts in (-4.0, 0.0, 123.5):
            for i in range(4):
                scalar.add_weight(int(u[i]), int(v[i]), TYPES[i % 2], float(w[i]), ts)
            batch.add_weights(u, v, np.array([0, 1, 0, 1]), w, ts, btype_table=TYPES)
        assert edge_state(scalar) == edge_state(batch)

    def test_single_version_bump_per_batch(self):
        bn = BehaviorNetwork()
        before = bn.version
        bn.add_weights([1, 2, 1], [2, 3, 2], TYPES[0], [0.5, 0.25, 0.5], [1.0, 2.0, 3.0])
        assert bn.version == before + 1

    def test_empty_batch_is_noop(self):
        bn = BehaviorNetwork()
        before = bn.version
        assert bn.add_weights([], [], TYPES[0], [], []) == 0
        assert bn.version == before

    def test_all_or_nothing_validation(self):
        bn = BehaviorNetwork()
        bn.add_weight(1, 2, TYPES[0], 1.0, 5.0)
        snapshot = edge_state(bn)
        version = bn.version
        with pytest.raises(ValueError):
            bn.add_weights([3, 4], [4, 4], TYPES[0], [1.0, 1.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            bn.add_weights([3, 4], [4, 5], TYPES[0], [1.0, -1.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            bn.add_weights([3, 4], [4, 5], TYPES[0], [1.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            bn.add_weights([3], [4], np.array([len(TYPES)]), [1.0], 1.0, btype_table=TYPES)
        assert edge_state(bn) == snapshot
        assert bn.version == version

    def test_non_canonical_order_normalized(self):
        bn = BehaviorNetwork()
        bn.add_weights([9, 2], [1, 5], TYPES[0], [0.5, 0.25], 3.0)
        assert set(edge_state(bn)) == {(1, 9, TYPES[0]), (2, 5, TYPES[0])}


class TestEdgeCounter:
    def test_counter_matches_scan_through_mutations(self, builder, logs):
        bn = builder.replay(logs, until=3 * DAY)
        assert bn.num_edges() == bn.num_edges_scan()
        bn.add_weight(100001, 100002, TYPES[0], 1.0, 3 * DAY)
        assert bn.num_edges() == bn.num_edges_scan()
        bn.expire_edges(4 * DAY)
        assert bn.num_edges() == bn.num_edges_scan()


class TestExpiryParity:
    def test_indexed_vs_scan_after_mixed_history(self, builder, logs):
        base = builder.replay(logs, until=3 * DAY, expire=False)
        indexed, scanned = copy.deepcopy(base), copy.deepcopy(base)
        for now in (3 * DAY, 3 * DAY + HOUR, 4 * DAY, 6 * DAY):
            assert indexed.expire_edges(now) == scanned._expire_edges_scan(now)
            assert edge_state(indexed) == edge_state(scanned)
            assert indexed.num_edges() == indexed.num_edges_scan()

    def test_refreshed_edge_survives_sweep(self):
        bn = BehaviorNetwork(ttl=100.0)
        bn.add_weight(1, 2, TYPES[0], 1.0, 10.0)
        bn.add_weight(1, 2, TYPES[0], 1.0, 95.0)  # refresh before expiry
        assert bn.expire_edges(105.0) == 0
        assert bn.num_edges() == 1
        assert bn.expire_edges(300.0) == 1
        assert bn.num_edges() == 0


class TestOrderingProperty:
    """Satellite: batch build, per-window replay, and the references agree
    for both weightings on shuffled log orderings."""

    @pytest.mark.parametrize("weighting", ["inverse", "uniform"])
    def test_shuffled_orderings(self, weighting):
        logs = make_logs(n=1200, n_users=50, span=2 * DAY, seed=4)
        builder = BNBuilder(
            windows=WINDOWS, edge_types=TYPES, ttl=30 * DAY, weighting=weighting
        )
        until = (int(max(log.timestamp for log in logs) // DAY) + 1) * DAY
        baseline_build = builder.build(logs)
        baseline_replay = builder.replay(logs, until=until)

        rng = np.random.default_rng(0)
        for _ in range(3):
            shuffled = list(logs)
            rng.shuffle(shuffled)
            # Vectorized vs pinned reference: bit-exact on every ordering.
            build_vec = builder.build(shuffled)
            assert edge_state(build_vec) == edge_state(
                builder.build_reference(shuffled)
            )
            replay_vec = builder.replay(shuffled, until=until)
            assert edge_state(replay_vec) == edge_state(
                builder.replay_reference(shuffled, until=until)
            )
            # Batch build is ordering-invariant outright (grouping sorts).
            assert edge_state(build_vec) == edge_state(baseline_build)

            # Replay covers the same closed epochs: identical edge sets and
            # timestamps; weights identical up to summation order (exact
            # for uniform weighting, approx for inverse).
            state_r = edge_state(replay_vec)
            state_b = edge_state(baseline_replay)
            assert set(state_r) == set(state_b)
            for key, (weight, stamp) in state_r.items():
                base_weight, base_stamp = state_b[key]
                assert stamp == base_stamp
                if weighting == "uniform":
                    assert weight == base_weight
                else:
                    assert weight == pytest.approx(base_weight, rel=1e-12)

    @pytest.mark.parametrize("weighting", ["inverse", "uniform"])
    def test_replay_matches_build_on_closed_epochs(self, weighting):
        logs = make_logs(n=800, n_users=40, span=2 * DAY, seed=6)
        builder = BNBuilder(
            windows=WINDOWS, edge_types=TYPES, ttl=30 * DAY, weighting=weighting
        )
        until = (int(max(log.timestamp for log in logs) // DAY) + 1) * DAY
        built = edge_state(builder.build(logs))
        replayed = edge_state(builder.replay(logs, until=until))
        assert set(built) == set(replayed)
        for key, (weight, stamp) in replayed.items():
            build_weight, build_stamp = built[key]
            assert stamp == build_stamp
            if weighting == "uniform":
                assert weight == build_weight
            else:
                assert weight == pytest.approx(build_weight, rel=1e-12)
