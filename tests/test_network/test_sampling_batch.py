"""Coalesced batch sampling parity: bit-for-bit the scalar subgraphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import BehaviorType
from repro.network import (
    BehaviorNetwork,
    computation_subgraph,
    computation_subgraphs_batch,
)

DEV = BehaviorType.DEVICE_ID
IP = BehaviorType.IPV4


def ring_bn(rng: np.random.Generator, n_users: int = 60, n_hubs: int = 4):
    """Ring-heavy topology: many users share a few hub resources, so the
    per-request frontiers overlap — the case batching coalesces."""
    bn = BehaviorNetwork()
    for uid in range(n_users):
        for hub in rng.choice(n_hubs, size=2, replace=False):
            bn.add_weight(uid, 1000 + int(hub), DEV, float(rng.integers(1, 9)), 0.0)
        if rng.random() < 0.5:
            bn.add_weight(uid, 2000 + int(rng.integers(0, 10)), IP, 1.0, 0.0)
    return bn


def assert_subgraph_equal(got, want):
    assert got.target == want.target
    assert got.nodes == want.nodes  # identical BFS order, not just same set
    assert set(got.adjacency) == set(want.adjacency)
    for btype, matrix in want.adjacency.items():
        other = got.adjacency[btype]
        assert other.shape == matrix.shape
        # CSR bits, not just values: same indptr/indices/data arrays.
        np.testing.assert_array_equal(other.indptr, matrix.indptr)
        np.testing.assert_array_equal(other.indices, matrix.indices)
        np.testing.assert_array_equal(other.data, matrix.data)


class TestBatchSamplingParity:
    @pytest.mark.parametrize("fanout", [3, 25, None])
    def test_bitexact_vs_scalar(self, rng, fanout):
        bn = ring_bn(rng)
        targets = [int(u) for u in rng.integers(0, 60, size=24)]
        batched, stats = computation_subgraphs_batch(bn, targets, hops=2, fanout=fanout)
        assert len(batched) == len(targets)
        for target, subgraph in zip(targets, batched):
            assert_subgraph_equal(
                subgraph, computation_subgraph(bn, target, hops=2, fanout=fanout)
            )
        assert stats.requests == len(targets)

    def test_allowed_filter_parity(self, rng):
        bn = ring_bn(rng)
        allowed = set(range(0, 60, 2)) | set(range(1000, 1004))
        targets = [0, 2, 4, 0]  # duplicates included
        batched, _stats = computation_subgraphs_batch(
            bn, targets, hops=2, fanout=5, allowed=allowed
        )
        for target, subgraph in zip(targets, batched):
            assert_subgraph_equal(
                subgraph,
                computation_subgraph(bn, target, hops=2, fanout=5, allowed=allowed),
            )

    def test_isolated_and_duplicate_targets(self, rng):
        bn = ring_bn(rng)
        bn.add_node(99999)
        batched, stats = computation_subgraphs_batch(bn, [99999, 99999, 0], hops=2)
        assert batched[0].nodes == [99999]
        assert batched[1].nodes == [99999]
        assert batched[0] is not batched[1]
        assert stats.sampled_nodes == 2 + batched[2].num_nodes

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            computation_subgraphs_batch(BehaviorNetwork(), [0], hops=-1)

    def test_empty_batch(self):
        subgraphs, stats = computation_subgraphs_batch(BehaviorNetwork(), [])
        assert subgraphs == []
        assert stats.requests == 0
        assert stats.coalescing == 0.0


class TestCoalescingAccounting:
    def test_overlap_is_coalesced(self, rng):
        bn = ring_bn(rng)
        targets = list(range(20))  # dense hub overlap
        _subgraphs, stats = computation_subgraphs_batch(bn, targets, hops=2, fanout=25)
        assert stats.coalescing > 1.5  # shared hubs counted once
        assert stats.unique_expansions < stats.expansions
        assert stats.unique_nodes <= stats.sampled_nodes

    def test_disjoint_targets_do_not_coalesce(self):
        bn = BehaviorNetwork()
        bn.add_weight(0, 1, DEV, 1.0, 0.0)
        bn.add_weight(10, 11, DEV, 1.0, 0.0)
        _subgraphs, stats = computation_subgraphs_batch(bn, [0, 10], hops=2)
        assert stats.coalescing == 1.0
