"""SampledGraph: the version-pinned global selection CSR (lambda full-graph).

Pinned contracts:

* per-``(node, type)`` selection rows equal the memoized scalar
  :func:`repro.network.sampling._select_neighbors` ranking — same
  neighbours, same order — at every fanout including ``None``;
* the graph built off a :class:`ShardedBehaviorNetwork`'s merged index is
  byte-identical across shard counts {1, 2, 4, 8} to the single-network
  build (the sweep's inputs cannot depend on the partitioning);
* per-target BFS over the CSR reproduces the scalar sampler's node
  discovery order, and the induced typed adjacency matches the
  union-masking batch path bit for bit;
* shared-memory payload round-trips losslessly;
* ``reverse_reachable`` is a sound cone: it contains every node whose
  forward selection BFS meets a seed within the hop budget.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datagen import BehaviorType
from repro.network import (
    BehaviorNetwork,
    ShardedBehaviorNetwork,
    build_sampled_graph,
    computation_subgraphs_batch,
)
from repro.network.sampled_graph import SampledGraph
from repro.network.sampling import _select_neighbors

from .test_sharding import SHARD_COUNTS, TYPES, build_pair, contribution_batches

pytestmark = pytest.mark.sharding

FANOUTS = (None, 3, 8)


@pytest.fixture(scope="module")
def graph_pairs():
    rng = np.random.default_rng(99)
    batches = contribution_batches(rng, n_users=150, n_batches=4, rows=300)
    return {n: build_pair(batches, n) for n in SHARD_COUNTS}


class TestSelectionParity:
    @pytest.mark.parametrize("fanout", FANOUTS)
    def test_rows_equal_scalar_selection(self, graph_pairs, fanout):
        bn, _ = graph_pairs[1]
        sampled = build_sampled_graph(bn, fanout)
        assert sampled.version == int(bn.version)
        assert tuple(sampled.types) == tuple(
            sorted(bn.edge_types(), key=lambda t: t.value)
        )
        for btype in sampled.types:
            for pos, uid in enumerate(sampled.node_ids):
                assert sampled.selected(pos, btype) == _select_neighbors(
                    bn, int(uid), btype, fanout, None
                )

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_bitexact_across_shard_counts(self, graph_pairs, n_shards):
        bn, sharded = graph_pairs[n_shards]
        want = build_sampled_graph(bn, 5)
        got = build_sampled_graph(sharded, 5)
        want_arrays, want_meta = want.to_payload()
        got_arrays, got_meta = got.to_payload()
        assert got_meta == want_meta
        assert got_arrays.keys() == want_arrays.keys()
        for name in want_arrays:
            assert got_arrays[name].tobytes() == want_arrays[name].tobytes(), name


class TestBFSAndInducedParity:
    @pytest.mark.parametrize("fanout", (3, 8))
    def test_subgraphs_match_batch_sampler(self, graph_pairs, fanout):
        bn, _ = graph_pairs[1]
        sampled = build_sampled_graph(bn, fanout)
        rng = np.random.default_rng(3)
        targets = [int(t) for t in rng.choice(150, size=24, replace=False)]
        want, _stats = computation_subgraphs_batch(
            bn, targets, hops=2, fanout=fanout, edge_types=TYPES
        )
        for target, want_sub in zip(targets, want):
            pos = sampled.position_of(target)
            assert pos >= 0
            positions, _expanded = sampled.subgraph_positions(
                pos, 2, sampled.allowed_mask(None)
            )
            nodes = [int(u) for u in sampled.node_ids[positions]]
            assert nodes == list(want_sub.nodes)
            entries = sampled.induced_entries(positions, sampled.types)
            for btype in sampled.types:
                want_csr = want_sub.adjacency[btype]
                iu, iv, w = entries[btype]
                # induced_entries yields one (lo, hi) triple per edge in
                # snapshot order; symmetrizing through the same CSR
                # construction as score_slice must reproduce the batch
                # sampler's matrix bit for bit.
                got_csr = sp.csr_matrix(
                    (
                        np.concatenate([w, w]),
                        (np.concatenate([iu, iv]), np.concatenate([iv, iu])),
                    ),
                    shape=want_csr.shape,
                )
                assert got_csr.indptr.tobytes() == want_csr.indptr.tobytes()
                assert got_csr.indices.tobytes() == want_csr.indices.tobytes()
                assert got_csr.data.tobytes() == want_csr.data.tobytes()

    def test_missing_target_position(self, graph_pairs):
        bn, _ = graph_pairs[1]
        sampled = build_sampled_graph(bn, 5)
        assert sampled.position_of(10**9) == -1
        np.testing.assert_array_equal(
            sampled.positions_of(np.array([10**9], dtype=np.int64)), [-1]
        )


class TestPayloadRoundTrip:
    def test_round_trip_bytes(self, graph_pairs):
        bn, _ = graph_pairs[1]
        sampled = build_sampled_graph(bn, 4)
        arrays, meta = sampled.to_payload()
        rebuilt = SampledGraph.from_payload(arrays, meta)
        assert rebuilt.version == sampled.version
        assert rebuilt.fanout == sampled.fanout
        assert tuple(rebuilt.types) == tuple(sampled.types)
        back, back_meta = rebuilt.to_payload()
        assert back_meta == meta
        for name in arrays:
            assert back[name].tobytes() == arrays[name].tobytes(), name

    def test_none_fanout_round_trips(self, graph_pairs):
        bn, _ = graph_pairs[1]
        sampled = build_sampled_graph(bn, None)
        arrays, meta = sampled.to_payload()
        assert SampledGraph.from_payload(arrays, meta).fanout is None


class TestReverseReachable:
    def test_cone_is_sound(self, graph_pairs):
        """Every node whose forward BFS meets a seed lies in the cone."""
        bn, _ = graph_pairs[1]
        sampled = build_sampled_graph(bn, 4)
        rng = np.random.default_rng(11)
        seeds = rng.choice(sampled.num_nodes, size=5, replace=False)
        hops = 2
        cone = np.zeros(sampled.num_nodes, dtype=bool)
        cone[sampled.reverse_reachable(seeds.astype(np.int64), hops)] = True
        seed_set = set(int(s) for s in seeds)
        allowed = sampled.allowed_mask(None)
        for pos in range(sampled.num_nodes):
            positions, _ = sampled.subgraph_positions(pos, hops, allowed)
            if seed_set & set(int(p) for p in positions):
                assert cone[pos], pos
