"""Hash-partitioned BN parity: the pinned sharding bit-exactness suite.

Every test here compares a :class:`ShardedBehaviorNetwork` against the
plain single-network :class:`BehaviorNetwork` fed the *same* mutation
stream, and requires bit-for-bit identity — same node order, same
per-type edge order, same weights and timestamps in the merged export,
and identical sampled subgraphs (node lists and CSR bits) at every shard
count.  The sweep covers shard counts {1, 2, 4, 8}, shuffled ingest
orderings, facade construction from an existing network, resharding, and
TTL expiry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import BehaviorType
from repro.network import (
    BehaviorNetwork,
    ShardedBehaviorNetwork,
    computation_subgraphs_batch,
    shard_of,
)
from repro.system import index_sample_batch

from .test_sampling_batch import assert_subgraph_equal

pytestmark = pytest.mark.sharding

TYPES = (BehaviorType.DEVICE_ID, BehaviorType.IPV4, BehaviorType.WIFI_MAC)
SHARD_COUNTS = (1, 2, 4, 8)


def contribution_batches(rng, n_users=200, n_batches=6, rows=400):
    """A mixed-type mutation stream with plenty of duplicate pairs."""
    batches = []
    for b in range(n_batches):
        u = rng.integers(0, n_users, size=rows)
        off = rng.integers(0, n_users - 1, size=rows)
        v = (u + 1 + off) % n_users
        codes = rng.integers(0, len(TYPES), size=rows)
        weights = rng.random(rows) + 0.1
        stamps = float(b) * 3600.0
        batches.append((u, v, codes, weights, stamps))
    return batches


def build_pair(batches, n_shards, ttl=None):
    """Feed the same batches to an unsharded BN and an ``n_shards`` facade."""
    kwargs = {} if ttl is None else {"ttl": ttl}
    bn = BehaviorNetwork(**kwargs)
    sharded = ShardedBehaviorNetwork(n_shards, **kwargs)
    for u, v, codes, weights, stamps in batches:
        bn.add_weights(u, v, codes, weights, stamps, btype_table=TYPES)
        sharded.add_weights(u, v, codes, weights, stamps, btype_table=TYPES)
    return bn, sharded


def assert_export_bitexact(bn: BehaviorNetwork, sharded: ShardedBehaviorNetwork):
    """Merged snapshot equality: node order, per-type edge order, bits."""
    want, got = bn.to_arrays(), sharded.to_arrays()
    np.testing.assert_array_equal(got.node_ids, want.node_ids)
    assert set(got.edges) == set(want.edges)
    for btype, arrays in want.edges.items():
        other = got.edges[btype]
        np.testing.assert_array_equal(other.rows, arrays.rows)
        np.testing.assert_array_equal(other.cols, arrays.cols)
        np.testing.assert_array_equal(other.weights, arrays.weights)
        np.testing.assert_array_equal(other.last_update, arrays.last_update)


def assert_sampling_bitexact(bn, sharded, targets, fanout=5):
    """Frontier sampling off the shard index equals the single-network path."""
    want, want_stats = computation_subgraphs_batch(
        bn, targets, hops=2, fanout=fanout, edge_types=TYPES
    )
    got, got_stats = index_sample_batch(
        sharded.index(), targets, hops=2, fanout=fanout
    )
    for want_sub, got_sub in zip(want, got):
        assert_subgraph_equal(got_sub, want_sub)
    assert got_stats.requests == want_stats.requests
    assert got_stats.sampled_nodes == want_stats.sampled_nodes
    assert got_stats.unique_nodes == want_stats.unique_nodes
    assert got_stats.expansions == want_stats.expansions
    assert got_stats.partial == ()


class TestShardOf:
    def test_stable_and_in_range(self):
        uids = np.arange(0, 5000, dtype=np.int64)
        for n in SHARD_COUNTS:
            owners = shard_of(uids, n)
            assert owners.min() >= 0 and owners.max() < n
            np.testing.assert_array_equal(owners, shard_of(uids, n))

    def test_roughly_balanced(self):
        owners = shard_of(np.arange(0, 40000, dtype=np.int64), 8)
        counts = np.bincount(owners, minlength=8)
        assert counts.max() / counts.mean() < 1.1

    def test_single_shard_owns_everything(self):
        assert np.all(shard_of(np.arange(100, dtype=np.int64), 1) == 0)


class TestShardedParity:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_export_and_sampling_bitexact(self, rng, n_shards):
        batches = contribution_batches(rng)
        bn, sharded = build_pair(batches, n_shards)
        assert bn.num_edges() == sharded.num_edges()
        assert sorted(bn.nodes()) == sorted(sharded.nodes())
        assert_export_bitexact(bn, sharded)
        targets = [int(t) for t in rng.integers(0, 200, size=24)]
        assert_sampling_bitexact(bn, sharded, targets)

    @pytest.mark.parametrize("n_shards", (2, 4))
    def test_shuffled_ingest_orderings(self, rng, n_shards):
        """Any row order fed identically to both sides stays bit-exact."""
        base = contribution_batches(rng, n_batches=3)
        for shuffle_seed in (0, 1):
            shuffler = np.random.default_rng(shuffle_seed)
            batches = []
            for u, v, codes, weights, stamps in base:
                order = shuffler.permutation(len(u))
                batches.append((u[order], v[order], codes[order], weights[order], stamps))
            bn, sharded = build_pair(batches, n_shards)
            assert_export_bitexact(bn, sharded)
            assert_sampling_bitexact(bn, sharded, [0, 7, 31, 100])

    def test_query_surface_matches(self, rng):
        bn, sharded = build_pair(contribution_batches(rng, n_batches=2), 4)
        some = sorted(bn.nodes())[:20]
        for uid in some:
            assert sharded.degree(uid) == bn.degree(uid)
            assert sharded.weighted_degree(uid) == bn.weighted_degree(uid)
            assert list(sharded.neighbors(uid)) == list(bn.neighbors(uid))
            assert (uid in sharded) == (uid in bn)
            for v in bn.neighbors(uid):
                assert sharded.total_weight(uid, v) == bn.total_weight(uid, v)
        assert sharded.num_pairs() == bn.num_pairs()
        assert sharded.edge_types() == bn.edge_types()

    def test_route_weights_covers_every_row(self, rng):
        batches = contribution_batches(rng, n_batches=1)
        sharded = ShardedBehaviorNetwork(4)
        u, v, codes, weights, stamps = batches[0]
        routed, cross, n = sharded.route_weights(
            u, v, codes, weights, stamps, btype_table=TYPES
        )
        assert n == len(u)
        assert sum(len(k["u"]) for k in routed if k is not None) == n
        lo = np.minimum(u, v)
        for s, kwargs in enumerate(routed):
            if kwargs is None:
                continue
            owners = shard_of(np.minimum(kwargs["u"], kwargs["v"]), 4)
            assert np.all(owners == s)
        assert 0 <= cross <= n

    def test_route_stats_drain(self, rng):
        _bn, sharded = build_pair(contribution_batches(rng, n_batches=2), 2)
        stats = sharded.drain_route_stats()
        assert stats["batches"] == 2
        assert stats["rows"] == 800
        assert sum(stats["shard_rows"]) == 800
        empty = sharded.drain_route_stats()
        assert empty["batches"] == empty["rows"] == 0


class TestRebalance:
    def test_from_network_bitexact(self, rng):
        batches = contribution_batches(rng)
        bn = BehaviorNetwork()
        for u, v, codes, weights, stamps in batches:
            bn.add_weights(u, v, codes, weights, stamps, btype_table=TYPES)
        sharded = ShardedBehaviorNetwork.from_network(bn, 4)
        assert_export_bitexact(bn, sharded)
        assert_sampling_bitexact(bn, sharded, [1, 5, 50, 150])

    @pytest.mark.parametrize("before,after", [(2, 4), (4, 2), (4, 8), (8, 1)])
    def test_reshard_preserves_bits(self, rng, before, after):
        batches = contribution_batches(rng, n_batches=3)
        bn, sharded = build_pair(batches, before)
        rebalanced = sharded.reshard(after)
        assert rebalanced.n_shards == after
        assert_export_bitexact(bn, rebalanced)
        assert_sampling_bitexact(bn, rebalanced, [3, 9, 81, 123])


class TestShardedTTL:
    def test_expiry_parity(self, rng):
        ttl = 2.5 * 3600.0
        batches = contribution_batches(rng, n_batches=5)
        bn, sharded = build_pair(batches, 4, ttl=ttl)
        now = 5.0 * 3600.0
        removed = bn.expire_edges(now)
        removed_sharded = sharded.expire_edges(now)
        assert removed == removed_sharded
        assert removed > 0
        assert_export_bitexact(bn, sharded)
        assert_sampling_bitexact(bn, sharded, [2, 11, 42])

    def test_index_version_tracks_barriers(self, rng):
        sharded = ShardedBehaviorNetwork(4)
        v0 = sharded.version
        batches = contribution_batches(rng, n_batches=1)
        u, v, codes, weights, stamps = batches[0]
        sharded.add_weights(u, v, codes, weights, stamps, btype_table=TYPES)
        assert sharded.version == v0 + 1  # one barrier per batch
        index = sharded.index()
        assert index.version == sharded.version
        assert sharded.index() is index  # memoized until the next barrier
