"""BN save/load round-trip tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network import BehaviorNetwork
from repro.network.io import load_bn, save_bn
from repro.datagen import BehaviorType

DEV = BehaviorType.DEVICE_ID
IP = BehaviorType.IPV4


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path, tiny_bn):
        path = tmp_path / "bn.npz"
        save_bn(tiny_bn, path)
        loaded = load_bn(path)
        assert loaded.num_nodes() == tiny_bn.num_nodes()
        assert loaded.num_edges() == tiny_bn.num_edges()
        assert loaded.edge_types() == tiny_bn.edge_types()
        assert loaded.ttl == tiny_bn.ttl
        for u, v, btype, record in list(tiny_bn.iter_edges())[:200]:
            assert loaded.weight(u, v, btype) == pytest.approx(record.weight)
            assert loaded.edge(u, v)[btype].last_update == pytest.approx(
                record.last_update
            )

    def test_isolated_nodes_survive(self, tmp_path):
        bn = BehaviorNetwork()
        bn.add_node(7)
        bn.add_weight(1, 2, DEV, 0.5, 10.0)
        path = tmp_path / "bn.npz"
        save_bn(bn, path)
        loaded = load_bn(path)
        assert 7 in loaded
        assert loaded.degree(7) == 0

    def test_empty_network(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_bn(BehaviorNetwork(), path)
        loaded = load_bn(path)
        assert loaded.num_nodes() == 0
        assert loaded.num_edges() == 0

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            version=np.int64(99),
            ttl=np.float64(1.0),
            nodes=np.asarray([], dtype=np.int64),
            type_names=np.asarray([], dtype=object),
            u=np.asarray([], dtype=np.int64),
            v=np.asarray([], dtype=np.int64),
            type_code=np.asarray([], dtype=np.int64),
            weight=np.asarray([], dtype=np.float64),
            last_update=np.asarray([], dtype=np.float64),
        )
        with pytest.raises(ValueError):
            load_bn(path)

    def test_loaded_network_is_mutable(self, tmp_path):
        bn = BehaviorNetwork()
        bn.add_weight(1, 2, DEV, 0.5, 10.0)
        path = tmp_path / "bn.npz"
        save_bn(bn, path)
        loaded = load_bn(path)
        loaded.add_weight(2, 3, IP, 1.0, 20.0)
        assert loaded.num_edges() == 2
