"""Property-based tests for TTL expiry and weight accumulation invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import DAY, BehaviorType
from repro.network import BehaviorNetwork

DEV = BehaviorType.DEVICE_ID


@settings(max_examples=30, deadline=None)
@given(
    updates=st.lists(
        st.tuples(
            st.integers(0, 5),  # u
            st.integers(0, 5),  # v
            st.floats(0.01, 5.0),  # weight
            st.floats(0.0, 100.0),  # timestamp (days)
        ),
        min_size=1,
        max_size=30,
    ),
    now_days=st.floats(0.0, 200.0),
)
def test_property_ttl_keeps_exactly_fresh_edges(updates, now_days):
    ttl_days = 30.0
    bn = BehaviorNetwork(ttl=ttl_days * DAY)
    freshest: dict[tuple[int, int], float] = {}
    for u, v, w, t_days in updates:
        if u == v:
            continue
        bn.add_weight(u, v, DEV, w, t_days * DAY)
        key = (min(u, v), max(u, v))
        freshest[key] = max(freshest.get(key, -np.inf), t_days)
    bn.expire_edges(now_days * DAY)
    for (u, v), last in freshest.items():
        surviving = bn.weight(u, v, DEV) > 0
        should_survive = last >= now_days - ttl_days
        assert surviving == should_survive


@settings(max_examples=30, deadline=None)
@given(
    weights=st.lists(st.floats(0.01, 2.0), min_size=1, max_size=20),
)
def test_property_weight_accumulation_is_sum(weights):
    bn = BehaviorNetwork()
    for w in weights:
        bn.add_weight(1, 2, DEV, w, 0.0)
    assert bn.weight(1, 2, DEV) == pytest.approx(sum(weights))


@settings(max_examples=20, deadline=None)
@given(
    n_neighbors=st.integers(1, 10),
    weight=st.floats(0.1, 3.0),
)
def test_property_weighted_degree_consistency(n_neighbors, weight):
    """Node degree bookkeeping stays consistent with the edge iterator."""
    bn = BehaviorNetwork()
    for v in range(1, n_neighbors + 1):
        bn.add_weight(0, v, DEV, weight, 0.0)
    assert bn.degree(0) == n_neighbors
    assert bn.weighted_degree(0) == pytest.approx(n_neighbors * weight)
    total_from_iter = sum(rec.weight for _u, _v, _t, rec in bn.iter_edges(DEV))
    assert total_from_iter == pytest.approx(n_neighbors * weight)
