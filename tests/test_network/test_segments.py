"""Tests for the segment/composite-key primitives behind BN ingestion."""

import numpy as np
import pytest

from repro.network.segments import (
    INT64_SAFE_SPAN,
    segment_arange,
    segment_fold_max,
    segment_fold_sum,
    sorted_unique_pairs,
    sorted_unique_triples,
)


class TestSegmentArange:
    def test_ramps(self):
        out = segment_arange(np.array([2, 3, 1]))
        assert out.tolist() == [0, 1, 0, 1, 2, 0]

    def test_empty_and_zero_counts(self):
        assert segment_arange(np.array([], dtype=np.int64)).tolist() == []
        assert segment_arange(np.array([0, 2, 0])).tolist() == [0, 1]


class TestSegmentFoldSum:
    def test_matches_sequential_fold_bitwise(self):
        """The fold must reproduce left-to-right ``+=`` exactly, not pairwise.

        Pairwise summation (``np.add.reduceat``) rounds differently; the
        whole bit-exact parity contract of the ingest path rests on this
        primitive folding strictly left-to-right.
        """
        rng = np.random.default_rng(0)
        values = rng.uniform(0.0, 1.0, size=200)
        lengths = np.array([1, 7, 2, 53, 90, 47])
        starts = np.r_[0, np.cumsum(lengths)[:-1]]
        out = segment_fold_sum(values, starts, lengths)
        for k, (s, ln) in enumerate(zip(starts, lengths)):
            acc = 0.0
            for x in values[s : s + ln]:
                acc += x
            assert out[k] == acc  # bit-for-bit

    def test_seeded_fold(self):
        values = np.array([0.1, 0.2, 0.7, 0.05])
        out = segment_fold_sum(
            values,
            np.array([0, 2]),
            np.array([2, 2]),
            seed=np.array([10.0, 0.5]),
        )
        assert out[0] == ((10.0 + 0.1) + 0.2)
        assert out[1] == ((0.5 + 0.7) + 0.05)

    def test_empty(self):
        out = segment_fold_sum(
            np.array([]), np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        assert len(out) == 0


class TestSegmentFoldMax:
    def test_matches_running_max(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(-5.0, 5.0, size=60)
        lengths = np.array([10, 1, 49])
        starts = np.r_[0, np.cumsum(lengths)[:-1]]
        out = segment_fold_max(values, starts, lengths)
        for k, (s, ln) in enumerate(zip(starts, lengths)):
            assert out[k] == max(values[s : s + ln])


class TestSortedUnique:
    def test_pairs_sorted_and_deduped(self):
        a = np.array([3, 1, 3, 1, 2])
        b = np.array([0, 5, 0, 5, 2])
        ga, gb = sorted_unique_pairs(a, b)
        assert list(zip(ga, gb)) == [(1, 5), (2, 2), (3, 0)]

    def test_triples_sorted_and_deduped(self):
        a = np.array([1, 0, 1, 0])
        b = np.array([2, 9, 2, 9])
        c = np.array([7, 3, 7, 4])
        ga, gb, gc = sorted_unique_triples(a, b, c)
        assert list(zip(ga, gb, gc)) == [(0, 9, 3), (0, 9, 4), (1, 2, 7)]

    @pytest.mark.parametrize("span", [2**21, 2**40])
    def test_adversarial_spans_fall_back_without_wrapping(self, span):
        """Composite keys near/over the int64 bound must not silently wrap.

        With three components spanning ``2**21`` each the packed key fits
        (``2**63 > 2**62`` guard rejects it though); at ``2**40`` the
        product overflows outright.  Both must give the same answer as the
        small-span packed path does on equivalent data.
        """
        a = np.array([0, span - 1, 0, span - 1])
        b = np.array([span - 1, 0, span - 1, 0])
        c = np.array([1, span - 1, 1, 2])
        ga, gb, gc = sorted_unique_triples(a, b, c)
        expected = sorted(set(zip(a.tolist(), b.tolist(), c.tolist())))
        assert list(zip(ga.tolist(), gb.tolist(), gc.tolist())) == expected
        # the spans genuinely exceed the packed-key guard
        assert span * span * span >= INT64_SAFE_SPAN

    def test_pairs_overflow_regression(self):
        """Regression: spans whose product wraps int64 used to collide keys."""
        big = 2**33
        a = np.array([0, 1, 0, big - 1])
        b = np.array([big - 1, 0, big - 1, 1])
        ga, gb = sorted_unique_pairs(a, b)
        expected = sorted(set(zip(a.tolist(), b.tolist())))
        assert list(zip(ga.tolist(), gb.tolist())) == expected
