"""Adjacency export tests."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datagen import BehaviorType
from repro.network import (
    BehaviorNetwork,
    gcn_normalize,
    merged_adjacency,
    row_normalize,
    typed_adjacency,
)

DEV = BehaviorType.DEVICE_ID
IP = BehaviorType.IPV4


def bn_fixture() -> BehaviorNetwork:
    bn = BehaviorNetwork()
    bn.add_weight(10, 20, DEV, 1.0, 0.0)
    bn.add_weight(20, 30, DEV, 2.0, 0.0)
    bn.add_weight(10, 30, IP, 4.0, 0.0)
    return bn


class TestTypedAdjacency:
    def test_shapes_and_symmetry(self):
        nodes = [10, 20, 30]
        typed = typed_adjacency(bn_fixture(), nodes)
        assert set(typed) == {DEV, IP}
        for matrix in typed.values():
            assert matrix.shape == (3, 3)
            dense = matrix.toarray()
            np.testing.assert_allclose(dense, dense.T)

    def test_unnormalized_weights_preserved(self):
        typed = typed_adjacency(bn_fixture(), [10, 20, 30], normalize=False)
        assert typed[DEV][0, 1] == pytest.approx(1.0)
        assert typed[DEV][1, 2] == pytest.approx(2.0)

    def test_normalization_uses_full_graph_degrees(self):
        """Degrees come from the whole BN even when exporting a subset."""
        bn = bn_fixture()
        full = typed_adjacency(bn, [10, 20, 30])[DEV][0, 1]
        subset = typed_adjacency(bn, [10, 20])[DEV][0, 1]
        assert subset == pytest.approx(full)

    def test_nodes_outside_graph_are_isolated(self):
        typed = typed_adjacency(bn_fixture(), [10, 99])
        assert typed[DEV].nnz == 0

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            typed_adjacency(bn_fixture(), [10, 10])

    def test_normalized_formula(self):
        # DEV: deg(10)=1, deg(20)=3, deg(30)=2.
        typed = typed_adjacency(bn_fixture(), [10, 20, 30])
        assert typed[DEV][0, 1] == pytest.approx(1.0 / np.sqrt(1.0 * 3.0))
        assert typed[DEV][1, 2] == pytest.approx(2.0 / np.sqrt(3.0 * 2.0))


class TestMergedAdjacency:
    def test_merged_is_sum_of_types(self):
        nodes = [10, 20, 30]
        typed = typed_adjacency(bn_fixture(), nodes)
        merged = merged_adjacency(bn_fixture(), nodes)
        expected = (typed[DEV] + typed[IP]).toarray()
        np.testing.assert_allclose(merged.toarray(), expected)


class TestNormalizers:
    def test_row_normalize_rows_sum_to_one(self):
        matrix = sp.csr_matrix(np.array([[0.0, 2.0], [4.0, 4.0]]))
        normalized = row_normalize(matrix).toarray()
        np.testing.assert_allclose(normalized.sum(axis=1), [1.0, 1.0])

    def test_row_normalize_empty_row_stays_zero(self):
        matrix = sp.csr_matrix((2, 2))
        np.testing.assert_allclose(row_normalize(matrix).toarray(), 0.0)

    def test_gcn_normalize_symmetric(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        normalized = gcn_normalize(matrix).toarray()
        np.testing.assert_allclose(normalized, normalized.T)
        # With self-loops, (A+I) fully regular: rows sum to 1 for this graph.
        np.testing.assert_allclose(normalized.sum(axis=1), [1.0, 1.0])

    def test_gcn_normalize_without_self_loops(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        normalized = gcn_normalize(matrix, add_self_loops=False).toarray()
        np.testing.assert_allclose(normalized, [[0.0, 1.0], [1.0, 0.0]])
