"""CSR-native BN snapshot tests: layout, memoization, invalidation."""

from __future__ import annotations

import numpy as np

from repro.datagen import BehaviorType
from repro.network import BehaviorNetwork

DEV = BehaviorType.DEVICE_ID
WIFI = BehaviorType.WIFI_MAC


def small_bn() -> BehaviorNetwork:
    bn = BehaviorNetwork()
    bn.add_weight(5, 2, DEV, 1.0, 10.0)
    bn.add_weight(2, 5, DEV, 0.5, 20.0)  # accumulates onto the same edge
    bn.add_weight(2, 9, DEV, 2.0, 15.0)
    bn.add_weight(5, 9, WIFI, 3.0, 5.0)
    bn.add_node(7)  # isolated
    return bn


class TestLayout:
    def test_node_ids_sorted_and_complete(self):
        snapshot = small_bn().to_arrays()
        np.testing.assert_array_equal(snapshot.node_ids, [2, 5, 7, 9])

    def test_typed_edges_accumulate_weight_and_latest_timestamp(self):
        snapshot = small_bn().to_arrays()
        dev = snapshot.edges[DEV]
        assert dev.num_edges == 2
        pairs = {
            (int(snapshot.node_ids[r]), int(snapshot.node_ids[c])): (w, t)
            for r, c, w, t in zip(
                dev.rows, dev.cols, dev.weights, dev.last_update
            )
        }
        assert pairs[(2, 5)] == (1.5, 20.0)
        assert pairs[(2, 9)] == (2.0, 15.0)

    def test_num_edges_per_type_and_total(self):
        snapshot = small_bn().to_arrays()
        assert snapshot.num_edges(DEV) == 2
        assert snapshot.num_edges(WIFI) == 1
        assert snapshot.num_edges(BehaviorType.GPS) == 0
        assert snapshot.num_edges() == 3

    def test_positions_of_maps_ids_and_flags_unknown(self):
        snapshot = small_bn().to_arrays()
        np.testing.assert_array_equal(
            snapshot.positions_of(np.array([9, 2, 4])), [3, 0, -1]
        )

    def test_weighted_degrees_match_edge_sums(self):
        snapshot = small_bn().to_arrays()
        degrees = snapshot.weighted_degrees(DEV)
        # node 2 touches (2,5) w=1.5 and (2,9) w=2.0; node 7 is isolated.
        np.testing.assert_allclose(degrees, [3.5, 1.5, 0.0, 2.0])

    def test_empty_network_snapshot(self):
        snapshot = BehaviorNetwork().to_arrays()
        assert snapshot.num_nodes == 0
        assert snapshot.num_edges() == 0
        np.testing.assert_array_equal(
            snapshot.positions_of(np.array([1, 2])), [-1, -1]
        )


class TestCaching:
    def test_repeated_export_returns_same_object(self):
        bn = small_bn()
        assert bn.to_arrays() is bn.to_arrays()

    def test_add_weight_invalidates(self):
        bn = small_bn()
        first = bn.to_arrays()
        bn.add_weight(2, 5, DEV, 1.0, 30.0)
        second = bn.to_arrays()
        assert second is not first
        pairs = dict(zip(zip(second.edges[DEV].rows, second.edges[DEV].cols),
                         second.edges[DEV].weights))
        assert pairs[(0, 1)] == 2.5  # positions of users 2 and 5

    def test_new_node_invalidates_but_known_node_does_not(self):
        bn = small_bn()
        first = bn.to_arrays()
        bn.add_node(5)  # already registered: no version bump
        assert bn.to_arrays() is first
        bn.add_node(11)
        second = bn.to_arrays()
        assert second is not first
        assert 11 in second.node_ids

    def test_expire_edges_invalidates_only_when_something_expires(self):
        bn = BehaviorNetwork(ttl=100.0)
        bn.add_weight(1, 2, DEV, 1.0, 0.0)
        bn.add_weight(1, 3, DEV, 1.0, 500.0)
        first = bn.to_arrays()
        assert bn.expire_edges(now=50.0) == 0  # nothing is older than TTL
        assert bn.to_arrays() is first
        assert bn.expire_edges(now=200.0) == 1  # edge (1, 2) drops out
        second = bn.to_arrays()
        assert second is not first
        assert second.num_edges(DEV) == 1

    def test_snapshot_is_immune_to_later_mutation(self):
        bn = small_bn()
        first = bn.to_arrays()
        weights_before = first.edges[DEV].weights.copy()
        bn.add_weight(2, 5, DEV, 10.0, 40.0)
        bn.add_weight(3, 4, DEV, 1.0, 41.0)
        np.testing.assert_array_equal(first.edges[DEV].weights, weights_before)
        assert 3 not in first.node_ids
