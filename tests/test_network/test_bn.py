"""BehaviorNetwork storage tests: mutation, queries, TTL, export."""

from __future__ import annotations

import pytest

from repro.datagen import DAY, BehaviorType
from repro.network import BehaviorNetwork

DEV = BehaviorType.DEVICE_ID
IP = BehaviorType.IPV4


def small_bn() -> BehaviorNetwork:
    bn = BehaviorNetwork(ttl=10 * DAY)
    bn.add_weight(1, 2, DEV, 0.5, 100.0)
    bn.add_weight(2, 1, DEV, 0.25, 200.0)  # symmetric accumulate
    bn.add_weight(1, 3, IP, 1.0, 150.0)
    bn.add_node(9)
    return bn


class TestMutation:
    def test_weights_accumulate_symmetrically(self):
        bn = small_bn()
        assert bn.weight(1, 2, DEV) == pytest.approx(0.75)
        assert bn.weight(2, 1, DEV) == pytest.approx(0.75)

    def test_last_update_is_max(self):
        bn = small_bn()
        assert bn.edge(1, 2)[DEV].last_update == 200.0

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            small_bn().add_weight(1, 1, DEV, 1.0, 0.0)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            small_bn().add_weight(1, 2, DEV, 0.0, 0.0)

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            BehaviorNetwork(ttl=0.0)


class TestQueries:
    def test_membership_and_nodes(self):
        bn = small_bn()
        assert 9 in bn and 1 in bn and 7 not in bn
        assert set(bn.nodes()) == {1, 2, 3, 9}

    def test_counts(self):
        bn = small_bn()
        assert bn.num_nodes() == 4
        assert bn.num_edges() == 2  # typed edges
        assert bn.num_pairs() == 2

    def test_neighbors_by_type(self):
        bn = small_bn()
        assert set(bn.neighbors(1)) == {2, 3}
        assert bn.neighbors(1, DEV) == [2]
        assert bn.neighbors(1, IP) == [3]
        assert bn.neighbors(42) == []

    def test_degrees(self):
        bn = small_bn()
        assert bn.degree(1) == 2
        assert bn.degree(1, DEV) == 1
        assert bn.weighted_degree(1) == pytest.approx(1.75)
        assert bn.weighted_degree(1, IP) == pytest.approx(1.0)

    def test_edge_types(self):
        assert small_bn().edge_types() == {DEV, IP}

    def test_total_weight(self):
        assert small_bn().total_weight(1, 2) == pytest.approx(0.75)

    def test_iter_edges_filtered(self):
        bn = small_bn()
        edges = list(bn.iter_edges(DEV))
        assert len(edges) == 1
        u, v, btype, record = edges[0]
        assert (u, v, btype) == (1, 2, DEV)
        assert record.weight == pytest.approx(0.75)


class TestTTL:
    def test_expire_removes_stale_types(self):
        bn = small_bn()
        removed = bn.expire_edges(now=150.0 + 10 * DAY + 1)
        # DEV edge updated at t=200 survives; IP edge at t=150 expires.
        assert removed == 1
        assert bn.weight(1, 3, IP) == 0.0
        assert bn.weight(1, 2, DEV) > 0.0
        assert 3 not in bn.neighbors(1)

    def test_expire_keeps_fresh(self):
        bn = small_bn()
        assert bn.expire_edges(now=300.0) == 0
        assert bn.num_edges() == 2


class TestKhop:
    def test_khop_distances(self):
        bn = small_bn()
        bn.add_weight(3, 4, IP, 1.0, 0.0)
        distances = bn.khop_neighborhood(1, 2)
        assert distances == {1: 0, 2: 1, 3: 1, 4: 2}

    def test_khop_respects_allowed(self):
        bn = small_bn()
        distances = bn.khop_neighborhood(1, 2, allowed={2})
        assert distances == {1: 0, 2: 1}

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            small_bn().khop_neighborhood(1, -1)


class TestNetworkxExport:
    def test_multigraph_structure(self):
        graph = small_bn().to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 2
        assert graph.has_edge(1, 2, key=DEV.value)

    def test_node_filter(self):
        graph = small_bn().to_networkx(nodes=[1, 2])
        assert graph.number_of_nodes() == 2
        assert graph.number_of_edges() == 1
