"""Algorithm 1 tests: inverse weights, hierarchical windows, incremental jobs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import DAY, HOUR, BehaviorLog, BehaviorType
from repro.network import BehaviorNetwork, BNBuilder

DEV = BehaviorType.DEVICE_ID
IP = BehaviorType.IPV4


def log(uid: int, value: str, t: float, btype: BehaviorType = DEV) -> BehaviorLog:
    return BehaviorLog(uid, btype, value, t)


class TestInverseWeights:
    def test_pair_weight_is_inverse_of_group_size(self):
        # 4 users share one value inside one 1-hour epoch: each pair gets 1/4.
        logs = [log(u, "d0", 100.0 + u) for u in range(4)]
        bn = BNBuilder(windows=(HOUR,)).build(logs)
        for u in range(4):
            for v in range(u + 1, 4):
                assert bn.weight(u, v, DEV) == pytest.approx(0.25)

    def test_duplicate_logs_count_once(self):
        # A user logging the same value repeatedly does not inflate N.
        logs = [log(0, "d0", 10.0), log(0, "d0", 20.0), log(1, "d0", 30.0)]
        bn = BNBuilder(windows=(HOUR,)).build(logs)
        assert bn.weight(0, 1, DEV) == pytest.approx(0.5)

    def test_single_user_value_builds_no_edge(self):
        bn = BNBuilder(windows=(HOUR,)).build([log(0, "d0", 10.0)])
        assert bn.num_edges() == 0
        assert 0 in bn  # node still registered

    def test_toy_example_of_figure3(self):
        """Figure 3: 4 users in a 1-hour epoch -> 1/4; 5 users in the
        enclosing 2-hour epoch -> extra 1/5 for every pair there."""
        logs = [log(u, "wifi", 600.0 + u, IP) for u in range(4)]
        logs.append(log(4, "wifi", HOUR + 600.0, IP))  # second hour, same 2h epoch
        bn = BNBuilder(windows=(HOUR, 2 * HOUR)).build(logs)
        # Pair inside the 1-hour epoch: 1/4 (1h) + 1/5 (2h).
        assert bn.weight(0, 1, IP) == pytest.approx(0.25 + 0.2)
        # Pair joined only at the 2-hour granularity: 1/5.
        assert bn.weight(0, 4, IP) == pytest.approx(0.2)

    def test_epoch_boundaries_separate_groups(self):
        logs = [log(0, "d0", 10.0), log(1, "d0", HOUR + 10.0)]
        bn = BNBuilder(windows=(HOUR,)).build(logs)
        assert bn.weight(0, 1, DEV) == 0.0

    def test_max_clique_size_skips_large_groups(self):
        logs = [log(u, "pub", 100.0 + u) for u in range(10)]
        bn = BNBuilder(windows=(HOUR,), max_clique_size=5).build(logs)
        assert bn.num_edges() == 0

    def test_types_outside_edge_types_ignored(self):
        logs = [log(u, "x", 100.0, BehaviorType.GPS) for u in range(3)]
        bn = BNBuilder(windows=(HOUR,)).build(logs)  # GPS not an edge type
        assert bn.num_edges() == 0


class TestHierarchicalWindows:
    def test_more_windows_never_decrease_weight(self):
        rng = np.random.default_rng(0)
        logs = [
            log(int(u), f"d{int(rng.integers(3))}", float(rng.uniform(0, 3 * DAY)))
            for u in rng.integers(0, 8, size=60)
        ]
        small = BNBuilder(windows=(HOUR,)).build(logs)
        both = BNBuilder(windows=(HOUR, DAY)).build(logs)
        for u, v, t, record in small.iter_edges():
            assert both.weight(u, v, t) >= record.weight - 1e-12

    def test_shorter_cooccurrence_gets_higher_weight(self):
        # Same pair, one co-occurs within an hour, the other within a day.
        logs = [
            log(0, "a", 60.0),
            log(1, "a", 120.0),  # minutes apart
            log(2, "b", 60.0),
            log(3, "b", 10 * HOUR),  # hours apart, same day
        ]
        bn = BNBuilder(windows=(HOUR, DAY)).build(logs)
        assert bn.weight(0, 1, DEV) > bn.weight(2, 3, DEV)


class TestIncrementalJobs:
    def test_window_job_matches_batch(self):
        logs = [log(u, "d0", 100.0 + u) for u in range(3)]
        builder = BNBuilder(windows=(HOUR,))
        batch = builder.build(logs)
        online = BehaviorNetwork()
        builder.run_window_job(online, logs, HOUR, job_end=HOUR)
        for u in range(3):
            for v in range(u + 1, 3):
                assert online.weight(u, v, DEV) == pytest.approx(
                    batch.weight(u, v, DEV)
                )

    def test_job_ignores_out_of_epoch_logs(self):
        builder = BNBuilder(windows=(HOUR,))
        bn = BehaviorNetwork()
        logs = [log(0, "d0", 10.0), log(1, "d0", 2 * HOUR + 5.0)]
        added = builder.run_window_job(bn, logs, HOUR, job_end=HOUR)
        assert added == 0

    def test_unknown_window_rejected(self):
        builder = BNBuilder(windows=(HOUR,))
        with pytest.raises(ValueError):
            builder.run_window_job(BehaviorNetwork(), [], DAY, job_end=DAY)

    def test_replay_equals_batch_on_closed_epochs(self):
        rng = np.random.default_rng(1)
        logs = sorted(
            (
                log(int(u), f"d{int(rng.integers(4))}", float(rng.uniform(0, 2 * DAY)))
                for u in rng.integers(0, 10, size=120)
            ),
            key=lambda l: l.timestamp,
        )
        builder = BNBuilder(windows=(HOUR, DAY))
        until = 2 * DAY  # all epochs closed
        replayed = builder.replay(logs, until=until, expire=False)
        batch = builder.build([l for l in logs if l.timestamp <= until])
        assert replayed.num_edges() == batch.num_edges()
        for u, v, t, record in batch.iter_edges():
            assert replayed.weight(u, v, t) == pytest.approx(record.weight)

    def test_replay_applies_ttl(self):
        logs = [log(0, "d0", 10.0), log(1, "d0", 20.0)]
        builder = BNBuilder(windows=(HOUR,), ttl=DAY)
        bn = builder.replay(logs, until=3 * DAY)
        assert bn.num_edges() == 0


class TestValidation:
    def test_max_clique_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            BNBuilder(max_clique_size=1)


@settings(max_examples=20, deadline=None)
@given(
    uids=st.lists(st.integers(0, 6), min_size=2, max_size=12),
    times=st.lists(st.floats(0.0, float(DAY)), min_size=2, max_size=12),
)
def test_property_weights_symmetric_and_positive(uids, times):
    n = min(len(uids), len(times))
    logs = [log(uids[i], "v", times[i]) for i in range(n)]
    bn = BNBuilder(windows=(HOUR, DAY)).build(logs)
    for u, v, t, record in bn.iter_edges():
        assert record.weight > 0
        assert bn.weight(v, u, t) == pytest.approx(record.weight)


@settings(max_examples=20, deadline=None)
@given(group=st.integers(2, 8), windows=st.integers(1, 3))
def test_property_group_pair_weight_sums(group, windows):
    """All users in one tight instant: every pair gets (#windows) / N."""
    hierarchy = tuple(HOUR * (2**i) for i in range(windows))
    logs = [log(u, "v", 1.0 + u * 0.001) for u in range(group)]
    bn = BNBuilder(windows=hierarchy).build(logs)
    expected = windows / group
    for u in range(group):
        for v in range(u + 1, group):
            assert bn.weight(u, v, DEV) == pytest.approx(expected)
