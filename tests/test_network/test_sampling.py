"""Computation-subgraph sampling tests (inductive inference input)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import BehaviorType
from repro.network import BehaviorNetwork, ComputationSubgraph, computation_subgraph

DEV = BehaviorType.DEVICE_ID
IP = BehaviorType.IPV4


def chain_bn() -> BehaviorNetwork:
    bn = BehaviorNetwork()
    bn.add_weight(0, 1, DEV, 1.0, 0.0)
    bn.add_weight(1, 2, DEV, 1.0, 0.0)
    bn.add_weight(2, 3, DEV, 1.0, 0.0)
    bn.add_weight(0, 4, IP, 2.0, 0.0)
    return bn


class TestSampling:
    def test_target_is_first_node(self):
        subgraph = computation_subgraph(chain_bn(), 1, hops=1)
        assert subgraph.nodes[0] == 1
        assert subgraph.target == 1

    def test_khop_closure(self):
        subgraph = computation_subgraph(chain_bn(), 0, hops=2)
        assert set(subgraph.nodes) == {0, 1, 2, 4}

    def test_zero_hops_is_singleton(self):
        subgraph = computation_subgraph(chain_bn(), 0, hops=0)
        assert subgraph.nodes == [0]

    def test_allowed_filter(self):
        subgraph = computation_subgraph(chain_bn(), 0, hops=2, allowed={1, 4})
        assert set(subgraph.nodes) == {0, 1, 4}

    def test_isolated_target_ok(self):
        bn = chain_bn()
        bn.add_node(99)
        subgraph = computation_subgraph(bn, 99, hops=2)
        assert subgraph.nodes == [99]
        assert subgraph.num_nodes == 1

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            computation_subgraph(chain_bn(), 0, hops=-1)

    def test_adjacency_indices_align_with_nodes(self):
        subgraph = computation_subgraph(chain_bn(), 0, hops=1)
        index = {uid: i for i, uid in enumerate(subgraph.nodes)}
        dev = subgraph.adjacency[DEV]
        assert dev[index[0], index[1]] > 0

    def test_fanout_caps_neighbors(self):
        bn = BehaviorNetwork()
        for v in range(1, 12):
            bn.add_weight(0, v, DEV, float(v), 0.0)
        subgraph = computation_subgraph(bn, 0, hops=1, fanout=3)
        # Top-3 by weight kept.
        assert set(subgraph.nodes) == {0, 11, 10, 9}

    def test_weighted_sampling_with_rng(self):
        bn = BehaviorNetwork()
        for v in range(1, 12):
            bn.add_weight(0, v, DEV, 1.0, 0.0)
        subgraph = computation_subgraph(
            bn, 0, hops=1, fanout=3, rng=np.random.default_rng(0)
        )
        assert subgraph.num_nodes == 4

    def test_merged_sums_types(self):
        subgraph = computation_subgraph(chain_bn(), 0, hops=1)
        merged = subgraph.merged().toarray()
        typed_sum = sum(m.toarray() for m in subgraph.adjacency.values())
        np.testing.assert_allclose(merged, typed_sum)


class TestComputationSubgraph:
    def test_num_nodes(self):
        sg = ComputationSubgraph(target=5, nodes=[5, 6, 7])
        assert sg.num_nodes == 3
