"""Per-type normalization tests (Section III-A)."""

from __future__ import annotations

import pytest

from repro.datagen import BehaviorType
from repro.network import BehaviorNetwork, normalized_weight, type_weighted_degrees

DEV = BehaviorType.DEVICE_ID
IP = BehaviorType.IPV4


class TestWeightedDegrees:
    def test_degrees_sum_incident_weights(self):
        bn = BehaviorNetwork()
        bn.add_weight(1, 2, DEV, 0.5, 0.0)
        bn.add_weight(1, 3, DEV, 1.5, 0.0)
        bn.add_weight(1, 3, IP, 9.0, 0.0)  # other type: excluded
        degrees = type_weighted_degrees(bn, DEV)
        assert degrees[1] == pytest.approx(2.0)
        assert degrees[2] == pytest.approx(0.5)
        assert degrees[3] == pytest.approx(1.5)

    def test_missing_type_is_empty(self):
        bn = BehaviorNetwork()
        bn.add_weight(1, 2, DEV, 0.5, 0.0)
        assert type_weighted_degrees(bn, IP) == {}


class TestNormalizedWeight:
    def test_formula(self):
        assert normalized_weight(2.0, 4.0, 1.0) == pytest.approx(1.0)

    def test_zero_degree_is_zero(self):
        assert normalized_weight(1.0, 0.0, 2.0) == 0.0

    def test_symmetric_in_degrees(self):
        assert normalized_weight(1.0, 2.0, 8.0) == pytest.approx(
            normalized_weight(1.0, 8.0, 2.0)
        )

    def test_high_degree_hub_downweighted(self):
        """A public-Wi-Fi hub's edges shrink relative to a private pair's."""
        private = normalized_weight(1.0, 1.0, 1.0)
        hub = normalized_weight(1.0, 100.0, 1.0)
        assert hub < private
