"""Shared-memory snapshot lifecycle: publish / attach / refcount / unlink.

Pins the ``SharedSnapshotStore`` contract the sharded serving path relies
on: versioned segment names, publisher-owned unlink, refcounted retirement,
cross-process zero-copy attachment, no leaked ``/dev/shm`` segments even
when a reader process crashes mid-read, and the in-process fallback when
shared memory is unavailable.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.network import SharedSnapshotStore, attach_segment
from repro.network.shm import _shared_memory

pytestmark = pytest.mark.sharding

needs_shm = pytest.mark.skipif(
    _shared_memory is None, reason="multiprocessing.shared_memory unavailable"
)


def bundle(seed: int = 0) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "indptr": np.arange(11, dtype=np.int64),
        "weights": rng.random(10),
        "flags": rng.integers(0, 2, size=10, dtype=np.int8),
    }


def shm_listing() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


@needs_shm
class TestPublishAttach:
    def test_roundtrip_same_process(self):
        with SharedSnapshotStore(prefix="repro-test-rt") as store:
            arrays = bundle()
            handle = store.publish("idx", arrays, meta={"kind": "t"}, version=3)
            assert handle.segment == "repro-test-rt-idx-v3"
            assert handle.shared
            assert handle.meta["kind"] == "t" and handle.meta["version"] == 3
            for name, array in arrays.items():
                np.testing.assert_array_equal(handle.arrays[name], array)

    def test_publish_idempotent_per_version(self):
        with SharedSnapshotStore(prefix="repro-test-idem") as store:
            first = store.publish("idx", bundle(), version=1)
            again = store.publish("idx", bundle(seed=9), version=1)
            assert again is first  # same (name, version) → same handle
            newer = store.publish("idx", bundle(seed=9), version=2)
            assert newer is not first
            assert len(store.segments()) == 2

    def test_attach_is_zero_copy_view(self):
        with SharedSnapshotStore(prefix="repro-test-zc") as store:
            handle = store.publish("idx", bundle(), version=0)
            with attach_segment(handle.segment) as reader:
                np.testing.assert_array_equal(
                    reader.arrays["weights"], handle.arrays["weights"]
                )
                # Same physical buffer: a write on the publisher's view is
                # seen by the reader without any copy or message.
                handle.arrays["indptr"][0] = 77
                assert reader.arrays["indptr"][0] == 77

    def test_attach_unknown_segment_raises(self):
        store = SharedSnapshotStore(prefix="repro-test-unk")
        with pytest.raises(KeyError):
            store.attach("repro-test-unk-missing-v0")
        store.close()


@needs_shm
class TestRefcountUnlink:
    def test_retire_waits_for_readers(self):
        store = SharedSnapshotStore(prefix="repro-test-ref")
        handle = store.publish("idx", bundle(), version=0)
        store.acquire(handle.segment)
        store.acquire(handle.segment)
        assert store.refcount(handle.segment) == 2
        store.retire(handle.segment)  # busy → deferred
        assert handle.segment in store.segments()
        store.release(handle.segment)
        assert handle.segment in store.segments()
        store.release(handle.segment)  # last reader out → unlinked
        assert handle.segment not in store.segments()
        with pytest.raises(FileNotFoundError):
            attach_segment(handle.segment)

    def test_retire_idle_unlinks_immediately(self):
        store = SharedSnapshotStore(prefix="repro-test-idle")
        handle = store.publish("idx", bundle(), version=0)
        store.retire(handle.segment)
        assert store.segments() == []
        with pytest.raises(FileNotFoundError):
            attach_segment(handle.segment)

    def test_release_without_acquire_rejected(self):
        store = SharedSnapshotStore(prefix="repro-test-rel")
        handle = store.publish("idx", bundle(), version=0)
        with pytest.raises(ValueError):
            store.release(handle.segment)
        store.close()

    def test_close_unlinks_everything_even_busy(self):
        store = SharedSnapshotStore(prefix="repro-test-close")
        first = store.publish("a", bundle(), version=0)
        second = store.publish("b", bundle(), version=0)
        store.acquire(first.segment)  # still "in flight"
        before = shm_listing()
        assert any("repro-test-close" in name for name in before)
        store.close()
        assert store.segments() == []
        assert not any("repro-test-close" in name for name in shm_listing())
        for segment in (first.segment, second.segment):
            with pytest.raises(FileNotFoundError):
                attach_segment(segment)


@needs_shm
class TestCrossProcess:
    def test_child_reads_zero_copy(self):
        ctx = multiprocessing.get_context("fork")
        with SharedSnapshotStore(prefix="repro-test-xp") as store:
            handle = store.publish("idx", bundle(), version=0)
            parent, child = ctx.Pipe()

            def reader(conn, segment):
                with attach_segment(segment) as seg:
                    conn.send(float(seg.arrays["weights"].sum()))
                conn.close()

            proc = ctx.Process(target=reader, args=(child, handle.segment))
            proc.start()
            child.close()
            assert parent.recv() == float(handle.arrays["weights"].sum())
            proc.join(timeout=10)
            assert proc.exitcode == 0

    def test_worker_crash_leaks_nothing(self):
        """A reader dying mid-attachment must not unlink or leak segments."""
        ctx = multiprocessing.get_context("fork")
        store = SharedSnapshotStore(prefix="repro-test-crash")
        handle = store.publish("idx", bundle(), version=0)

        def crasher(segment):
            attach_segment(segment)  # holds a live mapping...
            os._exit(13)  # ...and dies without closing it

        proc = ctx.Process(target=crasher, args=(handle.segment,))
        proc.start()
        proc.join(timeout=10)
        assert proc.exitcode == 13
        # The publisher still owns a healthy segment (the crash didn't
        # trigger any resource-tracker unlink)...
        with attach_segment(handle.segment) as seg:
            np.testing.assert_array_equal(
                seg.arrays["weights"], handle.arrays["weights"]
            )
        # ...and teardown removes it without leftovers.
        store.close()
        assert not any("repro-test-crash" in name for name in shm_listing())


class TestFallback:
    def test_in_process_fallback_keeps_api(self):
        store = SharedSnapshotStore(prefix="repro-test-fb", use_shm=False)
        assert not store.attachable
        arrays = bundle()
        handle = store.publish("idx", arrays, version=0)
        assert not handle.shared
        assert store.fell_back
        np.testing.assert_array_equal(
            store.attach(handle.segment).arrays["weights"], arrays["weights"]
        )
        store.acquire(handle.segment)
        store.retire(handle.segment)
        store.release(handle.segment)
        assert store.segments() == []
        store.close()
