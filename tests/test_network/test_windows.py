"""Hierarchical window validation tests."""

from __future__ import annotations

import pytest

from repro.datagen import DAY, HOUR
from repro.network import FAST_WINDOWS, PAPER_WINDOWS, validate_windows


class TestWindows:
    def test_paper_windows_match_section3(self):
        assert PAPER_WINDOWS[0] == HOUR
        assert PAPER_WINDOWS[-1] == DAY
        assert len(PAPER_WINDOWS) == 13  # 1..12 hours + 1 day

    def test_fast_windows_are_valid(self):
        assert validate_windows(FAST_WINDOWS) == FAST_WINDOWS

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            validate_windows(())

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            validate_windows((HOUR, HOUR))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            validate_windows((-1.0, HOUR))

    def test_coerces_to_floats(self):
        assert validate_windows([1, 2]) == (1.0, 2.0)
