"""Method registry tests: every Table III method runs end-to-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import METHODS, get_method, hag_method, method_names
from repro.datagen import BehaviorType
from repro.eval import run_method


class TestRegistry:
    def test_all_table3_methods_registered(self):
        expected = {
            "LR",
            "SVM",
            "GBDT",
            "DNN",
            "GCN",
            "GraphSAGE",
            "GAT",
            "BLP",
            "DTX1",
            "DTX2",
            "HAG",
            "HAG-SAO(-)",
            "HAG-CFO(-)",
            "HAG-Both(-)",
        }
        assert expected <= set(method_names())

    def test_get_method_unknown(self):
        with pytest.raises(KeyError):
            get_method("nope")

    @pytest.mark.parametrize("name", ["LR", "SVM", "GBDT"])
    def test_fast_feature_methods_run(self, name, tiny_experiment):
        report, scores = run_method(METHODS[name], tiny_experiment, seed=0)
        assert len(scores) == len(tiny_experiment.nodes)
        assert ((scores >= 0) & (scores <= 1)).all()
        assert 0.0 <= report.auc <= 1.0

    def test_graph_method_runs(self, tiny_experiment):
        report, scores = run_method(METHODS["GCN"], tiny_experiment, seed=0)
        assert np.isfinite(scores).all()
        # The graph on the tiny dataset still separates better than chance.
        assert report.auc > 0.5

    def test_hag_masked_types_closure(self, tiny_experiment):
        masked = hag_method(masked_types=(BehaviorType.DEVICE_ID,))
        report, scores = run_method(masked, tiny_experiment, seed=0)
        assert np.isfinite(scores).all()
        assert 0.0 <= report.auc <= 1.0
