"""GCN / GraphSAGE / GAT / DNN baseline tests."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines import (
    GAT,
    GCN,
    DNNClassifier,
    GraphSAGE,
    gat_edges,
    gcn_aggregator,
    sage_aggregator,
)
from repro.nn import Tensor


def two_cluster_graph(rng, n_per=20):
    """Two communities with distinct features; labels follow community."""
    n = 2 * n_per
    dense = np.zeros((n, n))
    for block in (slice(0, n_per), slice(n_per, n)):
        sub = rng.random((n_per, n_per)) < 0.3
        dense[block, block] = np.triu(sub, 1)
    dense = dense + dense.T
    adjacency = sp.csr_matrix(dense)
    x = rng.normal(size=(n, 4))
    x[:n_per] += 1.0
    y = np.zeros(n)
    y[:n_per] = 1
    return adjacency, x, y


class TestAggregators:
    def test_gcn_aggregator_has_self_loops(self):
        adjacency = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        agg = gcn_aggregator(adjacency).toarray()
        assert agg[0, 0] > 0

    def test_sage_aggregator_excludes_self(self):
        adjacency = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        agg = sage_aggregator(adjacency).toarray()
        assert agg[0, 0] == 0.0
        np.testing.assert_allclose(agg.sum(axis=1), 1.0)

    def test_gat_edges_include_self_loops(self):
        adjacency = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        rows, cols = gat_edges(adjacency)
        assert (0, 0) in set(zip(rows.tolist(), cols.tolist()))


class TestForwardShapes:
    def test_gcn(self, rng):
        adjacency, x, _ = two_cluster_graph(rng, n_per=6)
        model = GCN(4, rng, hidden=(8, 4), mlp_hidden=(4,))
        logits = model(Tensor(x), gcn_aggregator(adjacency))
        assert logits.shape == (12,)

    def test_graphsage(self, rng):
        adjacency, x, _ = two_cluster_graph(rng, n_per=6)
        model = GraphSAGE(4, rng, hidden=(8, 4), mlp_hidden=(4,))
        assert model(Tensor(x), sage_aggregator(adjacency)).shape == (12,)

    def test_gat(self, rng):
        adjacency, x, _ = two_cluster_graph(rng, n_per=6)
        model = GAT(4, rng, hidden=(8, 4), mlp_hidden=(4,), heads=2)
        assert model(Tensor(x), gat_edges(adjacency)).shape == (12,)

    def test_gat_head_divisibility(self, rng):
        with pytest.raises(ValueError):
            GAT(4, rng, hidden=(7,), heads=2)


class TestLearning:
    def train(self, model, forward, x, y):
        from repro.core import TrainConfig, train_node_classifier

        train_node_classifier(
            model,
            forward,
            x,
            y,
            np.arange(len(y)),
            None,
            TrainConfig(epochs=60, lr=0.01, patience=60),
        )

    def test_gcn_learns_communities(self, rng):
        adjacency, x, y = two_cluster_graph(rng)
        model = GCN(4, rng, hidden=(8, 4), mlp_hidden=(4,))
        agg = gcn_aggregator(adjacency)
        self.train(model, lambda t: model(t, agg), x, y)
        accuracy = ((model.predict_proba(x, agg) > 0.5) == y.astype(bool)).mean()
        assert accuracy > 0.9

    def test_graphsage_learns_communities(self, rng):
        adjacency, x, y = two_cluster_graph(rng)
        model = GraphSAGE(4, rng, hidden=(8, 4), mlp_hidden=(4,))
        agg = sage_aggregator(adjacency)
        self.train(model, lambda t: model(t, agg), x, y)
        accuracy = ((model.predict_proba(x, agg) > 0.5) == y.astype(bool)).mean()
        assert accuracy > 0.9

    def test_gat_learns_communities(self, rng):
        adjacency, x, y = two_cluster_graph(rng)
        model = GAT(4, rng, hidden=(8, 4), mlp_hidden=(4,), heads=2)
        edges = gat_edges(adjacency)
        self.train(model, lambda t: model(t, edges), x, y)
        accuracy = ((model.predict_proba(x, edges) > 0.5) == y.astype(bool)).mean()
        assert accuracy > 0.9


class TestDNN:
    def test_fit_predict(self, rng):
        x = rng.normal(size=(200, 5))
        y = (x[:, 0] > 0).astype(float)
        model = DNNClassifier(hidden=(16,), epochs=150, seed=0).fit(x, y)
        probs = model.predict_proba(x)
        assert ((probs >= 0) & (probs <= 1)).all()
        assert ((probs > 0.5) == y.astype(bool)).mean() > 0.85

    def test_validation_path(self, rng):
        x = rng.normal(size=(120, 5))
        y = (x[:, 0] > 0).astype(float)
        model = DNNClassifier(hidden=(8,), epochs=10, seed=0)
        model.fit(x[:100], y[:100], x[100:], y[100:])
        assert model.predict_proba(x).shape == (120,)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DNNClassifier().predict_proba(np.zeros((2, 5)))
