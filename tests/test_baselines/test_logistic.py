"""Logistic regression baseline tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LogisticRegression


class TestLogisticRegression:
    def test_learns_linear_boundary(self, rng):
        x = rng.normal(size=(500, 4))
        w = np.array([2.0, -1.0, 0.5, 0.0])
        y = (x @ w > 0).astype(float)
        model = LogisticRegression().fit(x, y)
        accuracy = ((model.predict_proba(x) > 0.5) == y.astype(bool)).mean()
        assert accuracy > 0.95

    def test_probabilities_in_unit_interval(self, rng):
        x = rng.normal(size=(100, 3))
        y = (x[:, 0] > 0).astype(float)
        probs = LogisticRegression().fit(x, y).predict_proba(x)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_l2_shrinks_coefficients(self, rng):
        x = rng.normal(size=(200, 3))
        y = (x[:, 0] > 0).astype(float)
        weak = LogisticRegression(l2=1e-4).fit(x, y)
        strong = LogisticRegression(l2=1.0).fit(x, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(np.zeros((2, 2)))

    def test_negative_l2_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)

    def test_extreme_inputs_stable(self, rng):
        x = rng.normal(size=(50, 2)) * 1000
        y = (x[:, 0] > 0).astype(float)
        probs = LogisticRegression().fit(x, y).predict_proba(x)
        assert np.isfinite(probs).all()
