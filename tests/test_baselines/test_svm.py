"""Linear SVM baseline tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LinearSVM


class TestLinearSVM:
    def test_separates_linear_data(self, rng):
        x = rng.normal(size=(400, 3))
        y = (x[:, 0] - x[:, 1] > 0).astype(float)
        model = LinearSVM(seed=0).fit(x, y)
        accuracy = ((model.decision_function(x) > 0) == y.astype(bool)).mean()
        assert accuracy > 0.9

    def test_probability_monotone_in_margin(self, rng):
        x = rng.normal(size=(200, 2))
        y = (x[:, 0] > 0).astype(float)
        model = LinearSVM(seed=0).fit(x, y)
        margins = model.decision_function(x)
        probs = model.predict_proba(x)
        order = np.argsort(margins)
        assert (np.diff(probs[order]) >= -1e-12).all()

    def test_class_weight_lifts_minority_recall(self, rng):
        x = rng.normal(size=(500, 3))
        y = np.zeros(500)
        y[:40] = 1
        x[:40] += 1.0

        def recall(weight):
            model = LinearSVM(class_weight=weight, seed=0).fit(x, y)
            return (model.decision_function(x[:40]) > 0).mean()

        assert recall(10.0) >= recall(1.0)

    def test_invalid_c(self):
        with pytest.raises(ValueError):
            LinearSVM(c=0.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearSVM().decision_function(np.zeros((2, 2)))

    def test_deterministic_given_seed(self, rng):
        x = rng.normal(size=(100, 2))
        y = (x[:, 0] > 0).astype(float)
        a = LinearSVM(seed=3).fit(x, y)
        b = LinearSVM(seed=3).fit(x, y)
        np.testing.assert_allclose(a.coef_, b.coef_)
