"""BLP baseline tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BLPClassifier, BLPFeatureExtractor
from repro.baselines.blp import BLP_FEATURE_NAMES
from repro.datagen import BehaviorLog, BehaviorType

DEV = BehaviorType.DEVICE_ID
WIFI = BehaviorType.WIFI_MAC


def ring_logs():
    """Three users on one device (fraud ring), two singletons."""
    logs = []
    for i, uid in enumerate((1, 2, 3)):
        logs.append(BehaviorLog(uid, DEV, "ring_dev", float(i)))
    logs.append(BehaviorLog(4, DEV, "own_a", 10.0))
    logs.append(BehaviorLog(5, DEV, "own_b", 11.0))
    return logs


def mixed_logs():
    """Device co-occurrence is label-coherent; Wi-Fi is not."""
    logs = ring_logs()
    # Public wifi shared by fraud and normal users alike.
    for i, uid in enumerate((1, 4, 5)):
        logs.append(BehaviorLog(uid, WIFI, "cafe", 20.0 + i))
    return logs


LABELS = {1: 1, 2: 1, 3: 1, 4: 0, 5: 0}


class TestHomophilyTest:
    def test_coherent_type_kept(self):
        extractor = BLPFeatureExtractor().fit(ring_logs(), LABELS)
        assert DEV in extractor.kept_types

    def test_incoherent_type_dropped(self):
        extractor = BLPFeatureExtractor(homophily_threshold=0.6).fit(
            mixed_logs(), LABELS
        )
        assert DEV in extractor.kept_types
        # "cafe" pairs: (1,4),(1,5) different + (4,5) same -> 1/3 < 0.6.
        assert WIFI not in extractor.kept_types

    def test_dropped_type_contributes_no_edges(self):
        extractor = BLPFeatureExtractor(homophily_threshold=0.6).fit(
            mixed_logs(), LABELS
        )
        names = list(BLP_FEATURE_NAMES)
        # User 4 only co-occurs via the dropped café wifi -> isolated.
        assert extractor.features(4)[names.index("projected_degree")] == 0.0


class TestExtractor:
    def test_feature_vector_length(self):
        extractor = BLPFeatureExtractor().fit(ring_logs(), LABELS)
        assert extractor.features(1).shape == (len(BLP_FEATURE_NAMES),)

    def test_unseen_user_zero_vector(self):
        extractor = BLPFeatureExtractor().fit(ring_logs(), LABELS)
        np.testing.assert_allclose(extractor.features(99), 0.0)

    def test_ring_member_has_higher_degree(self):
        extractor = BLPFeatureExtractor().fit(ring_logs(), LABELS)
        names = list(BLP_FEATURE_NAMES)
        degree_index = names.index("projected_degree")
        assert extractor.features(1)[degree_index] > extractor.features(4)[degree_index]

    def test_clustering_in_clique(self):
        extractor = BLPFeatureExtractor().fit(ring_logs(), LABELS)
        names = list(BLP_FEATURE_NAMES)
        cc = extractor.features(1)[names.index("clustering_coefficient")]
        assert cc > 0.5  # ring projection is a triangle

    def test_matrix_stacks_rows(self):
        extractor = BLPFeatureExtractor().fit(ring_logs(), LABELS)
        matrix = extractor.matrix([1, 4, 99])
        assert matrix.shape == (3, len(BLP_FEATURE_NAMES))


class TestClassifier:
    def test_end_to_end_on_tiny_dataset(self, tiny_experiment):
        data = tiny_experiment
        idx = data.fit_idx
        uids = [data.nodes[i] for i in idx]
        model = BLPClassifier(gbdt_params={"n_estimators": 20, "seed": 0})
        model.fit(data.dataset.logs, uids, data.labels[idx], data.features_raw[idx])
        scores = model.predict_proba(data.nodes, data.features_raw)
        assert scores.shape == (len(data.nodes),)
        assert ((scores >= 0) & (scores <= 1)).all()

    def test_requires_fit_before_predict(self):
        with pytest.raises(RuntimeError):
            BLPClassifier().predict_proba([1], np.zeros((1, 2)))

    def test_original_features_required_when_enabled(self):
        model = BLPClassifier(use_original_features=True)
        with pytest.raises(ValueError):
            model.fit(ring_logs(), [1, 4], np.array([1, 0]), None)

    def test_graph_only_mode(self):
        model = BLPClassifier(
            use_original_features=False,
            gbdt_params={"n_estimators": 5, "min_samples_leaf": 1},
        )
        model.fit(ring_logs(), [1, 2, 3, 4, 5], np.array([1, 1, 1, 0, 0]))
        scores = model.predict_proba([1, 4])
        assert scores.shape == (2,)
