"""Registry end-to-end runs for the heavier graph methods (tiny scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import METHODS
from repro.eval import run_method


@pytest.mark.parametrize("name", ["GAT", "DTX1", "DTX2", "BLP", "DNN"])
def test_graph_and_embedding_methods_run(name, tiny_experiment):
    report, scores = run_method(METHODS[name], tiny_experiment, seed=0)
    assert len(scores) == len(tiny_experiment.nodes)
    assert np.isfinite(scores).all()
    assert ((scores >= 0) & (scores <= 1)).all()
    assert 0.0 <= report.auc <= 1.0


def test_hag_ablation_variants_run(tiny_experiment):
    for name in ("HAG-SAO(-)", "HAG-CFO(-)", "HAG-Both(-)"):
        report, _scores = run_method(METHODS[name], tiny_experiment, seed=0)
        assert 0.0 <= report.auc <= 1.0


def test_methods_are_deterministic_given_seed(tiny_experiment):
    _, first = run_method(METHODS["GBDT"], tiny_experiment, seed=5)
    _, second = run_method(METHODS["GBDT"], tiny_experiment, seed=5)
    np.testing.assert_allclose(first, second)
