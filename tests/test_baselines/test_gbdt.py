"""GBDT tests: tree splitting, boosting convergence, invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import GradientBoostingClassifier, RegressionTree


class TestRegressionTree:
    def test_finds_obvious_split(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0], [10.0], [11.0], [12.0], [13.0]])
        gradients = np.array([-1.0] * 4 + [1.0] * 4)
        hessians = np.ones(8)
        tree = RegressionTree(max_depth=2, min_samples_leaf=2).fit(x, gradients, hessians)
        predictions = tree.predict(x)
        assert predictions[0] > 0 > predictions[-1]  # Newton step: -G/(H+λ)
        assert tree.depth() >= 1

    def test_respects_min_samples_leaf(self):
        x = np.arange(6.0).reshape(-1, 1)
        gradients = np.array([-1.0, -1, -1, 1, 1, 1])
        tree = RegressionTree(max_depth=3, min_samples_leaf=4).fit(
            x, gradients, np.ones(6)
        )
        assert tree.depth() == 0  # cannot split: both sides would be < 4

    def test_constant_feature_no_split(self):
        x = np.ones((10, 1))
        gradients = np.linspace(-1, 1, 10)
        tree = RegressionTree().fit(x, gradients, np.ones(10))
        assert tree.depth() == 0

    def test_feature_subset_respected(self):
        rng = np.random.default_rng(0)
        x = np.hstack([rng.normal(size=(50, 1)), np.linspace(-1, 1, 50)[:, None]])
        gradients = np.sign(x[:, 1])
        tree = RegressionTree(max_depth=1, min_samples_leaf=5).fit(
            x, gradients, np.ones(50), feature_indices=np.array([0])
        )
        # Only the noise feature was allowed; the informative split on
        # feature 1 must not appear.
        assert tree.root.feature in (-1, 0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((2, 2)))

    @pytest.mark.parametrize("kwargs", [{"max_depth": 0}, {"min_samples_leaf": 0}])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            RegressionTree(**kwargs)


class TestGradientBoosting:
    def test_learns_nonlinear_boundary(self, rng):
        x = rng.normal(size=(600, 2))
        y = ((x[:, 0] ** 2 + x[:, 1] ** 2) < 1.0).astype(float)  # circle
        model = GradientBoostingClassifier(n_estimators=60, seed=0).fit(x, y)
        accuracy = ((model.predict_proba(x) > 0.5) == y.astype(bool)).mean()
        assert accuracy > 0.9

    def test_staged_train_loss_decreases(self, rng):
        x = rng.normal(size=(300, 3))
        y = (x[:, 0] > 0).astype(float)
        model = GradientBoostingClassifier(
            n_estimators=30, subsample=1.0, colsample=1.0, seed=0
        ).fit(x, y)
        losses = model.staged_train_loss(x, y)
        assert losses[-1] < losses[0]
        # Full-batch second-order boosting: train loss is near-monotone.
        violations = sum(b > a + 1e-9 for a, b in zip(losses, losses[1:]))
        assert violations <= len(losses) // 10

    def test_base_score_is_prior_log_odds(self, rng):
        x = rng.normal(size=(100, 2))
        y = np.zeros(100)
        y[:25] = 1
        model = GradientBoostingClassifier(n_estimators=1, seed=0).fit(x, y)
        np.testing.assert_allclose(model.base_score_, np.log(0.25 / 0.75), rtol=1e-9)

    def test_deterministic_given_seed(self, rng):
        x = rng.normal(size=(150, 3))
        y = (x[:, 1] > 0).astype(float)
        a = GradientBoostingClassifier(n_estimators=10, seed=4).fit(x, y)
        b = GradientBoostingClassifier(n_estimators=10, seed=4).fit(x, y)
        np.testing.assert_allclose(a.predict_proba(x), b.predict_proba(x))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostingClassifier().predict_proba(np.zeros((2, 2)))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_estimators": 0},
            {"learning_rate": 0.0},
            {"subsample": 0.0},
            {"colsample": 1.5},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(**kwargs)

    def test_row_count_mismatch(self, rng):
        with pytest.raises(ValueError):
            GradientBoostingClassifier().fit(np.zeros((5, 2)), np.zeros(4))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_property_more_trees_never_hurt_train_fit(seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(200, 3))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(float)
    few = GradientBoostingClassifier(
        n_estimators=5, subsample=1.0, colsample=1.0, seed=0
    ).fit(x, y)
    many = GradientBoostingClassifier(
        n_estimators=40, subsample=1.0, colsample=1.0, seed=0
    ).fit(x, y)
    assert many.staged_train_loss(x, y)[-1] <= few.staged_train_loss(x, y)[-1] + 1e-9
