"""Scorecard and block-list (hard-coded production baselines) tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import Blocklist, Scorecard, ScorecardRule, default_scorecard
from repro.datagen import DAY, BehaviorLog, BehaviorType, Transaction, User

DEV = BehaviorType.DEVICE_ID
IP = BehaviorType.IPV4


def good_user() -> User:
    return User(
        uid=1,
        registered_at=0.0,
        age=35,
        credit_score=750,
        income_level=4.0,
        phone_verified=True,
        id_verified=True,
        third_party_score=0.9,
        historical_leases=3,
    )


def bad_user() -> User:
    return User(
        uid=2,
        registered_at=99 * DAY,
        age=19,
        credit_score=500,
        income_level=1.0,
        phone_verified=False,
        id_verified=False,
        third_party_score=0.1,
        historical_leases=0,
    )


def txn(uid: int, created: float = 100 * DAY) -> Transaction:
    return Transaction(txn_id=0, uid=uid, created_at=created, monthly_rent=250.0, item_value=3000.0)


class TestScorecard:
    def test_bad_profile_scores_higher(self):
        card = default_scorecard()
        assert card.score(bad_user(), txn(2)) > card.score(good_user(), txn(1))

    def test_score_in_unit_interval(self):
        card = default_scorecard()
        for user in (good_user(), bad_user()):
            assert 0.0 <= card.score(user, txn(user.uid)) <= 1.0

    def test_decision_threshold(self):
        card = default_scorecard(decision_threshold=0.5)
        assert card.predict(bad_user(), txn(2))
        assert not card.predict(good_user(), txn(1))

    def test_empty_scorecard_rejected(self):
        with pytest.raises(ValueError):
            Scorecard(rules=[]).score(good_user(), txn(1))

    def test_scores_vectorized(self):
        card = default_scorecard()
        scores = card.scores([(good_user(), txn(1)), (bad_user(), txn(2))])
        assert scores.shape == (2,)

    def test_custom_rule(self):
        card = Scorecard(
            rules=[ScorecardRule("always", 1.0, lambda u, t: True)],
            decision_threshold=0.5,
        )
        assert card.score(good_user(), txn(1)) == 1.0


class TestBlocklist:
    def logs(self):
        return [
            BehaviorLog(1, DEV, "fraud_dev", 0.0),
            BehaviorLog(2, DEV, "fraud_dev", 1.0),
            BehaviorLog(3, DEV, "clean_dev", 2.0),
            BehaviorLog(1, IP, "ip_x", 3.0),
        ]

    def test_fit_collects_fraud_values(self):
        blocklist = Blocklist().fit(self.logs(), fraud_uids={1})
        assert len(blocklist) >= 1
        assert blocklist.is_blocked(self.logs(), 2)  # shares fraud_dev
        assert not blocklist.is_blocked(self.logs(), 3)

    def test_only_watched_types_collected(self):
        blocklist = Blocklist(watched_types=(DEV,)).fit(self.logs(), {1})
        assert (IP, "ip_x") not in blocklist._blocked

    def test_scores_fractional(self):
        blocklist = Blocklist().fit(self.logs(), {1})
        scores = blocklist.predict_proba(self.logs(), [1, 2, 3, 4])
        assert scores[1] > 0.0
        assert scores[2] == 0.0
        assert scores[3] == 0.0  # no logs at all

    def test_manual_add(self):
        blocklist = Blocklist()
        blocklist.add(DEV, "evil")
        assert blocklist.is_blocked([BehaviorLog(9, DEV, "evil", 0.0)], 9)

    def test_blocklist_misses_unseen_fraud(self):
        """The structural weakness motivating Turbo: new rings evade it."""
        blocklist = Blocklist().fit(self.logs(), fraud_uids={1})
        new_ring = [BehaviorLog(50, DEV, "new_ring_dev", 0.0)]
        assert not blocklist.is_blocked(new_ring, 50)
