"""DeepWalk / skip-gram substrate tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DeepWalk, SkipGramEmbedder, random_walks


class TestRandomWalks:
    def test_walk_shape_and_connectivity(self, rng):
        adjacency = {0: [1], 1: [0, 2], 2: [1]}
        walks = random_walks(adjacency, walk_length=4, walks_per_node=2, rng=rng)
        assert len(walks) == 6
        for walk in walks:
            assert 1 <= len(walk) <= 4
            for a, b in zip(walk, walk[1:]):
                assert b in adjacency[a]

    def test_isolated_nodes_skipped(self, rng):
        walks = random_walks({0: [], 1: [2], 2: [1]}, 3, 1, rng)
        assert all(walk[0] != 0 for walk in walks)

    def test_invalid_length(self, rng):
        with pytest.raises(ValueError):
            random_walks({0: [1]}, 0, 1, rng)


class TestSkipGram:
    def test_cooccurring_items_embed_closer(self):
        # Two groups; pairs only within groups.
        centers, contexts = [], []
        rng = np.random.default_rng(0)
        for _ in range(2000):
            group = rng.integers(2)
            a, b = rng.choice([0, 1, 2] if group == 0 else [3, 4, 5], 2, replace=False)
            centers.append(a)
            contexts.append(b)
        embedder = SkipGramEmbedder(6, dim=16, epochs=5, seed=0)
        embedder.train(np.asarray(centers), np.asarray(contexts))
        emb = embedder.embedding()

        def cosine(a, b):
            return a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12)

        within = cosine(emb[0], emb[1])
        across = cosine(emb[0], emb[3])
        assert within > across

    def test_empty_corpus_is_noop(self):
        embedder = SkipGramEmbedder(4, dim=8)
        before = embedder.embedding().copy()
        embedder.train(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        np.testing.assert_allclose(embedder.embedding(), before)

    def test_mismatched_pairs_rejected(self):
        embedder = SkipGramEmbedder(4)
        with pytest.raises(ValueError):
            embedder.train(np.array([0]), np.array([0, 1]))

    def test_invalid_n_items(self):
        with pytest.raises(ValueError):
            SkipGramEmbedder(0)


class TestDeepWalk:
    def test_embedding_shape(self):
        adjacency = {i: [(i + 1) % 6, (i - 1) % 6] for i in range(6)}
        emb = DeepWalk(dim=8, walk_length=5, walks_per_node=3, seed=0).fit(adjacency, 6)
        assert emb.shape == (6, 8)
        assert np.isfinite(emb).all()
