"""DeepTrax (DTX) baseline tests."""

from __future__ import annotations

import numpy as np

from repro.baselines import DeepTraxEmbedder, build_bipartite
from repro.datagen import BehaviorLog, BehaviorType

DEV = BehaviorType.DEVICE_ID


def logs_for(pairs):
    return [BehaviorLog(uid, DEV, value, float(i)) for i, (uid, value) in enumerate(pairs)]


class TestBuildBipartite:
    def test_entities_map_to_user_indices(self):
        logs = logs_for([(10, "a"), (11, "a"), (12, "b")])
        adjacency = build_bipartite(logs, [10, 11, 12])
        assert list(adjacency.values()) == [[0, 1]]  # only "a" is shared

    def test_large_entities_dropped(self):
        logs = logs_for([(u, "public") for u in range(10)])
        adjacency = build_bipartite(logs, list(range(10)), max_entity_degree=5)
        assert adjacency == {}

    def test_unknown_users_ignored(self):
        logs = logs_for([(10, "a"), (99, "a")])
        adjacency = build_bipartite(logs, [10])
        assert adjacency == {}

    def test_non_edge_types_ignored(self):
        logs = [BehaviorLog(1, BehaviorType.GPS, "x", 0.0), BehaviorLog(2, BehaviorType.GPS, "x", 1.0)]
        assert build_bipartite(logs, [1, 2]) == {}


class TestDeepTraxEmbedder:
    def test_embedding_shape_and_rows_align(self, tiny_dataset):
        users = sorted(tiny_dataset.labels)[:50]
        embedder = DeepTraxEmbedder(dim=8, epochs=1, seed=0)
        emb = embedder.fit_transform(tiny_dataset.logs, users)
        assert emb.shape == (50, 8)
        assert np.isfinite(emb).all()

    def test_ring_members_embed_close(self):
        """Users sharing a device embed closer than non-co-occurring users."""
        logs = []
        # Ring: users 0-2 share one device repeatedly.
        for i in range(30):
            logs.append(BehaviorLog(i % 3, DEV, "ring_dev", float(i)))
        # Strangers: users 3-12 each on their own device.
        for uid in range(3, 13):
            logs.append(BehaviorLog(uid, DEV, f"own_{uid}", float(uid)))
        embedder = DeepTraxEmbedder(
            dim=16, epochs=20, lr=0.1, pairs_per_entity=200, seed=0
        )
        emb = embedder.fit_transform(logs, list(range(13)))

        def cosine(a, b):
            return a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12)

        within = np.mean(
            [cosine(emb[i], emb[j]) for i in range(3) for j in range(i + 1, 3)]
        )
        across = np.mean(
            [cosine(emb[i], emb[3 + k]) for i in range(3) for k in range(10)]
        )
        assert within > across
