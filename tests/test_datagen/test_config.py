"""GeneratorConfig validation tests."""

from __future__ import annotations

import pytest

from repro.datagen import GeneratorConfig


class TestValidation:
    def test_default_config_is_valid(self):
        GeneratorConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_users", 0),
            ("fraud_rate", -0.1),
            ("fraud_rate", 1.0),
            ("ring_fraction", 1.5),
            ("min_ring_size", 1),
            ("span_days", 0.5),
            ("rejected_applicant_fraction", -1.0),
        ],
    )
    def test_invalid_values_raise(self, field, value):
        config = GeneratorConfig()
        setattr(config, field, value)
        with pytest.raises(ValueError):
            config.validate()

    def test_max_ring_below_min_raises(self):
        config = GeneratorConfig(min_ring_size=5, max_ring_size=4)
        with pytest.raises(ValueError):
            config.validate()

    def test_span_seconds(self):
        assert GeneratorConfig(span_days=2.0).span_seconds == 2 * 86400.0
