"""Concept-drift scenario tests."""

from __future__ import annotations

import pytest

from repro.datagen import GeneratorConfig, generate_drift_scenario
from repro.datagen.drift import _drifted_config
from tests.conftest import tiny_generator_config


class TestDriftedConfig:
    def test_zero_drift_is_identity_on_tactics(self):
        base = GeneratorConfig()
        drifted = _drifted_config(base, 0.0)
        assert drifted.p_packaged_identity == base.p_packaged_identity
        assert drifted.p_ring_shares_sims == base.p_ring_shares_sims

    def test_full_drift_evolves_tactics(self):
        base = GeneratorConfig()
        drifted = _drifted_config(base, 1.0)
        assert drifted.p_packaged_identity > base.p_packaged_identity
        assert drifted.p_careful_fraudster > base.p_careful_fraudster
        assert drifted.p_ring_shares_sims < base.p_ring_shares_sims
        assert drifted.mean_ring_size < base.mean_ring_size

    def test_drift_bounds(self):
        base = GeneratorConfig()
        with pytest.raises(ValueError):
            _drifted_config(base, 1.5)

    def test_drifted_config_validates(self):
        _drifted_config(GeneratorConfig(), 1.0).validate()


class TestScenario:
    def test_scenario_structure(self):
        scenario = generate_drift_scenario(
            tiny_generator_config(n_users=120), n_periods=2, seed=3
        )
        assert len(scenario.periods) == 2
        assert scenario.periods[0].drift_level < scenario.periods[1].drift_level
        assert scenario.train.name == "drift-train"
        for period in scenario.periods:
            assert len(period.dataset.users) > 0

    def test_resources_rotate_between_periods(self):
        """Fresh periods mint fresh identifiers (burned hardware discarded)."""
        scenario = generate_drift_scenario(
            tiny_generator_config(n_users=120), n_periods=1, seed=3
        )
        train_values = {l.value for l in scenario.train.logs}
        period_values = {l.value for l in scenario.periods[0].dataset.logs}
        # Per-period namespaces guarantee disjoint identifier spaces: a
        # block-list fit on one period can never string-match the next.
        assert not (train_values & period_values)

    def test_invalid_period_count(self):
        with pytest.raises(ValueError):
            generate_drift_scenario(n_periods=0)
