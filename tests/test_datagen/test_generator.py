"""Simulator tests: determinism, population structure, behavioural patterns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import (
    DAY,
    BehaviorType,
    GeneratorConfig,
    LeasingPlatformSimulator,
)
from tests.conftest import tiny_generator_config


class TestPopulation:
    def test_user_count_close_to_config(self, tiny_dataset):
        # Ring rounding can add a couple of users beyond n_users.
        assert 220 <= len(tiny_dataset.users) <= 235

    def test_fraud_rate_close_to_config(self, tiny_dataset):
        labels = tiny_dataset.labels
        rate = sum(labels.values()) / len(labels)
        assert 0.08 <= rate <= 0.17

    def test_every_user_has_a_transaction(self, tiny_dataset):
        with_txn = {t.uid for t in tiny_dataset.transactions}
        assert {u.uid for u in tiny_dataset.users} <= with_txn

    def test_ring_members_share_ring_id(self, tiny_dataset):
        rings: dict[int, int] = {}
        for user in tiny_dataset.users:
            if user.ring_id is not None:
                rings[user.ring_id] = rings.get(user.ring_id, 0) + 1
        assert rings, "expected at least one ring"
        assert all(size >= 2 for size in rings.values())

    def test_fraudster_transactions_underpay(self, tiny_dataset):
        for txn in tiny_dataset.transactions:
            if txn.is_fraud:
                assert txn.paid_periods <= 2
            else:
                assert txn.paid_periods == txn.lease_term

    def test_logs_sorted_by_time(self, tiny_dataset):
        times = [log.timestamp for log in tiny_dataset.logs]
        assert times == sorted(times)

    def test_logs_within_span(self, tiny_dataset):
        for log in tiny_dataset.logs[:2000]:
            assert 0.0 <= log.timestamp <= tiny_dataset.end_time


class TestDeterminism:
    def test_same_seed_same_output(self):
        config = tiny_generator_config(n_users=80)
        a = LeasingPlatformSimulator(config, seed=7).generate()
        b = LeasingPlatformSimulator(tiny_generator_config(n_users=80), seed=7).generate()
        assert len(a.logs) == len(b.logs)
        assert [u.credit_score for u in a.users] == [u.credit_score for u in b.users]
        assert [(l.uid, l.value) for l in a.logs[:100]] == [
            (l.uid, l.value) for l in b.logs[:100]
        ]

    def test_different_seed_differs(self):
        a = LeasingPlatformSimulator(tiny_generator_config(n_users=80), seed=1).generate()
        b = LeasingPlatformSimulator(tiny_generator_config(n_users=80), seed=2).generate()
        assert [u.credit_score for u in a.users] != [u.credit_score for u in b.users]


class TestBehaviouralPatterns:
    """The four Fig. 4 patterns must hold in generated data."""

    @pytest.fixture(scope="class")
    def pattern_dataset(self):
        config = GeneratorConfig(n_users=900, fraud_rate=0.1, span_days=200.0)
        return LeasingPlatformSimulator(config, seed=11).generate()

    def test_time_burst(self, pattern_dataset):
        """Fraud logs concentrate near the application; normal logs spread."""
        from repro.eval.empirical import time_burst_summary

        fraud = time_burst_summary(pattern_dataset, fraud=True)
        normal = time_burst_summary(pattern_dataset, fraud=False)
        assert fraud.near_application_fraction > 2 * normal.near_application_fraction
        assert fraud.mean_std_days < normal.mean_std_days

    def test_ring_members_apply_within_window(self, pattern_dataset):
        by_ring: dict[int, list[float]] = {}
        users = pattern_dataset.user_by_id()
        for txn in pattern_dataset.transactions:
            ring = users[txn.uid].ring_id
            if ring is not None:
                by_ring.setdefault(ring, []).append(txn.created_at)
        spans = [max(ts) - min(ts) for ts in by_ring.values() if len(ts) >= 2]
        assert spans and np.median(spans) <= 4 * DAY

    def test_rings_share_deterministic_resources(self, pattern_dataset):
        users = pattern_dataset.user_by_id()
        device_users: dict[tuple[int, str], set[int]] = {}
        members_by_ring: dict[int, set[int]] = {}
        for log in pattern_dataset.logs:
            ring = users[log.uid].ring_id
            if ring is None or log.btype != BehaviorType.DEVICE_ID:
                continue
            device_users.setdefault((ring, log.value), set()).add(log.uid)
            members_by_ring.setdefault(ring, set()).add(log.uid)
        shared_rings = {
            ring for (ring, _dev), members in device_users.items() if len(members) >= 2
        }
        sizeable = {r for r, members in members_by_ring.items() if len(members) >= 4}
        # Most sizeable rings have at least one device used by 2+ members.
        assert sizeable and len(shared_rings & sizeable) / len(sizeable) > 0.5


class TestRejectedApplicants:
    def test_rejected_fraction_adds_positives(self):
        config = tiny_generator_config(
            n_users=100, rejected_applicant_fraction=1.0, fraud_rate=0.1
        )
        dataset = LeasingPlatformSimulator(config, seed=5).generate()
        labels = dataset.labels
        assert sum(labels.values()) / len(labels) > 0.4
        assert any(t.rejected_by_rules for t in dataset.transactions)
