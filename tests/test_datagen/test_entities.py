"""Entity/dataset container tests."""

from __future__ import annotations

from repro.datagen import DAY, BehaviorLog, BehaviorType, Dataset, Transaction, User


class TestTransaction:
    def test_audit_is_one_day_later(self):
        txn = Transaction(txn_id=0, uid=1, created_at=1000.0)
        assert txn.audit_at == 1000.0 + DAY


class TestDataset:
    def make(self) -> Dataset:
        dataset = Dataset(name="x")
        dataset.users = [
            User(uid=1, registered_at=0.0, is_fraud=True),
            User(uid=2, registered_at=0.0),
            User(uid=3, registered_at=0.0),  # no transaction -> unlabeled
        ]
        dataset.transactions = [
            Transaction(txn_id=0, uid=1, created_at=10.0, is_fraud=True),
            Transaction(txn_id=1, uid=2, created_at=20.0),
            Transaction(txn_id=2, uid=2, created_at=30.0),
        ]
        dataset.logs = [
            BehaviorLog(1, BehaviorType.IPV4, "ip_1", 5.0),
            BehaviorLog(2, BehaviorType.IPV4, "ip_2", 6.0),
            BehaviorLog(1, BehaviorType.GPS_100, "g_1", 7.0),
        ]
        return dataset

    def test_labels_only_for_users_with_transactions(self):
        labels = self.make().labels
        assert labels == {1: 1, 2: 0}

    def test_transactions_by_user_groups(self):
        grouped = self.make().transactions_by_user()
        assert len(grouped[2]) == 2

    def test_logs_by_user_groups(self):
        grouped = self.make().logs_by_user()
        assert len(grouped[1]) == 2
        assert len(grouped[2]) == 1

    def test_user_by_id(self):
        assert self.make().user_by_id()[1].is_fraud
