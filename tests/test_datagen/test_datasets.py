"""Dataset preset tests (Table II shapes)."""

from __future__ import annotations

from repro.datagen import dataset_statistics, make_d1, make_d2
from repro.network import BNBuilder, FAST_WINDOWS


class TestPresets:
    def test_d1_is_normal_majority(self):
        dataset = make_d1(scale=0.06)
        labels = dataset.labels
        rate = sum(labels.values()) / len(labels)
        assert rate < 0.2

    def test_d2_is_positive_majority(self):
        dataset = make_d2(scale=0.1)
        labels = dataset.labels
        rate = sum(labels.values()) / len(labels)
        assert rate > 0.7

    def test_scale_grows_population(self):
        small = make_d1(scale=0.06)
        large = make_d1(scale=0.12)
        assert len(large.users) > len(small.users)

    def test_overrides_forwarded(self):
        dataset = make_d1(scale=0.06, fraud_rate=0.3)
        labels = dataset.labels
        assert sum(labels.values()) / len(labels) > 0.2


class TestStatistics:
    def test_table2_row(self):
        dataset = make_d1(scale=0.06)
        bn = BNBuilder(windows=FAST_WINDOWS).build(dataset.logs)
        stats = dataset_statistics(dataset, bn)
        assert stats.name == "D1"
        assert stats.n_nodes == len(dataset.labels)
        assert stats.n_positive == sum(dataset.labels.values())
        assert stats.n_edges == bn.num_edges()
        assert 1 <= stats.n_types <= 8
        assert "D1" in stats.as_row()
