"""Command-line interface tests (direct main() invocation)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.scale == 0.3
        assert args.command == "stats"

    def test_evaluate_options(self):
        args = build_parser().parse_args(
            ["--scale", "0.1", "evaluate", "--methods", "LR", "--seeds", "0,1"]
        )
        assert args.scale == 0.1
        assert args.methods == "LR"


class TestCommands:
    def test_stats_command(self, capsys):
        assert main(["--scale", "0.06", "--seed", "3", "stats"]) == 0
        out = capsys.readouterr().out
        assert "# node" in out
        assert "behavior logs" in out

    def test_empirical_command(self, capsys):
        assert main(["--scale", "0.06", "--seed", "3", "empirical"]) == 0
        out = capsys.readouterr().out
        assert "near-application" in out
        assert "hop-1/2 fraud ratio" in out

    def test_evaluate_command(self, capsys):
        code = main(
            ["--scale", "0.06", "--seed", "3", "evaluate", "--methods", "LR,GBDT"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "LR" in out and "GBDT" in out and "AUC" in out

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            main(["--scale", "0.06", "evaluate", "--methods", "NOPE"])
