"""E12 — Fig. 9: influence distributions on a fraud-ring subgraph.

The paper visualizes the influence distribution (Definition 1) of the nodes
in a detected ring's subgraph as a heat map: the block of fraud nodes shows
larger mutual influence than their influence exchange with normal nodes —
HAG captures how fraudsters drive each other's embeddings.
"""

from __future__ import annotations

import numpy as np

from repro.core import HAG, TrainConfig, prepare_aggregators, train_node_classifier
from repro.core.influence import influence_distribution
from repro.network import computation_subgraph

from _shared import SCALE, d1_experiment, emit, emit_header, once


def run_case_study():
    data = d1_experiment()
    labels_map = data.dataset.labels
    model = HAG(
        data.features.shape[1],
        n_types=len(data.edge_types),
        rng=np.random.default_rng(0),
        hidden=(16, 8),
        att_dim=8,
        cfo_att_dim=8,
        cfo_out_dim=4,
        mlp_hidden=(8,),
    )
    aggregators = prepare_aggregators([data.adjacencies[t] for t in data.edge_types])
    train_node_classifier(
        model,
        lambda x: model.forward(x, aggregators),
        data.features,
        data.labels,
        data.train_idx,
        data.val_idx,
        TrainConfig(epochs=30, lr=5e-3, patience=10, pos_weight=data.pos_weight() ** 2),
    )

    # Pick a ring member and sample a modest case-study subgraph around it.
    rings: dict[int, list[int]] = {}
    for user in data.dataset.users:
        if user.ring_id is not None and user.is_fraud:
            rings.setdefault(user.ring_id, []).append(user.uid)
    ring_id, members = max(rings.items(), key=lambda kv: len(kv[1]))
    subgraph = computation_subgraph(
        data.bn, members[0], hops=2, fanout=6, allowed=set(data.nodes),
        edge_types=data.edge_types,
    )
    index = {uid: i for i, uid in enumerate(data.nodes)}
    features = data.features[[index[v] for v in subgraph.nodes]]
    sub_aggs = prepare_aggregators([subgraph.adjacency[t] for t in data.edge_types])
    forward = lambda x: model.embeddings(x, sub_aggs)

    node_labels = np.array([labels_map[v] for v in subgraph.nodes])
    fraud_positions = np.flatnonzero(node_labels == 1)[:8]
    normal_positions = np.flatnonzero(node_labels == 0)[:8]
    # Columns of the Fig. 9b heat map: one influence distribution per node.
    columns = {}
    for position in list(fraud_positions) + list(normal_positions):
        columns[int(position)] = influence_distribution(
            forward, features, node=int(position)
        )
    return subgraph, node_labels, fraud_positions, normal_positions, columns


def test_fig9_influence_case_study(benchmark):
    subgraph, node_labels, fraud_pos, normal_pos, columns = once(
        benchmark, run_case_study
    )
    n_fraud = int(node_labels.sum())
    emit_header(
        f"Fig. 9 — influence case study: subgraph of {subgraph.num_nodes} nodes,"
        f" {n_fraud} fraudulent (scale={SCALE})"
    )
    fraud_set = set(int(i) for i in fraud_pos)
    fraud_block, cross_block = [], []
    for position, dist in columns.items():
        for j, share in enumerate(dist):
            if j == position:
                continue
            if position in fraud_set and j in fraud_set:
                fraud_block.append(share)
            elif position in fraud_set:
                cross_block.append(share)
    emit(
        f"mean pairwise influence: fraud->fraud {np.mean(fraud_block):.4f}"
        f"  vs fraud->normal {np.mean(cross_block):.4f}"
    )
    self_share = np.mean([columns[int(i)][int(i)] for i in fraud_pos])
    emit(f"mean self-influence of fraud nodes: {self_share:.3f}")
    emit()
    emit("Paper shape: values inside the fraud block of the heat map exceed")
    emit("those outside — fraud nodes influence each other more.")

    # Shape: the fraud block is hotter than the fraud-normal block.
    assert len(fraud_block) > 0 and len(cross_block) > 0
    assert np.mean(fraud_block) > np.mean(cross_block)
