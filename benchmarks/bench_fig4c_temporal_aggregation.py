"""E6 — Fig. 4c: temporal aggregation of same-behavior co-occurrences.

The paper's violin plot shows, per behavior type, the pairwise time
intervals between different users' logs sharing the same ``(type, value)``:
fraudster pairs concentrate in a 0–3 day window, normal pairs spread
smoothly.  The bench prints the quartiles of both distributions per type.
"""

from __future__ import annotations

import numpy as np

from repro.datagen import EDGE_TYPES

from repro.eval.empirical import temporal_aggregation_intervals

from _shared import SCALE, d1_dataset, emit, emit_header, once

#: the paper plots 7 behavior types; we use the seven with co-occurrence
#: volume in the synthetic data.
TYPES = EDGE_TYPES[:7]


def run_intervals():
    dataset = d1_dataset()
    out = {}
    for btype in TYPES:
        out[btype] = (
            temporal_aggregation_intervals(dataset, btype, fraud_pairs=True),
            temporal_aggregation_intervals(dataset, btype, fraud_pairs=False),
        )
    return out


def quartiles(values: np.ndarray) -> str:
    if len(values) < 4:
        return f"(n={len(values)})"
    q1, q2, q3 = np.percentile(values, [25, 50, 75])
    return f"n={len(values):<7} q1={q1:6.2f}  median={q2:6.2f}  q3={q3:6.2f}"


def test_fig4c_temporal_aggregation(benchmark):
    intervals = once(benchmark, run_intervals)
    emit_header(f"Fig. 4c — temporal aggregation, |Δt| in days (scale={SCALE})")
    for btype, (fraud, normal) in intervals.items():
        emit(f"{btype.value}:")
        emit(f"  fraud pairs   {quartiles(fraud)}")
        emit(f"  normal pairs  {quartiles(normal)}")
    emit()
    emit("Paper shape: fraud intervals burst at 0-3 days then decay; normal")
    emit("intervals decrease smoothly over much longer horizons.")

    # Shape: pooled over types, the median fraud interval is much shorter
    # than the median normal interval, and most fraud mass sits within the
    # 0-3 day window the paper reports.
    fraud_all = np.concatenate([f for f, _n in intervals.values() if len(f)])
    normal_all = np.concatenate([n for _f, n in intervals.values() if len(n)])
    assert np.median(fraud_all) < 0.3 * np.median(normal_all)
    # The majority of fraud-pair mass sits inside the paper's 0-3 day window
    # (the remainder is cross-wave reuse of the shared farm infrastructure),
    # while normal pairs put almost no mass there.
    assert np.mean(fraud_all <= 3.0) > 0.5
    assert np.mean(normal_all <= 3.0) < 0.2
