"""Resilience scenario runner: canned outage scripts against the live system.

Replays three production-shaped outage scripts against a deployed Turbo
stack and asserts the recovery invariants of ``docs/RESILIENCE.md``:

* ``primary_db_outage`` — the primary MySQL node dies mid-run behind a
  :class:`~repro.system.storage.ReplicatedStore`; reads fail over to the
  replica (full-fidelity, slower), then the replica dies too and traffic
  degrades to the scorecard until the operator recovers;
* ``cache_flap`` — the Redis stand-in throws transient errors at a low
  rate; most traffic is absorbed by retries on the full graph path, the
  unlucky tail degrades;
* ``bn_server_brownout`` — a latency spike on the BN server blows the
  per-request budget; the circuit breaker opens and restores fast
  (degraded) serving until the spike clears;
* ``shard_brownout`` — one BN shard of a sharded deployment crashes;
  sampling continues on the surviving frontier and affected requests are
  served by the real HAG model tagged ``"partial"`` (not the fallback
  stack), until the operator recovers the shard.

Every scenario runs three phases — healthy baseline, chaos, recovery —
and checks, per scenario:

* zero uncaught exceptions out of ``Turbo.predict``;
* every request (healthy, chaotic or degraded) completed with a closed
  root span (``repro.obs.assert_all_traced``);
* a nonzero degraded-request count during chaos;
* every degraded probability matches ``FallbackStack.decide`` bit-for-bit;
* post-recovery traffic is served on the full path, and re-scoring the
  baseline transactions reproduces the fault-free probabilities exactly.

Run it either way::

    pytest -m slow benchmarks/bench_resilience.py           # as a slow test
    PYTHONPATH=src python benchmarks/bench_resilience.py    # as a script

Both modes fail (nonzero exit / test failure) when any invariant breaks.
Results land in ``BENCH_resilience.json`` in the repository root.  Scale
knobs: ``REPRO_BENCH_RESIL_SCALE`` (dataset scale, default 0.3) and
``REPRO_BENCH_RESIL_REQUESTS`` (requests per scenario, default 60).
"""

from __future__ import annotations

import functools
import json
import os
import sys
from collections import Counter
from pathlib import Path

import numpy as np
import pytest

from repro.datagen import make_d1
from repro.eval.runner import prepare_experiment
from repro.network import FAST_WINDOWS
from repro.obs import assert_all_traced
from repro.system import TurboConfig, deploy_turbo

from _shared import Gate, check_gates, emit, emit_header

SCALE = float(os.environ.get("REPRO_BENCH_RESIL_SCALE", "0.3"))
REQUESTS = int(os.environ.get("REPRO_BENCH_RESIL_REQUESTS", "60"))
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"

#: latency SLOs (ms): full graph path / degraded fallback path.
FULL_SLO_MS = 5000.0
DEGRADED_SLO_MS = 1000.0
#: transient error rate for the cache-flap script.  The rate is per cache
#: *operation* and a request performs dozens (per-node feature reads), so
#: even 1% yields a meaningful per-request failure rate; retries absorb
#: most of it and the unlucky tail degrades.
FLAP_RATE = 0.01
#: injected BN-server latency for the brownout script — far past the
#: 15 s request budget, so every non-short-circuited request blows it.
BROWNOUT_EXTRA_S = 30.0


@functools.lru_cache(maxsize=1)
def _dataset():
    return make_d1(scale=SCALE, seed=7)


@functools.lru_cache(maxsize=1)
def _experiment():
    return prepare_experiment(
        _dataset(), windows=FAST_WINDOWS, seed=0, include_stats=True
    )


def _deploy(replicated: bool, shards: int = 1):
    """A fresh system per scenario (shared experiment, fresh storage/model)."""
    turbo, data = deploy_turbo(
        _dataset(),
        TurboConfig(
            windows=FAST_WINDOWS,
            train_epochs=10,
            hidden=(16, 8),
            seed=0,
            replicated=replicated,
            shards=shards,
        ),
        data=_experiment(),
    )
    turbo.monitor.set_slo(
        FULL_SLO_MS, degraded_target_ms=DEGRADED_SLO_MS, error_budget=0.05
    )
    return turbo, data


def _request_stream(turbo, count: int):
    """A deterministic stream of latest-transaction requests."""
    latest = {
        t.uid: t for t in turbo.feature_server.feature_manager.latest_transactions()
    }
    rng = np.random.default_rng(0)
    uids = rng.choice(sorted(latest), size=min(count, len(latest)), replace=False)
    return [latest[int(uid)] for uid in uids]


def _replay(turbo, txns):
    """Serve ``txns``; ``Turbo.predict`` must never raise — collect if it does."""
    responses, uncaught = [], []
    for txn in txns:
        try:
            responses.append(turbo.handle_request(txn, now=txn.audit_at))
        except Exception as exc:  # noqa: BLE001 - the invariant under test
            uncaught.append(f"{txn.txn_id}: {type(exc).__name__}: {exc}")
    return responses, uncaught


def _fallback_bitexact(turbo, responses, txn_by_id) -> bool:
    """Every degraded response must equal the fallback decision bit-for-bit.

    ``"partial"`` responses are excluded: a shard-loss request is still
    served by the real HAG model over the surviving frontier, so its
    probability comes from the model, not the fallback stack.
    """
    for response in responses:
        if response.degradation in ("full", "partial"):
            continue
        decision = turbo.fallbacks.decide(txn_by_id[response.txn_id])
        if (
            response.probability != decision.probability
            or response.degradation != decision.level
            or response.blocked != decision.blocked
        ):
            return False
    return True


def _p99_ms(responses) -> float:
    if not responses:
        return 0.0
    return float(np.percentile([1000.0 * r.breakdown.total for r in responses], 99))


def _counts(responses) -> dict:
    return {
        "by_level": dict(Counter(r.degradation for r in responses)),
        "by_reason": dict(
            Counter(r.degradation_reason for r in responses if r.degraded)
        ),
        "retries": int(sum(r.retries for r in responses)),
    }


def _finish(name, turbo, txn_by_id, baseline, recovered, phases, uncaught, extra):
    """Common invariant evaluation + result row for one scenario."""
    chaos = [r for label, rs in phases for r in rs if label.startswith("chaos")]
    post = next(rs for label, rs in phases if label == "post_recovery")
    all_responses = [r for _label, rs in phases for r in rs]
    try:
        assert_all_traced(all_responses)
        all_traced = True
    except AssertionError:
        all_traced = False
    invariants = {
        "no_uncaught_exceptions": not uncaught,
        "all_requests_traced": all_traced,
        "degraded_nonzero": turbo.monitor.degraded_requests > 0,
        "fallback_bitexact": _fallback_bitexact(turbo, all_responses, txn_by_id),
        "post_recovery_full_path": bool(post)
        and all(r.degradation == "full" for r in post),
        "recovery_bitexact": recovered == baseline,
    }
    invariants.update(extra)
    result = {
        "scenario": name,
        "requests": turbo.monitor.requests,
        "phases": {
            label: dict(_counts(rs), n=len(rs), p99_ms=_p99_ms(rs))
            for label, rs in phases
        },
        "monitor": turbo.monitor.slo_summary(),
        "uncaught": uncaught,
        "invariants": invariants,
        "ok": all(invariants.values()),
    }
    status = "ok" if result["ok"] else "FAIL"
    emit(
        f"{name:22s} {status:4s} degraded={turbo.monitor.degraded_requests}"
        f" retries={turbo.monitor.retries} failovers={turbo.monitor.failovers}"
        f" chaos_p99={_p99_ms(chaos):.1f}ms"
        f" availability={100 * turbo.monitor.availability:.1f}%"
    )
    for check, passed in invariants.items():
        if not passed:
            emit(f"    invariant FAILED: {check}")
    return result


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def scenario_primary_db_outage() -> dict:
    """Primary DB dies (replica serves), then the replica dies too."""
    turbo, _data = _deploy(replicated=True)
    store = turbo.bn_server.database
    txns = _request_stream(turbo, REQUESTS)
    txn_by_id = {t.txn_id: t for t in txns}
    quarter = len(txns) // 4
    pre, failover, outage, post = (
        txns[:quarter],
        txns[quarter : 2 * quarter],
        txns[2 * quarter : 3 * quarter],
        txns[3 * quarter :],
    )
    uncaught: list[str] = []

    pre_resp, err = _replay(turbo, pre)
    uncaught += err
    baseline = {r.txn_id: r.probability for r in pre_resp}

    # Script step 1: primary crashes; the cache-invalidation storm that
    # accompanies a failover in production empties the cache, so reads
    # actually exercise the replica path.
    store.primary.crash()
    turbo.bn_server.cache.clear()
    failover_resp, err = _replay(turbo, failover)
    uncaught += err
    turbo.monitor.record_failover(store.failovers)

    # Script step 2: the replica dies too — total storage outage.
    store.replica.crash()
    turbo.bn_server.cache.clear()
    outage_resp, err = _replay(turbo, outage)
    uncaught += err

    # Operator recovery.
    turbo.recover()
    post_resp, err = _replay(turbo, post)
    uncaught += err
    recheck, err = _replay(turbo, pre)
    uncaught += err
    recovered = {r.txn_id: r.probability for r in recheck}

    return _finish(
        "primary_db_outage",
        turbo,
        txn_by_id,
        baseline,
        recovered,
        [
            ("pre", pre_resp),
            ("chaos_failover", failover_resp),
            ("chaos_outage", outage_resp),
            ("post_recovery", post_resp),
        ],
        uncaught,
        extra={
            # The replica kept the service at full fidelity...
            "failover_served_full": bool(failover_resp)
            and all(r.degradation == "full" for r in failover_resp)
            and store.failovers > 0,
            # ...and the total outage degraded but met the degraded SLO.
            "outage_degraded_to_scorecard": bool(outage_resp)
            and all(r.degradation == "scorecard" for r in outage_resp),
            "outage_p99_under_slo": _p99_ms(outage_resp) < DEGRADED_SLO_MS,
        },
    )


def scenario_cache_flap() -> dict:
    """Low-rate transient cache errors: retries absorb most of the flap."""
    turbo, _data = _deploy(replicated=False)
    txns = _request_stream(turbo, REQUESTS)
    txn_by_id = {t.txn_id: t for t in txns}
    third = len(txns) // 3
    pre, chaos, post = txns[:third], txns[third : 2 * third], txns[2 * third :]
    uncaught: list[str] = []

    pre_resp, err = _replay(turbo, pre)
    uncaught += err
    baseline = {r.txn_id: r.probability for r in pre_resp}

    turbo.faults.add_transient("cache", rate=FLAP_RATE)
    chaos_resp, err = _replay(turbo, chaos)
    uncaught += err

    turbo.faults.clear_plans("cache")
    turbo.recover()
    post_resp, err = _replay(turbo, post)
    uncaught += err
    recheck, err = _replay(turbo, pre)
    uncaught += err
    recovered = {r.txn_id: r.probability for r in recheck}

    return _finish(
        "cache_flap",
        turbo,
        txn_by_id,
        baseline,
        recovered,
        [("pre", pre_resp), ("chaos_flap", chaos_resp), ("post_recovery", post_resp)],
        uncaught,
        extra={
            # The flap is partially absorbed: retried-but-full responses exist.
            "retries_absorbed_some": any(
                r.degradation == "full" and r.retries > 0 for r in chaos_resp
            ),
            "chaos_p99_under_slo": _p99_ms(chaos_resp) < DEGRADED_SLO_MS,
        },
    )


def scenario_bn_server_brownout() -> dict:
    """A BN-server latency spike past the request budget: the breaker opens."""
    turbo, _data = _deploy(replicated=False)
    txns = _request_stream(turbo, REQUESTS)
    txn_by_id = {t.txn_id: t for t in txns}
    third = len(txns) // 3
    pre, chaos, post = txns[:third], txns[third : 2 * third], txns[2 * third :]
    uncaught: list[str] = []

    pre_resp, err = _replay(turbo, pre)
    uncaught += err
    baseline = {r.txn_id: r.probability for r in pre_resp}

    turbo.faults.add_latency("bn_server", extra=BROWNOUT_EXTRA_S)
    chaos_resp, err = _replay(turbo, chaos)
    uncaught += err

    turbo.faults.clear_plans("bn_server")
    turbo.recover()
    post_resp, err = _replay(turbo, post)
    uncaught += err
    recheck, err = _replay(turbo, pre)
    uncaught += err
    recovered = {r.txn_id: r.probability for r in recheck}

    # Requests that probed the browned-out server pay the (charged) spike;
    # the breaker's job is to keep everyone else fast.  Measure both tails.
    short_circuited = [
        r for r in chaos_resp if r.degradation_reason == "circuit_open"
    ]
    return _finish(
        "bn_server_brownout",
        turbo,
        txn_by_id,
        baseline,
        recovered,
        [
            ("pre", pre_resp),
            ("chaos_brownout", chaos_resp),
            ("post_recovery", post_resp),
        ],
        uncaught,
        extra={
            "budget_enforced": any(
                r.degradation_reason == "over_budget" for r in chaos_resp
            ),
            "breaker_short_circuits": turbo.breaker.short_circuited > 0
            and bool(short_circuited),
            # Steady-state degraded serving (behind the open breaker) is fast.
            "short_circuit_p99_under_slo": _p99_ms(short_circuited)
            < DEGRADED_SLO_MS,
        },
    )


def scenario_shard_brownout() -> dict:
    """One BN shard dies: partial serving on the surviving frontier."""
    turbo, _data = _deploy(replicated=False, shards=2)
    txns = _request_stream(turbo, REQUESTS)
    txn_by_id = {t.txn_id: t for t in txns}
    third = len(txns) // 3
    pre, chaos, post = txns[:third], txns[third : 2 * third], txns[2 * third :]
    uncaught: list[str] = []

    pre_resp, err = _replay(turbo, pre)
    uncaught += err
    baseline = {r.txn_id: r.probability for r in pre_resp}

    turbo.faults.add_crash("bn_shard1", 0.0, 1e12)
    chaos_resp, err = _replay(turbo, chaos)
    uncaught += err

    turbo.faults.clear_plans("bn_shard1")
    turbo.recover()  # also resets the per-shard breakers
    post_resp, err = _replay(turbo, post)
    uncaught += err
    recheck, err = _replay(turbo, pre)
    uncaught += err
    recovered = {r.txn_id: r.probability for r in recheck}

    partial = [r for r in chaos_resp if r.degradation == "partial"]
    return _finish(
        "shard_brownout",
        turbo,
        txn_by_id,
        baseline,
        recovered,
        [
            ("pre", pre_resp),
            ("chaos_shard_down", chaos_resp),
            ("post_recovery", post_resp),
        ],
        uncaught,
        extra={
            # Losing a shard surfaces partial degradation (not an outage)...
            "partial_degradation_surfaced": bool(partial)
            and all(r.degradation_reason == "shard_down" for r in partial),
            # ...and partial requests still ride the graph path: the HAG
            # probability is real, never the scorecard fallback.
            "no_fallback_during_brownout": all(
                r.degradation in ("full", "partial") for r in chaos_resp
            ),
            "chaos_p99_under_slo": _p99_ms(chaos_resp) < FULL_SLO_MS,
        },
    )


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_harness(result_path=RESULT_PATH) -> dict:
    emit_header(
        f"Resilience scenario runner — scale {SCALE}, {REQUESTS} requests/scenario"
    )
    scenarios = [
        scenario_primary_db_outage(),
        scenario_cache_flap(),
        scenario_bn_server_brownout(),
        scenario_shard_brownout(),
    ]
    result = {
        "scale": SCALE,
        "requests_per_scenario": REQUESTS,
        "full_slo_ms": FULL_SLO_MS,
        "degraded_slo_ms": DEGRADED_SLO_MS,
        "scenarios": {row["scenario"]: row for row in scenarios},
        "all_ok": all(row["ok"] for row in scenarios),
    }
    # Scenario invariants expressed through the shared gate contract: an
    # all-invariants-hold scenario scores 1.0 against a 1.0 floor, so this
    # JSON carries the same gates/gates_met fields as every other bench
    # (pinned repo-wide by tests/test_benchmarks/test_bench_json_schema.py).
    gates = [
        Gate(
            name=f"{row['scenario']}_invariants",
            value=1.0 if row["ok"] else 0.0,
            minimum=1.0,
        )
        for row in scenarios
    ]
    check_gates(gates, result, result_path)
    return result


@pytest.mark.slow
@pytest.mark.resilience
def test_resilience_scenarios():
    result = run_harness()
    failed = {
        name: [k for k, ok in row["invariants"].items() if not ok]
        for name, row in result["scenarios"].items()
        if not row["ok"]
    }
    assert result["gates_met"], f"resilience invariants failed: {failed}"


if __name__ == "__main__":
    outcome = run_harness()
    if not outcome["gates_met"]:
        emit("FAIL: resilience invariants violated")
        sys.exit(1)
    emit("OK")
