"""E9 — Fig. 7: AUC drop when masking each edge type.

The paper masks one edge type at a time and reports the AUC drop: Device ID
costs the most (-6.24 %), and the deterministic types (Device ID, IMEI,
IMSI) generally contribute more than the probabilistic ones (IP, GPS,
GPS_Dev, Wi-Fi MAC, workplace).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import hag_method
from repro.datagen import DETERMINISTIC_TYPES, PROBABILISTIC_TYPES
from repro.eval import run_method

from _shared import SCALE, SEEDS, d1_experiment, emit, emit_header, once


def run_ablation():
    data = d1_experiment()
    seed = SEEDS[0]
    full_report, _ = run_method(hag_method(), data, seed=seed)
    drops = {}
    for btype in data.edge_types:
        report, _ = run_method(hag_method(masked_types=(btype,)), data, seed=seed)
        drops[btype] = full_report.auc - report.auc
    return full_report.auc, drops


def test_fig7_edge_type_ablation(benchmark):
    full_auc, drops = once(benchmark, run_ablation)
    emit_header(f"Fig. 7 — AUC drop per masked edge type (scale={SCALE})")
    emit(f"full HAG AUC: {100 * full_auc:.2f}%")
    for btype, drop in sorted(drops.items(), key=lambda kv: -kv[1]):
        kind = "deterministic" if btype in DETERMINISTIC_TYPES else "probabilistic"
        emit(f"  mask {btype.value:<14} AUC drop {100 * drop:+6.2f}%  ({kind})")
    emit()
    emit("Paper shape: Device ID drops the most (-6.24%); deterministic types")
    emit("contribute more than probabilistic ones on average.")

    det = [drops[t] for t in DETERMINISTIC_TYPES if t in drops]
    prob = [drops[t] for t in PROBABILISTIC_TYPES if t in drops]
    # Shape 1: deterministic relations matter more on average.
    assert np.mean(det) > np.mean(prob), (np.mean(det), np.mean(prob))
    # Shape 2: at least one deterministic type has a clearly positive drop.
    assert max(det) > 0.005
    # Shape 3: the largest drop comes from a deterministic type.
    worst = max(drops, key=drops.get)
    assert worst in DETERMINISTIC_TYPES, worst
