"""E2 — Table III: performance comparison of all methods on D1.

Paper (percentages): LR 89.6/41.5/56.7/46.4/69.4 — SVM 100/33.4/50.3/38.8/68.6
— GBDT 83.3/65.5/73.3/68.4/77.9 — NN 79.0/54.6/64.5/58.1/72.4 — GCN
74.6/69.0/71.7/70.1/77.1 — G-SAGE 79.0/72.8/75.8/74.0/81.8 — GAT
79.2/69.1/73.8/70.9/79.4 — BLP 84.6/67.8/75.3/70.6/78.6 — DTX1
36.9/47.2/41.4/44.7/37.3 — DTX2 83.8/68.0/75.1/70.7/78.9 — HAG
81.3/74.8/77.9/76.0/83.1.

Shape to preserve: handcrafted-feature methods trade recall for precision
and trail on AUC; graph-based methods lift recall; HAG sits at the top of
the table; DTX1 (embeddings without the original features) is the weakest.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import METHODS
from repro.eval.reporting import format_table

from _shared import SCALE, SEEDS, emit, emit_header, once, repeat_over_splits

METHOD_ORDER = [
    "LR",
    "SVM",
    "GBDT",
    "DNN",
    "GCN",
    "GraphSAGE",
    "GAT",
    "BLP",
    "DTX1",
    "DTX2",
    "HAG",
]

FEATURE_METHODS = ("LR", "SVM", "GBDT", "DNN")
GRAPH_METHODS = ("GCN", "GraphSAGE", "GAT", "BLP", "DTX2", "HAG")


def run_table3():
    return {
        name: repeat_over_splits(name, METHODS[name], seeds=SEEDS)
        for name in METHOD_ORDER
    }


def test_table3_d1_comparison(benchmark):
    results = once(benchmark, run_table3)
    rows = {name: result.row() for name, result in results.items()}
    emit_header(
        f"Table III — performance comparison on D1 (%)  "
        f"(synthetic scale={SCALE}, seeds={SEEDS})"
    )
    emit(
        format_table(
            rows, columns=["Precision", "Recall", "F1", "F2", "AUC", "Variance"]
        )
    )
    emit()
    emit("Paper shape: graph-based methods dominate handcrafted features;")
    emit("HAG leads the table (paper: HAG AUC 83.1 vs best baseline 81.8).")

    auc = {name: results[name].report.auc for name in METHOD_ORDER}
    f1 = {name: results[name].report.f1 for name in METHOD_ORDER}
    recall = {name: results[name].report.recall for name in METHOD_ORDER}

    # Shape 1: every method beats chance on AUC.
    assert all(a > 0.5 for a in auc.values()), auc
    # Shape 2: graph-based methods out-rank the handcrafted-feature family
    # on recall and AUC (the paper's headline contrast).
    assert np.mean([recall[m] for m in GRAPH_METHODS]) > np.mean(
        [recall[m] for m in FEATURE_METHODS]
    )
    assert max(auc[m] for m in GRAPH_METHODS) > max(
        auc[m] for m in FEATURE_METHODS
    )
    # Shape 3: HAG tops the *online-capable* field.  The paper's winning
    # margin is 1.4 AUC points; at laptop scale the split-to-split standard
    # error is of the same order, so HAG must stay within 3 points of the
    # best GNN and clearly above the feature-method family.  BLP and DTX are
    # offline/transductive (their bipartite graph memorizes the evaluation
    # users' entities), so — unlike in the paper's production-constrained
    # comparison — they are excluded from this particular check; see
    # EXPERIMENTS.md for the discussion.
    best_gnn = max(auc[m] for m in ("GCN", "GraphSAGE", "GAT"))
    assert auc["HAG"] >= best_gnn - 0.03, (auc["HAG"], best_gnn)
    assert auc["HAG"] > max(auc[m] for m in FEATURE_METHODS)
    # Shape 4: DTX1 (no original features) trails DTX2, as in the paper.
    assert auc["DTX1"] < auc["DTX2"]
