"""Extension — concept drift: hard-coded defenses decay, Turbo adapts.

The introduction motivates Turbo with two weaknesses of the deployed
defenses: block-lists need to observe a value before they can block it, and
scorecards "suffer from the concept drift problem as fraud tactics evolve".
This bench quantifies both: detectors are fit on a training period, then
evaluated on periods where the grey industry rotates its hardware and
upgrades its identity packaging.  HAG is retrained each period from the
period's own early window (the daily-retraining regime of Section II-C),
while the block-list and scorecard stay frozen — as they effectively do in
production.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import Blocklist, default_scorecard, hag_method
from repro.datagen import GeneratorConfig, generate_drift_scenario
from repro.eval import prepare_experiment, run_method
from repro.eval.metrics import roc_auc_score

from _shared import WINDOWS, emit, emit_header, once


def scenario_config() -> GeneratorConfig:
    return GeneratorConfig(n_users=1200, fraud_rate=0.1)


def blocklist_auc(blocklist: Blocklist, dataset) -> float:
    labels = dataset.labels
    uids = sorted(labels)
    scores = blocklist.predict_proba(dataset.logs, uids)
    y = np.asarray([labels[u] for u in uids])
    return roc_auc_score(y, scores)


def scorecard_auc(dataset) -> float:
    labels = dataset.labels
    users = dataset.user_by_id()
    latest: dict[int, object] = {}
    for txn in dataset.transactions:
        current = latest.get(txn.uid)
        if current is None or txn.created_at > current.created_at:
            latest[txn.uid] = txn
    card = default_scorecard()
    uids = sorted(labels)
    scores = np.asarray([card.score(users[u], latest[u]) for u in uids])
    y = np.asarray([labels[u] for u in uids])
    return roc_auc_score(y, scores)


def run_drift():
    scenario = generate_drift_scenario(scenario_config(), n_periods=2, seed=5)

    # Frozen defenses: block-list fit on the training period's confirmed
    # fraudsters; scorecard rules are static by construction.
    train_labels = scenario.train.labels
    fraud_uids = {u for u, l in train_labels.items() if l}
    blocklist = Blocklist().fit(scenario.train.logs, fraud_uids)

    rows = {}
    rows["train period"] = {
        "drift": 0.0,
        "blocklist": blocklist_auc(blocklist, scenario.train),
        "scorecard": scorecard_auc(scenario.train),
        "hag": float("nan"),
    }
    for period in scenario.periods:
        data = prepare_experiment(period.dataset, windows=WINDOWS, seed=0)
        report, _ = run_method(hag_method(), data, seed=0)
        rows[f"period {period.index}"] = {
            "drift": period.drift_level,
            "blocklist": blocklist_auc(blocklist, period.dataset),
            "scorecard": scorecard_auc(period.dataset),
            "hag": report.auc,
        }
    return rows


def test_extension_concept_drift(benchmark):
    rows = once(benchmark, run_drift)
    emit_header("Extension — concept drift: frozen rules vs retrained Turbo")
    emit(f"{'period':<14}{'drift':>7}{'blocklist AUC':>15}{'scorecard AUC':>15}{'HAG AUC':>10}")
    for name, row in rows.items():
        hag = f"{row['hag']:.3f}" if np.isfinite(row["hag"]) else "   -"
        emit(
            f"{name:<14}{row['drift']:>7.2f}{row['blocklist']:>15.3f}"
            f"{row['scorecard']:>15.3f}{hag:>10}"
        )
    emit()
    emit("Shape: the block-list collapses to chance once the crews rotate")
    emit("hardware; the scorecard decays as identity packaging improves;")
    emit("the retrained behavior-graph model keeps working.")

    periods = [row for name, row in rows.items() if name.startswith("period")]
    # Shape 1: the frozen block-list is useless on rotated infrastructure.
    assert all(p["blocklist"] < 0.6 for p in periods)
    assert rows["train period"]["blocklist"] > 0.8
    # Shape 2: the scorecard decays as drift grows.
    assert periods[-1]["scorecard"] < rows["train period"]["scorecard"]
    # Shape 3: the retrained graph model stays clearly ahead of both frozen
    # defenses on the drifted periods.
    for p in periods:
        assert p["hag"] > p["blocklist"] + 0.1
        assert p["hag"] > p["scorecard"]
