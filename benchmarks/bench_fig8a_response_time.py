"""E10 — Fig. 8a: per-module response time of the online system.

The paper serves 1 000 applications and plots the response time of the BN
server (subgraph sampling, avg 87 ms), the feature management module
(~500 ms), and the prediction server (avg 230 ms); the total stays under a
second — suitable for real-time deployment.

Since PR 3 the run is also an observability gate: every request must
complete with a closed root span, and the latency table regenerated from
the exported spans (``BENCH_fig8a_trace.jsonl``) must equal the
``LatencyBreakdown``-derived table bit-for-bit.

Since the batched-serving PR the same request stream is replayed through
``Turbo.predict_batch`` in micro-batches of :data:`BATCH_SIZE` and the table
gains a batched-mode block: the responses must be bit-for-bit equal to the
sequential ones, every batched request must reconcile its stage spans with
its breakdown, and the batched charged totals must beat the sequential ones
(the coalescing win on the deployment's latency economics).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.eval.reporting import format_percentiles
from repro.obs import (
    assert_all_traced,
    latency_table_from_spans,
    load_spans_jsonl,
    rebuild_trees,
    write_spans_jsonl,
)
from repro.system import PredictRequest, TurboConfig, deploy_turbo

from _shared import SCALE, WINDOWS, d1_dataset, d1_experiment, emit, emit_header, once

N_REQUESTS = 300
BATCH_SIZE = 32
TRACE_PATH = Path(__file__).resolve().parent.parent / "BENCH_fig8a_trace.jsonl"


def run_requests():
    data = d1_experiment()
    turbo, _ = deploy_turbo(
        data.dataset,
        TurboConfig(windows=WINDOWS, train_epochs=30, hidden=(32, 16), seed=0),
        data=None,  # the deployed system uses X_s, so it builds its own bundle
    )
    latest = {t.uid: t for t in turbo.feature_server.feature_manager.latest_transactions()}
    rng = np.random.default_rng(0)
    uids = rng.choice(sorted(latest), size=min(N_REQUESTS, len(latest)), replace=False)
    requests = [
        PredictRequest(txn=latest[int(uid)], now=latest[int(uid)].audit_at)
        for uid in uids
    ]
    scalar = [turbo.predict(r) for r in requests]
    batched = []
    for k in range(0, len(requests), BATCH_SIZE):
        batched.extend(turbo.predict_batch(requests[k : k + BATCH_SIZE]))
    return scalar, batched


def test_fig8a_response_time(benchmark):
    responses, batched = once(benchmark, run_requests)

    # Observability gate 1: no request may complete without a closed trace.
    assert_all_traced(responses)

    # Observability gate 2: the latency table regenerated from exported
    # spans must equal the breakdown-derived table bit-for-bit.
    n_spans = write_spans_jsonl([r.span for r in responses], TRACE_PATH)
    trees = rebuild_trees(load_spans_jsonl(TRACE_PATH))
    span_table = latency_table_from_spans(trees)
    breakdown_table = [
        (r.breakdown.sampling, r.breakdown.features, r.breakdown.prediction,
         r.breakdown.total)
        for r in responses
    ]
    assert len(span_table) == len(breakdown_table)
    assert span_table == breakdown_table, (
        "span-derived latency table diverges from the LatencyBreakdown table"
    )
    emit(f"exported {n_spans} spans to {TRACE_PATH.name}; table bit-exact")

    warm = responses[len(responses) // 5 :]  # skip cache warm-up
    sampling = [1000 * r.breakdown.sampling for r in warm]
    features = [1000 * r.breakdown.features for r in warm]
    prediction = [1000 * r.breakdown.prediction for r in warm]
    total = [1000 * r.breakdown.total for r in warm]
    emit_header(
        f"Fig. 8a — online response time over {len(warm)} warm requests (scale={SCALE})"
    )
    emit("  " + format_percentiles("BN server (sampling)", sampling))
    emit("  " + format_percentiles("feature management  ", features))
    emit("  " + format_percentiles("prediction server   ", prediction))
    emit("  " + format_percentiles("total               ", total))
    emit()
    emit("Paper: sampling avg 87 ms, features ~500 ms, prediction avg 230 ms,")
    emit("total < 1 s.")

    # Shape 1: feature preparation dominates, as in the deployment.
    assert np.mean(features) > np.mean(sampling)
    assert np.mean(features) > np.mean(prediction)
    # Shape 2: the warm-path average stays real-time (same order as the
    # paper's 0.8 s; we allow <2 s at synthetic subgraph sizes).
    assert np.mean(total) < 2000.0
    # Shape 3: sampling is the cheapest module.
    assert np.mean(sampling) < np.mean(prediction) * 2

    # ---- batched mode: the same stream through predict_batch -------------
    # Gate 1: micro-batching must not change a single answer.
    assert len(batched) == len(responses)
    for b, s in zip(batched, responses):
        assert b.probability == s.probability, "batched probability diverged"
        assert b.blocked == s.blocked, "batched decision diverged"
        assert b.degradation == s.degradation, "batched degradation diverged"
    # Gate 2: every batched request closes a traced root whose stage spans
    # reconcile with its LatencyBreakdown bit-for-bit.
    assert_all_traced(batched)
    for r in batched:
        by_name = {child.name: child for child in r.span.children}
        assert by_name["bn_sample"].duration == r.breakdown.sampling
        assert by_name["feature_fetch"].duration == r.breakdown.features
        assert by_name["inference"].duration == r.breakdown.prediction
        assert r.span.duration == r.breakdown.total

    warm_b = batched[len(batched) // 5 :]
    b_sampling = [1000 * r.breakdown.sampling for r in warm_b]
    b_features = [1000 * r.breakdown.features for r in warm_b]
    b_prediction = [1000 * r.breakdown.prediction for r in warm_b]
    b_total = [1000 * r.breakdown.total for r in warm_b]
    emit()
    emit(f"Batched mode — same stream in micro-batches of {BATCH_SIZE}, shared")
    emit("work charged to its first toucher (responses bit-identical):")
    emit("  " + format_percentiles("BN server (sampling)", b_sampling))
    emit("  " + format_percentiles("feature management  ", b_features))
    emit("  " + format_percentiles("prediction server   ", b_prediction))
    emit("  " + format_percentiles("total               ", b_total))

    # Shape 4: coalescing wins on the deployment's latency economics.
    assert np.mean(b_total) < np.mean(total), (
        "batched charged totals should beat sequential ones"
    )
