"""E13 — Section V: effect of the in-memory cache on request latency.

Paper: the Redis-backed optimization cuts the average prediction from 6.8 s
to 0.8 s (p50 6.73 s -> 0.8 s, p99 11.3 s -> 0.99 s, p999 12.66 s -> 1.33 s)
— an 88 % reduction of online operation time.
"""

from __future__ import annotations

import numpy as np

from repro.eval.reporting import format_percentiles
from repro.system import TurboConfig, deploy_turbo

from _shared import SCALE, WINDOWS, d1_dataset, emit, emit_header, once

N_REQUESTS = 200


def run_both_deployments():
    dataset = d1_dataset()
    cached, data = deploy_turbo(
        dataset,
        TurboConfig(windows=WINDOWS, train_epochs=20, hidden=(32, 16), seed=0),
    )
    uncached, _ = deploy_turbo(
        dataset,
        TurboConfig(
            windows=WINDOWS,
            use_cache=False,
            train_epochs=20,
            hidden=(32, 16),
            seed=0,
        ),
        data=data,
    )
    latest = {t.uid: t for t in data.feature_manager.latest_transactions()}
    rng = np.random.default_rng(0)
    uids = rng.choice(sorted(latest), size=min(N_REQUESTS, len(latest)), replace=False)
    for uid in uids:
        txn = latest[int(uid)]
        cached.handle_request(txn, now=txn.audit_at)
        uncached.handle_request(txn, now=txn.audit_at)
    warm = slice(len(uids) // 5, None)
    return (
        [1000 * r.breakdown.total for r in cached.responses][warm],
        [1000 * r.breakdown.total for r in uncached.responses][warm],
    )


def test_sec5_cache_latency(benchmark):
    cached_ms, uncached_ms = once(benchmark, run_both_deployments)
    emit_header(f"Section V — cache optimization, total request latency (scale={SCALE})")
    emit("  " + format_percentiles("with cache   ", cached_ms))
    emit("  " + format_percentiles("without cache", uncached_ms))
    reduction = 1.0 - np.mean(cached_ms) / np.mean(uncached_ms)
    emit(f"  online operation time reduced by {100 * reduction:.0f}%")
    emit()
    emit("Paper: 6.8 s -> 0.8 s average (88% reduction); p50 6.73 s -> 0.80 s,")
    emit("p99 11.3 s -> 0.99 s, p999 12.66 s -> 1.33 s.")

    # Shape 1: the cache removes the bulk of the latency (paper: 88 %).
    assert reduction > 0.7, reduction
    # Shape 2: the cached deployment is real-time (same order as 0.8 s).
    assert np.percentile(cached_ms, 50) < 2000.0
    # Shape 3: the uncached path is in the multi-second regime.
    assert np.mean(uncached_ms) > 3000.0
