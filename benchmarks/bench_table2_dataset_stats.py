"""E1 — Table II: dataset statistics (# node, # positive, # edge, # type).

Paper values: D1 = 67 072 nodes / 918 positive / 207 890 edges / 8 types;
D2 = 1 072 205 / 989 728 / 2 787 733 / 8.  The synthetic presets reproduce
the *regimes* (normal-majority D1, positive-majority D2, 8 edge types) at
laptop scale.
"""

from __future__ import annotations

from repro.datagen import dataset_statistics
from repro.network import BNBuilder

from _shared import SCALE, WINDOWS, d1_dataset, d2_dataset, emit, emit_header


def build_stats():
    rows = []
    for dataset in (d1_dataset(), d2_dataset()):
        bn = BNBuilder(windows=WINDOWS).build(dataset.logs)
        rows.append(dataset_statistics(dataset, bn))
    return rows


def test_table2_dataset_statistics(benchmark):
    from _shared import once

    rows = once(benchmark, build_stats)
    emit_header(f"Table II — dataset statistics (synthetic, scale={SCALE})")
    emit(f"{'Dataset':<8}{'# node':>10}{'# positive':>12}{'# edge':>12}{'# type':>8}")
    for stats in rows:
        emit(stats.as_row())
    emit()
    emit("Paper:   D1 = 67,072 / 918 / 207,890 / 8")
    emit("         D2 = 1,072,205 / 989,728 / 2,787,733 / 8")

    d1, d2 = rows
    # Shape assertions: D1 is normal-majority, D2 positive-majority, both
    # use the 8 canonical edge types, and D2's graph is the denser one in
    # proportion to its population.
    assert d1.n_positive / d1.n_nodes < 0.2
    assert d2.n_positive / d2.n_nodes > 0.7
    assert d1.n_types == 8
    assert d2.n_types == 8
    assert d1.n_edges > 0 and d2.n_edges > 0
