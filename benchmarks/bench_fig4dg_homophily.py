"""E7 — Fig. 4d-g: homophilic effect of fraudster nodes in BN.

Fig. 4d: the fraud ratio of fraudster nodes' n-hop neighbours is far higher
than around normal nodes and decays with the hop count.  Fig. 4e-g: the
strength of the effect differs by edge type — the motivation for CFO.
"""

from __future__ import annotations

import numpy as np

from repro.datagen import DETERMINISTIC_TYPES, PROBABILISTIC_TYPES
from repro.eval.empirical import hop_fraud_ratios
from repro.eval.reporting import format_series

from _shared import SCALE, WINDOWS, d1_dataset, d1_experiment, emit, emit_header, once

MAX_HOPS = 3


def run_homophily():
    data = d1_experiment()
    labels = data.dataset.labels
    overall = {
        "fraud seeds": hop_fraud_ratios(data.bn, labels, fraud=True, max_hops=MAX_HOPS),
        "normal seeds": hop_fraud_ratios(data.bn, labels, fraud=False, max_hops=MAX_HOPS),
    }
    per_type = {}
    for btype in DETERMINISTIC_TYPES + PROBABILISTIC_TYPES:
        per_type[btype.value] = hop_fraud_ratios(
            data.bn, labels, fraud=True, max_hops=2, btype=btype
        )
    return overall, per_type


def test_fig4dg_homophily(benchmark):
    overall, per_type = once(benchmark, run_homophily)
    hops = list(range(1, MAX_HOPS + 1))
    emit_header(f"Fig. 4d — n-hop fraud ratios (scale={SCALE})")
    for name, series in overall.items():
        emit("  " + format_series(name, hops, series))
    emit_header("Fig. 4e-g — per-type 1-2 hop fraud ratios around fraud seeds")
    for name, series in per_type.items():
        emit("  " + format_series(name, [1, 2], series))
    emit()
    emit("Paper shape: fraud-seeded ratios are much higher and decay with")
    emit("hops; the effect varies strongly across edge types.")

    fraud_series = overall["fraud seeds"]
    normal_series = overall["normal seeds"]
    # Shape 1: strong homophily at hop 1.
    assert fraud_series[0] > 4 * max(normal_series[0], 0.01)
    # Shape 2: the fraud-seeded ratio decays as hops grow.
    assert fraud_series[0] > fraud_series[-1]
    # Shape 3: the normal-seeded ratio stays low and comparatively stable.
    assert max(normal_series) < 0.35
    # Shape 4: heterogeneity — the hop-1 effect clearly differs between the
    # strongest and weakest edge types with data (the motivation for CFO).
    hop1 = [s[0] for s in per_type.values() if np.isfinite(s[0]) and s[0] > 0]
    assert len(hop1) >= 3
    assert max(hop1) > 1.4 * min(hop1)
