"""E3 — Table IV: GraphSAGE vs HAG on the larger, positive-majority D2.

Paper (%): G-SAGE 93.17/96.09/94.61/96.66/97.31 — HAG 95.88/97.46/95.50/
97.14/98.28.  Shape: both models score far higher than on D1 (D2's rejected
applicants are blatant), and HAG keeps a consistent edge over GraphSAGE.
"""

from __future__ import annotations

from repro.baselines import METHODS
from repro.eval.reporting import format_table

from _shared import (
    SCALE,
    SEEDS,
    d1_experiment,
    d2_experiment,
    emit,
    emit_header,
    once,
    repeat_over_splits,
)


def run_table4():
    return {
        name: repeat_over_splits(
            name, METHODS[name], seeds=SEEDS, experiment=d2_experiment
        )
        for name in ("GraphSAGE", "HAG")
    }


def test_table4_d2_comparison(benchmark):
    results = once(benchmark, run_table4)
    rows = {name: result.row() for name, result in results.items()}
    emit_header(f"Table IV — performance comparison on D2 (%)  (scale={SCALE})")
    emit(format_table(rows, columns=["Precision", "Recall", "F1", "F2", "AUC"]))
    emit()
    emit("Paper: G-SAGE 93.2/96.1/94.6/96.7/97.3;  HAG 95.9/97.5/95.5/97.1/98.3")

    sage = results["GraphSAGE"].report
    hag = results["HAG"].report
    # Shape 1: D2 is much easier than D1 — both models reach high AUC/F1.
    assert sage.auc > 0.9 and hag.auc > 0.9
    assert sage.f1 > 0.85 and hag.f1 > 0.85
    # Shape 2: HAG >= GraphSAGE (the paper's +1.0 AUC, +0.9 F1 edge),
    # allowing a small tolerance at synthetic scale.
    assert hag.auc >= sage.auc - 0.005
    # Shape 3: both exceed their own D1 performance.
    d1 = d1_experiment()
    from repro.eval import run_method

    d1_sage, _ = run_method(METHODS["GraphSAGE"], d1, seed=SEEDS[0])
    assert sage.auc > d1_sage.auc
