"""Open-loop load test: the latency-vs-offered-QPS frontier with brownout gates.

Every other serving bench in this repo is closed-loop — it issues a request,
waits, issues the next — so it can never observe queueing delay, the term
that dominates latency at saturation.  This harness drives the deployment
with *open-loop* traffic from :class:`repro.system.OpenLoopLoadGenerator`
(seeded nonhomogeneous Poisson arrivals with a diurnal cycle and fraud
bursts aligned to a ``repro.datagen.drift`` scenario) through the queueing
front (:meth:`Turbo.frontend`): priority-class admission control, deadline
shedding into the fallback ladder, batch-until-deadline micro-batching and
a queue-depth autoscaler over :class:`~repro.system.SimulatedWorkerPool`.

The sweep self-calibrates.  A closed-loop warmup measures the charged wall
time of one micro-batch, which fixes single-worker capacity in requests per
simulated second; the **nominal** operating point is :data:`NOMINAL_UTILIZATION`
of that capacity (the provisioned load the platform budgets for, served
comfortably by the minimum pool).  Each sweep point offers a multiple of
nominal for the same simulated horizon and reports end-to-end percentiles
(queue wait + charged pipeline time), shed rates, peak queue depth and
autoscaler activity — the frontier written to ``BENCH_loadtest.json``.

Acceptance gates (uniform contract via ``_shared.check_gates``; both run
modes exit nonzero when a gate regresses, and the whole harness fails hard
if any request — served or shed — lacks a closed trace):

* **p99 holds at 2x nominal**: end-to-end p99 at the 2x point within
  :data:`P99_SLACK` of the uncongested (lowest-multiplier) p99 — the
  autoscaler must absorb double the provisioned load;
* **near-zero shedding at 2x**: served fraction >= 0.90 there;
* **graceful brownout beyond saturation**: at the top multiplier the
  admission controller sheds (bounded served fraction floor) instead of
  queueing without bound (peak depth <= ``max_depth``) and nothing raises;
* **autoscaler engaged**: at least one scale-up somewhere in the sweep;
* **every request traced**: each arrival closes exactly one trace root.

Scale knobs (environment variables):

* ``REPRO_BENCH_LOADTEST_ARRIVALS`` — expected arrivals at 1x nominal
  (default 64; the simulated horizon is derived from it);
* ``REPRO_BENCH_LOADTEST_MULTIPLIERS`` — comma-separated sweep multiples
  of nominal (default ``0.5,1,2,4,8,16``; must include ``2``);
* ``REPRO_BENCH_LOADTEST_BATCH`` — micro-batch size (default 8);
* ``REPRO_BENCH_LOADTEST_WORKERS`` — autoscaler ceiling (default 3);
* ``REPRO_BENCH_LOADTEST_P99_SLACK`` — the 2x p99 tolerance (default 5.0).

Run it either way::

    pytest -m loadtest benchmarks/bench_loadtest.py          # as a slow test
    PYTHONPATH=src python benchmarks/bench_loadtest.py       # as a script
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.datagen import GeneratorConfig, fraud_burst_schedule, generate_drift_scenario
from repro.obs import assert_all_traced
from repro.system import (
    OpenLoopLoadGenerator,
    PredictRequest,
    PriorityClass,
    QueueConfig,
    TrafficPattern,
    bursts_from_drift,
    TurboConfig,
    deploy_turbo,
)

from _shared import WINDOWS, Gate, check_gates, d1_dataset, emit, emit_header

ARRIVALS_1X = int(os.environ.get("REPRO_BENCH_LOADTEST_ARRIVALS", "64"))
MULTIPLIERS = tuple(
    float(m)
    for m in os.environ.get(
        "REPRO_BENCH_LOADTEST_MULTIPLIERS", "0.5,1,2,4,8,16"
    ).split(",")
)
BATCH_SIZE = int(os.environ.get("REPRO_BENCH_LOADTEST_BATCH", "8"))
MAX_WORKERS = int(os.environ.get("REPRO_BENCH_LOADTEST_WORKERS", "3"))
P99_SLACK = float(os.environ.get("REPRO_BENCH_LOADTEST_P99_SLACK", "5.0"))
TRAIN_EPOCHS = 20
CALIBRATION_BATCHES = 3
#: the provisioned operating point, as a fraction of one worker's capacity.
NOMINAL_UTILIZATION = 0.5
#: served-fraction floors: near-full service at 2x, bounded brownout at the top.
SERVED_FLOOR_2X = 0.90
SERVED_FLOOR_OVERLOAD = 0.40
#: finite cap for ratio gates — a zero denominator must not write Infinity
#: into the JSON (it would not round-trip through the schema test).
GATE_CAP = 100.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_loadtest.json"


def deploy():
    dataset = d1_dataset()
    turbo, _data = deploy_turbo(
        dataset,
        TurboConfig(
            windows=WINDOWS, train_epochs=TRAIN_EPOCHS, hidden=(32, 16), seed=0
        ),
    )
    fraud_uids = frozenset(u.uid for u in dataset.users if u.is_fraud)
    return turbo, fraud_uids


def calibrate(turbo):
    """Measure one worker's charged micro-batch wall time (closed loop).

    Returns ``(wall, pool)`` — the mean charged critical path of a batch of
    :data:`BATCH_SIZE` healthy requests, and the transaction pool the open
    loop draws from.  Everything downstream (capacity, nominal QPS, batch
    hold time, deadlines, autoscaler cooldown) is expressed in units of
    this one measured number, so the sweep lands at the same relative
    operating points at every dataset scale.
    """
    pool = sorted(
        turbo.feature_server.feature_manager.latest_transactions(),
        key=lambda t: t.txn_id,
    )
    rng = np.random.default_rng(123)
    walls = []
    for _ in range(CALIBRATION_BATCHES + 1):
        picks = rng.choice(len(pool), size=min(BATCH_SIZE, len(pool)), replace=False)
        requests = [PredictRequest(txn=pool[int(i)]) for i in picks]
        responses = turbo.predict_batch(requests)
        walls.append(max(r.breakdown.total for r in responses))
    # the first batch pays every cold-cache charge; capacity is the warm rate
    return float(np.mean(walls[1:])), pool


def priority_classes(wall: float) -> tuple[PriorityClass, ...]:
    """The default traffic mix with deadlines in units of batch service time."""
    return (
        PriorityClass("interactive", rank=0, deadline=6.0 * wall, weight=0.5),
        PriorityClass("standard", rank=1, deadline=15.0 * wall, weight=0.35),
        PriorityClass("batch", rank=2, deadline=45.0 * wall, weight=0.15),
    )


def queue_config(wall: float) -> QueueConfig:
    return QueueConfig(
        max_depth=8 * BATCH_SIZE,
        batch_size=BATCH_SIZE,
        batch_wait=0.25 * wall,
        admission_deadline_aware=True,
        initial_service_estimate=wall,
        min_workers=1,
        max_workers=MAX_WORKERS,
        worker_startup=2.0 * wall,
        scale_high=2.0,
        scale_low=0.25,
        scale_cooldown=4.0 * wall,
    )


def point_pattern(scenario, base_qps: float, start: float, horizon: float):
    """One sweep point's rate function: diurnal cycle + drift-aligned bursts."""
    schedule = fraud_burst_schedule(
        scenario,
        start=start,
        burst_seconds=horizon / 10.0,
        gap_seconds=horizon / 6.0,
        max_intensity=1.5,
    )
    return TrafficPattern(
        base_qps=base_qps,
        diurnal_amplitude=0.2,
        diurnal_period=horizon,
        diurnal_phase=start,
        bursts=bursts_from_drift(schedule, fraud_bias=0.5),
    )


def queue_counters(turbo) -> dict[str, float]:
    counters = turbo.metrics.snapshot()["counters"]
    return {k: float(v) for k, v in counters.items() if k.startswith("turbo.queue.")}


def percentile_ms(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    return 1000.0 * float(np.percentile(np.asarray(samples), q))


def run_point(turbo, scenario, txns, fraud_uids, multiplier, nominal, wall, seed):
    """Offer ``multiplier`` x nominal for one horizon; return the frontier row."""
    start = turbo.clock.now()
    horizon = ARRIVALS_1X / nominal
    pattern = point_pattern(scenario, multiplier * nominal, start, horizon)
    generator = OpenLoopLoadGenerator(
        pattern,
        txns,
        fraud_uids=fraud_uids,
        classes=priority_classes(wall),
        seed=seed,
    )
    arrivals = generator.generate(start, horizon)
    frontend = turbo.frontend(queue_config(wall))
    before = queue_counters(turbo)
    uncaught: list[str] = []
    try:
        records = frontend.run(arrivals)
    except Exception as exc:  # the serving front must be total — record and gate
        uncaught.append(f"{type(exc).__name__}: {exc}")
        records = list(frontend.records)
    after = queue_counters(turbo)
    delta = {k: after.get(k, 0.0) - before.get(k, 0.0) for k in after}

    served = [r for r in records if r.served]
    shed = [r for r in records if not r.served]
    e2e = [r.completed_at - r.arrival.at for r in served]
    waits = [r.queue_wait for r in served]
    stats = frontend.pool.stats()
    row = {
        "multiplier": multiplier,
        "offered_qps": multiplier * nominal,
        "realized_qps": len(arrivals) / horizon,
        "horizon_s": horizon,
        "arrivals": len(arrivals),
        "served": len(served),
        "shed": len(shed),
        "shed_admission": delta.get("turbo.queue.shed.admission", 0.0),
        "shed_deadline": delta.get("turbo.queue.shed.deadline", 0.0),
        "served_fraction": len(served) / max(1, len(records)),
        "p50_ms": percentile_ms(e2e, 50.0),
        "p99_ms": percentile_ms(e2e, 99.0),
        "wait_p99_ms": percentile_ms(waits, 99.0),
        "peak_depth": frontend.peak_depth,
        "peak_workers": stats["peak_workers"],
        "final_workers": stats["workers"],
        "scale_ups": stats["scale_ups"],
        "scale_downs": stats["scale_downs"],
        "batches": delta.get("turbo.queue.batches", 0.0),
        "deadline_misses": delta.get("turbo.queue.deadline_misses", 0.0),
    }
    return row, records, uncaught


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_harness(result_path: Path = RESULT_PATH) -> dict:
    emit_header(
        f"Open-loop load test — {len(MULTIPLIERS)}-point sweep x{MULTIPLIERS}, "
        f"batch {BATCH_SIZE}, <= {MAX_WORKERS} workers"
    )
    turbo, fraud_uids = deploy()
    wall, txns = calibrate(turbo)
    capacity = BATCH_SIZE / wall
    nominal = NOMINAL_UTILIZATION * capacity
    emit(
        f"calibration: batch wall {wall * 1000.0:.0f}ms -> one worker serves "
        f"{capacity:.2f} req/s; nominal load {nominal:.2f} req/s"
    )
    scenario = generate_drift_scenario(
        GeneratorConfig(n_users=60), n_periods=3, seed=5
    )

    frontier = []
    all_records = []
    uncaught: list[str] = []
    for i, multiplier in enumerate(sorted(MULTIPLIERS)):
        row, records, errors = run_point(
            turbo, scenario, txns, fraud_uids, multiplier, nominal, wall, seed=1000 + i
        )
        frontier.append(row)
        all_records.extend(records)
        uncaught.extend(errors)
        emit(
            "{multiplier:>4.1f}x  offered {offered_qps:6.2f} req/s  "
            "p50 {p50_ms:6.0f}ms  p99 {p99_ms:7.0f}ms  "
            "served {served:>4d}/{arrivals:<4d}  depth<= {peak_depth:<3d} "
            "workers<= {peak_workers:.0f}".format(**row)
        )

    # Every arrival — served, shed at admission, shed at deadline — must have
    # closed exactly one trace root; an untraced request fails the run hard.
    assert_all_traced([r.response for r in all_records])
    traced_ok = turbo.tracer.open_traces() == 0
    if uncaught:
        emit(f"UNCAUGHT exceptions in the serving front: {uncaught}")

    by_mult = {row["multiplier"]: row for row in frontier}
    if 2.0 not in by_mult:
        raise ValueError("the sweep must include the 2x-nominal point")
    base_row, top_row, row_2x = frontier[0], frontier[-1], by_mult[2.0]

    result = {
        "arrivals_1x": ARRIVALS_1X,
        "batch_size": BATCH_SIZE,
        "max_workers": MAX_WORKERS,
        "nominal_utilization": NOMINAL_UTILIZATION,
        "batch_wall_ms": 1000.0 * wall,
        "single_worker_capacity_qps": capacity,
        "nominal_qps": nominal,
        "p99_slack": P99_SLACK,
        "frontier": frontier,
        "uncaught": uncaught,
    }
    gates = [
        Gate(
            "p99_2x_within_slack",
            min(GATE_CAP, P99_SLACK * base_row["p99_ms"] / max(row_2x["p99_ms"], 1e-9)),
            1.0,
        ),
        Gate("served_fraction_2x", row_2x["served_fraction"], SERVED_FLOOR_2X),
        Gate(
            "overload_served_fraction",
            top_row["served_fraction"],
            SERVED_FLOOR_OVERLOAD,
        ),
        Gate(
            "overload_queue_bounded",
            min(GATE_CAP, queue_config(wall).max_depth / max(top_row["peak_depth"], 1)),
            1.0,
        ),
        Gate("autoscaler_engaged", sum(r["scale_ups"] for r in frontier), 1.0),
        Gate("no_uncaught_exceptions", 0.0 if uncaught else 1.0, 1.0),
        Gate("all_requests_traced", 1.0 if traced_ok else 0.0, 1.0),
    ]
    check_gates(gates, result, result_path)
    return result


@pytest.mark.slow
@pytest.mark.loadtest
def test_loadtest_frontier():
    result = run_harness()
    assert result["gates_met"], (
        "load-test gates failed — see gate lines above "
        f"(gates: {result['gates']})"
    )


if __name__ == "__main__":
    outcome = run_harness()
    if not outcome["gates_met"]:
        emit("FAIL: load-test gates not met")
        sys.exit(1)
    emit("OK")
