"""Batched serving perf harness: coalesced end-to-end micro-batching.

Times the batched serving pipeline (``Turbo.predict_batch`` — union-frontier
sampling, columnar feature assembly, packed HAG forward) against sequential
``Turbo.predict`` calls on the same deployment, and writes the results to
``BENCH_serving_batch.json`` in the repository root.  Three sections:

* ``end_to_end`` — serving the request stream in micro-batches of
  :data:`BATCH_SIZE` vs one request at a time, on two time bases: the
  **deployment clock** (the simulated time base every latency number in
  this repo lives on — a micro-batch completes at its critical path, the
  scalar server at the sum of its sequential totals), which carries the
  headline throughput gate, and **wall clock** (the Python compute cost of
  the pass), which carries a separate compute gate.  The responses must be
  **bit-for-bit identical** (probabilities, decisions, degradation tags)
  before anything is timed, every batched request must close a traced root
  span, and the per-request stage spans must reconcile with the
  ``LatencyBreakdown`` slots exactly;
* ``feature_assembly`` — the feature module alone: ``features_for_batch``
  vs a ``features_for`` loop on ring-heavy (strongly overlapping) node
  lists, with bit-exact matrix parity asserted first;
* ``scalar_path`` — the scalar path itself against its pinned reference
  (slice-materializing history counting vs the bisect fix): the batched PR
  must not have made the unbatched path slower.

The workload is ring-heavy by construction: targets are drawn from the
highest-degree BN nodes, so their 2-hop neighbourhoods overlap heavily —
the regime the deposit-free leasing fraud rings create and the one
coalescing exploits.

Run it either way::

    pytest -m slow benchmarks/bench_serving_batch.py          # as a slow test
    PYTHONPATH=src python benchmarks/bench_serving_batch.py   # as a script

Acceptance gates (uniform contract via ``_shared.check_gates``; both modes
exit nonzero when a gate regresses):

* batched serving throughput ≥ 4× scalar at batch 32, measured in requests
  per simulated second on the deployment clock;
* batched end-to-end compute ≥ 2× scalar on wall clock (bit-exactness pins
  inference to per-request GEMM blocks, which bounds the raw compute win
  well below the system-level one — see docs/PERFORMANCE.md);
* coalesced feature assembly ≥ 5× the scalar loop on ring-heavy lists
  (wall clock);
* the scalar path not slower than its pinned reference (≥ 0.90× on the
  best of three interleaved rounds — identical passes swing ±15% under
  background load, so the tolerance covers the measured noise floor).

Scale knobs (environment variables):

* ``REPRO_BENCH_SERVING_REQUESTS`` — served requests (default 64);
* ``REPRO_BENCH_SERVING_BATCH`` — micro-batch size (default 32).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.obs import assert_all_traced
from repro.system import PredictRequest, TurboConfig, deploy_turbo

from _shared import WINDOWS, Gate, check_gates, d1_dataset, emit, emit_header

N_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVING_REQUESTS", "64"))
BATCH_SIZE = int(os.environ.get("REPRO_BENCH_SERVING_BATCH", "32"))
TRAIN_EPOCHS = 20
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving_batch.json"


def deploy():
    dataset = d1_dataset()
    turbo, _data = deploy_turbo(
        dataset,
        TurboConfig(
            windows=WINDOWS, train_epochs=TRAIN_EPOCHS, hidden=(32, 16), seed=0
        ),
    )
    return turbo


def ring_heavy_requests(turbo, count: int) -> list[PredictRequest]:
    """Requests from one dense BN neighbourhood — a fraud-ring burst.

    Seeds at the highest-degree user and greedily adds the candidate whose
    sampled frontier overlaps the cluster union most, which is the traffic
    shape rings produce (many users sharing devices/IPs arriving together)
    and the regime the coalesced batch path is built for.  Selection reads
    the BN directly (no serving state touched) and is fully deterministic.
    """
    from repro.network import computation_subgraphs_batch

    latest = {
        t.uid: t for t in turbo.feature_server.feature_manager.latest_transactions()
    }
    candidates = sorted(
        latest, key=lambda uid: turbo.bn_server.bn.degree(uid), reverse=True
    )
    subgraphs, _stats = computation_subgraphs_batch(
        turbo.bn_server.bn,
        candidates,
        hops=turbo.hops,
        fanout=turbo.fanout,
        allowed=turbo.allowed_nodes,
    )
    node_sets = {uid: set(sg.nodes) for uid, sg in zip(candidates, subgraphs)}
    rank = {uid: i for i, uid in enumerate(candidates)}
    picked = [candidates[0]]
    union = set(node_sets[picked[0]])
    remaining = candidates[1:]
    while remaining and len(picked) < count:
        best = max(remaining, key=lambda uid: (len(node_sets[uid] & union), -rank[uid]))
        picked.append(best)
        union |= node_sets[best]
        remaining.remove(best)
    uids = (picked * (count // max(1, len(picked)) + 1))[:count]
    return [PredictRequest(txn=latest[uid], now=latest[uid].audit_at) for uid in uids]


def serve_scalar(turbo, requests) -> list:
    return [turbo.predict(r) for r in requests]


def serve_batched(turbo, requests) -> list:
    responses = []
    for k in range(0, len(requests), BATCH_SIZE):
        responses.extend(turbo.predict_batch(requests[k : k + BATCH_SIZE]))
    return responses


def assert_bit_exact(batched, scalar, what: str) -> None:
    assert len(batched) == len(scalar), f"{what}: response counts differ"
    for b, s in zip(batched, scalar):
        assert b.probability == s.probability, f"{what}: probabilities diverged"
        assert b.blocked == s.blocked, f"{what}: decisions diverged"
        assert b.degradation == s.degradation, f"{what}: degradation tags diverged"
        assert (
            b.degradation_reason == s.degradation_reason
        ), f"{what}: degradation reasons diverged"


def assert_spans_reconcile(responses) -> None:
    assert_all_traced(responses)
    for response in responses:
        by_name = {child.name: child for child in response.span.children}
        breakdown = response.breakdown
        assert by_name["bn_sample"].duration == breakdown.sampling
        assert by_name["feature_fetch"].duration == breakdown.features
        assert by_name["inference"].duration == breakdown.prediction
        assert response.span.duration == breakdown.total


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def bench_scalar_path(turbo, requests) -> dict:
    """The unbatched path vs its pinned reference history counting.

    Both variants run the same end-to-end pipeline except for how the
    feature server counts a user's history (pinned slice-materializing
    reference vs the bisect fix), so their wall times differ by a few
    percent at most.  The rounds are interleaved and the best of three is
    kept for each variant — identical passes here swing ±15% under
    background load, so a single ref/vec ordering lets a load spike on one
    half masquerade as a regression.
    """
    server = turbo.feature_server
    ref_times: list[float] = []
    vec_times: list[float] = []
    scalar: list = []
    for _ in range(3):
        server._count_logs = server._count_logs_reference  # pinned pre-fix counting
        try:
            start = time.perf_counter()
            reference = serve_scalar(turbo, requests)
            ref_times.append(time.perf_counter() - start)
        finally:
            del server._count_logs  # restore the bisect-counting method
        start = time.perf_counter()
        scalar = serve_scalar(turbo, requests)
        vec_times.append(time.perf_counter() - start)
        assert_bit_exact(scalar, reference, "scalar_path")
    ref_s, vec_s = min(ref_times), min(vec_times)
    return {
        "requests": len(requests),
        "reference_s": ref_s,
        "vectorized_s": vec_s,
        "speedup": ref_s / vec_s,
        "scalar_responses": scalar,
    }


def bench_end_to_end(turbo, requests, scalar_responses) -> dict:
    """Micro-batched serving vs the sequential pass, same deployment.

    Two time bases:

    * the **deployment clock** (``turbo.clock``) — the simulated time base
      the repo's latency economics live on (``LatencyModel`` charges, the
      Fig 8 response times).  ``predict_batch`` advances it by each batch's
      critical path — the slowest request's charged total, with shared
      charges paid once by their first toucher — while scalar serving
      advances it by every request's full total in sequence.  Requests per
      simulated second is the serving throughput of the modeled system and
      carries the headline ≥4x gate;
    * **wall clock** — the Python compute cost of the pass.  Bit-exact
      parity requires per-request GEMM blocks in the packed forward, so the
      shared matrix compute is irreducible and the wall win is structurally
      far smaller than the system-level one; its ≥2x gate guards the real
      CPU cost against regressions.
    """
    sim_start = turbo.clock.now()
    start = time.perf_counter()
    batched = serve_batched(turbo, requests)
    batched_s = time.perf_counter() - start
    batched_sim_s = turbo.clock.now() - sim_start
    assert_bit_exact(batched, scalar_responses, "end_to_end")
    assert all(r.degradation == "full" for r in batched), "healthy run degraded"
    assert_spans_reconcile(batched)

    sim_start = turbo.clock.now()
    start = time.perf_counter()
    scalar = serve_scalar(turbo, requests)
    scalar_s = time.perf_counter() - start
    scalar_sim_s = turbo.clock.now() - sim_start
    assert_bit_exact(batched, scalar, "end_to_end rerun")

    snapshot = turbo.metrics.snapshot()
    coalescing = snapshot["histograms"]["turbo.batch.coalescing"]["mean"]
    feature_coalescing = snapshot["histograms"]["turbo.batch.feature_coalescing"][
        "mean"
    ]
    n = len(requests)
    return {
        "requests": n,
        "batch_size": BATCH_SIZE,
        "scalar_sim_s": scalar_sim_s,
        "batched_sim_s": batched_sim_s,
        "scalar_req_per_sim_s": n / scalar_sim_s,
        "batched_req_per_sim_s": n / batched_sim_s,
        "throughput_speedup": scalar_sim_s / batched_sim_s,
        "reference_s": scalar_s,
        "vectorized_s": batched_s,
        "compute_speedup": scalar_s / batched_s,
        "sample_coalescing": coalescing,
        "feature_coalescing": feature_coalescing,
        "charged_total_ms_scalar": 1000.0
        * float(np.mean([r.breakdown.total for r in scalar])),
        "charged_total_ms_batched": 1000.0
        * float(np.mean([r.breakdown.total for r in batched])),
    }


def bench_feature_assembly(turbo, requests) -> dict:
    """Columnar ``features_for_batch`` vs the ``features_for`` loop."""
    from repro.network import computation_subgraphs_batch

    server = turbo.feature_server
    uids = [r.uid for r in requests[:BATCH_SIZE]]
    nows = [r.now for r in requests[:BATCH_SIZE]]
    txns = [r.txn for r in requests[:BATCH_SIZE]]
    subgraphs, _stats = computation_subgraphs_batch(
        turbo.bn_server.bn,
        uids,
        hops=turbo.hops,
        fanout=turbo.fanout,
        allowed=turbo.allowed_nodes,
    )
    node_lists = [sg.nodes for sg in subgraphs]

    scalar_rows = [
        server.features_for(nodes, txn, now)[0]
        for nodes, txn, now in zip(node_lists, txns, nows)
    ]
    server._row_cache.clear()  # time the cold columnar pass, not cache hits
    matrices, _seconds, errors, stats = server.features_for_batch(
        node_lists, txns, nows
    )
    assert errors == [None] * len(node_lists)
    for got, want in zip(matrices, scalar_rows):
        np.testing.assert_array_equal(got, want)

    ref_times: list[float] = []
    vec_times: list[float] = []
    for _ in range(2):  # interleaved best-of-two, same rationale as scalar_path
        start = time.perf_counter()
        for nodes, txn, now in zip(node_lists, txns, nows):
            server.features_for(nodes, txn, now)
        ref_times.append(time.perf_counter() - start)
        server._row_cache.clear()
        start = time.perf_counter()
        server.features_for_batch(node_lists, txns, nows)
        vec_times.append(time.perf_counter() - start)
    ref_s, vec_s = min(ref_times), min(vec_times)
    return {
        "requests": len(node_lists),
        "node_touches": stats.node_touches,
        "unique_rows": stats.unique_rows,
        "coalescing": stats.coalescing,
        "reference_s": ref_s,
        "vectorized_s": vec_s,
        "speedup": ref_s / vec_s,
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_harness(result_path: Path = RESULT_PATH) -> dict:
    emit_header(
        f"Batched serving perf harness — {N_REQUESTS} ring-heavy requests, "
        f"batch size {BATCH_SIZE}"
    )
    turbo = deploy()
    requests = ring_heavy_requests(turbo, N_REQUESTS)
    emit(
        f"workload: {len(requests)} requests over "
        f"{len({r.uid for r in requests})} distinct high-degree users"
    )

    sections = {}
    scalar_section = bench_scalar_path(turbo, requests)
    scalar_responses = scalar_section.pop("scalar_responses")
    sections["scalar_path"] = scalar_section
    emit(
        "scalar path    ref {reference_s:.3f}s  vec {vectorized_s:.3f}s "
        "({speedup:.2f}x) — bisect history counting".format(**sections["scalar_path"])
    )
    sections["end_to_end"] = bench_end_to_end(turbo, requests, scalar_responses)
    emit(
        "throughput     scalar {scalar_req_per_sim_s:.2f} req/s  batched "
        "{batched_req_per_sim_s:.1f} req/s on the deployment clock "
        "({throughput_speedup:.1f}x)  charged {charged_total_ms_scalar:.0f}ms → "
        "{charged_total_ms_batched:.0f}ms/req".format(**sections["end_to_end"])
    )
    emit(
        "compute        scalar {reference_s:.3f}s  batched {vectorized_s:.3f}s "
        "wall ({compute_speedup:.1f}x)  "
        "coalescing {sample_coalescing:.1f}x/{feature_coalescing:.1f}x".format(
            **sections["end_to_end"]
        )
    )
    sections["feature_assembly"] = bench_feature_assembly(turbo, requests)
    emit(
        "features       loop {reference_s:.3f}s  columnar {vectorized_s:.3f}s "
        "({speedup:.1f}x)  {node_touches} touches → {unique_rows} unique rows "
        "({coalescing:.1f}x)".format(**sections["feature_assembly"])
    )

    result = {
        "n_requests": N_REQUESTS,
        "batch_size": BATCH_SIZE,
        "sections": sections,
    }
    gates = [
        Gate(
            "batched_throughput_speedup",
            sections["end_to_end"]["throughput_speedup"],
            4.0,
        ),
        Gate(
            "batched_compute_speedup",
            sections["end_to_end"]["compute_speedup"],
            2.0,
        ),
        Gate(
            "feature_assembly_speedup",
            sections["feature_assembly"]["speedup"],
            5.0,
        ),
        Gate("scalar_not_slower", sections["scalar_path"]["speedup"], 0.90),
    ]
    check_gates(gates, result, result_path)
    return result


@pytest.mark.slow
def test_serving_batch_perf():
    result = run_harness()
    assert result["gates_met"], (
        "batched serving perf gates failed — see gate lines above "
        f"(gates: {result['gates']})"
    )


if __name__ == "__main__":
    outcome = run_harness()
    if not outcome["gates_met"]:
        emit("FAIL: batched serving perf gates not met")
        sys.exit(1)
    emit("OK")
