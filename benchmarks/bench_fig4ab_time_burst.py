"""E5 — Fig. 4a-b: behavior-log distributions over time.

The paper's scatter plots show fraudsters' logs bursting in a short period
around the application, while normal users' logs scatter over the entire
leasing period.  The bench prints the per-class dispersion summary behind
those plots.
"""

from __future__ import annotations

from repro.eval.empirical import time_burst_summary

from _shared import SCALE, d1_dataset, emit, emit_header, once


def run_summaries():
    dataset = d1_dataset()
    return (
        time_burst_summary(dataset, fraud=False),
        time_burst_summary(dataset, fraud=True),
    )


def test_fig4ab_time_burst(benchmark):
    normal, fraud = once(benchmark, run_summaries)
    emit_header(f"Fig. 4a-b — time-burst pattern (scale={SCALE})")
    emit(f"{'class':<10}{'users':>8}{'span (d)':>12}{'std (d)':>10}{'near-app %':>12}")
    for name, summary in (("normal", normal), ("fraud", fraud)):
        emit(
            f"{name:<10}{summary.n_users:>8}{summary.mean_span_days:>12.1f}"
            f"{summary.mean_std_days:>10.1f}"
            f"{100 * summary.near_application_fraction:>12.1f}"
        )
    emit()
    emit("Paper shape: fraud logs burst around the application; normal logs")
    emit("scatter over the whole membership.")

    # Shapes: fraud activity is far more concentrated in time and far more
    # application-anchored than normal activity.
    assert fraud.mean_std_days < 0.5 * normal.mean_std_days
    assert fraud.near_application_fraction > 2 * normal.near_application_fraction
    # The audit-time logs should cover most of a fraudster's activity
    # (Section III-B's "logs available in the audit process are sufficient").
    assert fraud.near_application_fraction > 0.5
