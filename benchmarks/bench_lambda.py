"""Lambda two-tier serving harness: cached scores vs the fresh sampled path.

Exercises the PR-8 lambda architecture end to end on the D1 deployment and
writes the results to ``BENCH_lambda.json`` in the repository root.  Three
sections:

* ``zero_delta_parity`` — every covered request served by the lambda tier
  (cache hit, staleness 0) against the same request on a plain deployment
  sharing the training seed: probabilities and decisions must be
  **bit-for-bit identical**, and every lambda-path response must close a
  traced root span (``assert_all_traced``);
* ``work_reduction`` — the delta path's reason to exist: per-request
  sampled-subgraph work.  The plain deployment samples a fresh subgraph
  per request; the lambda tier answers the same stream from cached state,
  so its only sampling cost is the metered fallthrough
  (``turbo.lambda.fallthrough_nodes``) — zero on this zero-delta stream;
* ``drift_replay`` — a ``datagen.drift`` period remapped onto covered
  users lands new co-occurrence edges inside cached subgraphs.  Serving
  the sample twice — once at budget 0 (the exact fresh path, ground
  truth) and once at an unbounded budget (the stale cached scores) —
  quantifies the score drift.  Untouched users must stay bit-exact;
  touched users' worst-case drift must fit inside the pinned envelope.

Run it either way::

    pytest -m slow benchmarks/bench_lambda.py          # as a slow test
    PYTHONPATH=src python benchmarks/bench_lambda.py   # as a script

Acceptance gates (uniform contract via ``_shared.check_gates``; both modes
exit nonzero when a gate regresses):

* zero-delta parity == 1.0 (bit-exact scores and decisions vs the fresh
  sampled path, all requests traced);
* ≥ 10× reduction in per-request sampled-subgraph work on the delta path
  (fresh sampled nodes / max(1, lambda fallthrough nodes));
* drift margin ≥ 0: the worst stale-score drift under the replay stays
  inside :data:`DRIFT_BOUND`.

Scale knobs (environment variables):

* ``REPRO_BENCH_LAMBDA_REQUESTS`` — served requests (default 48);
* ``REPRO_BENCH_LAMBDA_DRIFT_LOGS`` — replayed drift logs (default 300).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

from repro.datagen import BehaviorLog, GeneratorConfig
from repro.datagen.drift import generate_drift_scenario
from repro.datagen.entities import HOUR
from repro.obs import assert_all_traced
from repro.system import TurboConfig, deploy_turbo

from _shared import WINDOWS, Gate, check_gates, d1_dataset, emit, emit_header

N_REQUESTS = int(os.environ.get("REPRO_BENCH_LAMBDA_REQUESTS", "48"))
N_DRIFT_LOGS = int(os.environ.get("REPRO_BENCH_LAMBDA_DRIFT_LOGS", "300"))
TRAIN_EPOCHS = 20
#: worst tolerated |cached - fresh| probability drift for a stale score
#: under the pinned drift replay (deterministic at the fixed seeds).
DRIFT_BOUND = 0.35
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_lambda.json"


def deploy(*, lambda_tier: bool):
    dataset = d1_dataset()
    config = TurboConfig(
        windows=WINDOWS,
        train_epochs=TRAIN_EPOCHS,
        hidden=(32, 16),
        seed=0,
        lambda_tier=lambda_tier,
    )
    return deploy_turbo(dataset, config)


def covered_requests(turbo, data, count: int):
    """Replay-style requests the batch pass covers: latest txn, audit time."""
    lam = turbo.lambda_layer
    latest = {t.uid: t for t in data.feature_manager.latest_transactions()}
    uids = [int(u) for u in lam.state.node_ids[:count]]
    return [latest[uid] for uid in uids]


def bench_zero_delta(turbo, plain_turbo, txns) -> dict:
    """Serve the covered stream on both tiers; assert bit-exact parity."""
    lam = turbo.lambda_layer
    hits_before = lam.hits
    cached = [turbo.handle_request(t, now=t.audit_at) for t in txns]
    fresh = [plain_turbo.handle_request(t, now=t.audit_at) for t in txns]
    assert_all_traced(cached)

    mismatches = 0
    for one, two in zip(cached, fresh):
        assert one.tier == "lambda", f"uncached request on covered uid {one.uid}"
        assert one.staleness == 0, f"nonzero staleness at zero delta: {one}"
        assert two.tier == "sampled"
        if one.probability != two.probability or one.blocked != two.blocked:
            mismatches += 1
    return {
        "requests": len(txns),
        "lambda_hits": lam.hits - hits_before,
        "mismatches": mismatches,
        "parity": 1.0 if mismatches == 0 else 0.0,
        "fresh_responses": fresh,
    }


def bench_work_reduction(turbo, fresh_responses) -> dict:
    """Sampled-subgraph nodes: fresh path per request vs delta fallthrough."""
    lam = turbo.lambda_layer
    fresh_nodes = sum(int(r.subgraph_size) for r in fresh_responses)
    fallthrough_nodes = int(lam.fallthrough_nodes)
    return {
        "fresh_sampled_nodes": fresh_nodes,
        "lambda_fallthrough_nodes": fallthrough_nodes,
        "work_reduction": fresh_nodes / max(1, fallthrough_nodes),
    }


def bench_drift_replay(turbo, data, dataset) -> dict:
    """Replay a drift period onto covered users; quantify stale-score drift."""
    lam = turbo.lambda_layer
    t_end = max(log.timestamp for log in dataset.logs)
    # Flush the windowed-epoch backlog, then re-baseline delta tracking so
    # the replay below is the *only* delta the staleness gate sees.
    turbo.bn_server.run_due_jobs(now=t_end)
    lam.run_batch_pass(turbo.clock.now())

    covered = [int(u) for u in lam.state.node_ids]
    pool = covered[: min(60, len(covered))]
    scenario = generate_drift_scenario(
        base=GeneratorConfig(n_users=60, span_days=30.0), n_periods=1, seed=3
    )
    period_logs = sorted(scenario.periods[0].dataset.logs, key=lambda l: l.timestamp)
    drift_logs = [
        BehaviorLog(
            uid=pool[hash(log.uid) % len(pool)],
            btype=log.btype,
            value=f"drift:{log.value}",
            timestamp=t_end + 1.0 + 0.01 * i,
        )
        for i, log in enumerate(period_logs[:N_DRIFT_LOGS])
    ]
    turbo.bn_server.ingest(drift_logs)
    turbo.bn_server.run_due_jobs(now=t_end + 2 * HOUR)
    delta_size = int(lam._bn.delta_size())
    assert delta_size > 0, "drift replay produced no delta edges"

    latest = {t.uid: t for t in data.feature_manager.latest_transactions()}
    sample = covered[: min(80, len(covered))]

    lam.staleness_budget = 0
    fresh = {}
    for uid in sample:
        txn = latest[uid]
        fresh[uid] = turbo.handle_request(txn, now=txn.audit_at)
    lam.staleness_budget = 10**9
    stale_count, exact_count, drifts = 0, 0, [0.0]
    for uid in sample:
        txn = latest[uid]
        cached = turbo.handle_request(txn, now=txn.audit_at)
        assert cached.tier == "lambda", f"budget-unbounded miss on uid {uid}"
        delta = abs(cached.probability - fresh[uid].probability)
        if cached.staleness == 0:
            assert delta == 0.0, f"zero-staleness drift on uid {uid}: {delta}"
            exact_count += 1
        else:
            stale_count += 1
            drifts.append(delta)
    assert stale_count > 0, "drift replay touched no sampled user"
    max_drift = max(drifts)
    return {
        "delta_edges": delta_size,
        "sample": len(sample),
        "stale_users": stale_count,
        "bit_exact_users": exact_count,
        "max_drift": max_drift,
        "drift_bound": DRIFT_BOUND,
        "drift_margin": DRIFT_BOUND - max_drift,
    }


def run_harness(result_path: Path = RESULT_PATH) -> dict:
    emit_header(
        f"lambda two-tier serving — {N_REQUESTS} covered requests, "
        f"{N_DRIFT_LOGS}-log drift replay"
    )
    turbo, data = deploy(lambda_tier=True)
    plain_turbo, _plain_data = deploy(lambda_tier=False)
    lam = turbo.lambda_layer
    emit(
        f"deployed: {lam.state.num_nodes} covered users, "
        f"bn v{lam.state.bn_version}, {lam.batch_passes} batch pass(es)"
    )
    txns = covered_requests(turbo, data, N_REQUESTS)

    sections = {}
    parity = bench_zero_delta(turbo, plain_turbo, txns)
    fresh_responses = parity.pop("fresh_responses")
    sections["zero_delta_parity"] = parity
    emit(
        "parity         {requests} requests, {lambda_hits} lambda hits, "
        "{mismatches} mismatches — bit-exact vs fresh path".format(**parity)
    )
    sections["work_reduction"] = bench_work_reduction(turbo, fresh_responses)
    emit(
        "delta path     fresh {fresh_sampled_nodes} sampled nodes vs "
        "{lambda_fallthrough_nodes} fallthrough "
        "({work_reduction:.0f}x less sampling work)".format(
            **sections["work_reduction"]
        )
    )
    sections["drift_replay"] = bench_drift_replay(turbo, data, d1_dataset())
    emit(
        "drift replay   {delta_edges} delta edges, {stale_users}/{sample} "
        "stale, {bit_exact_users} bit-exact, max drift {max_drift:.4f} "
        "(bound {drift_bound:.2f})".format(**sections["drift_replay"])
    )

    result = {
        "n_requests": N_REQUESTS,
        "n_drift_logs": N_DRIFT_LOGS,
        "sections": sections,
    }
    gates = [
        Gate("zero_delta_parity", sections["zero_delta_parity"]["parity"], 1.0),
        Gate(
            "delta_path_work_reduction",
            sections["work_reduction"]["work_reduction"],
            10.0,
        ),
        Gate("drift_margin", sections["drift_replay"]["drift_margin"], 0.0),
    ]
    check_gates(gates, result, result_path)
    return result


@pytest.mark.slow
def test_lambda_serving():
    result = run_harness()
    assert result["gates_met"], (
        "lambda serving gates failed — see gate lines above "
        f"(gates: {result['gates']})"
    )


if __name__ == "__main__":
    outcome = run_harness()
    if not outcome["gates_met"]:
        emit("FAIL: lambda serving gates not met")
        sys.exit(1)
    emit("OK")
