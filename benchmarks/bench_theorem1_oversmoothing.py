"""E15 — Theorem 1: over-smoothing on cliques (design validation).

Theorem 1 proves that GCN-style aggregation gives every node of a clique the
same expected influence distribution (1/m per node) and identical expected
hidden features — the embedding collapse SAO is designed to prevent.  The
bench measures both effects numerically.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core import SAOLayer, neighbor_mean_matrix
from repro.core.influence import influence_distribution
from repro.network.adjacency import row_normalize
from repro.nn import Linear, Tensor, spmm

from _shared import emit, emit_header, once

CLIQUE = 10
DIM = 8


def spread(matrix: np.ndarray) -> float:
    return float(np.linalg.norm(matrix - matrix.mean(axis=0)))


def run_experiment():
    rng = np.random.default_rng(0)
    dense = np.ones((CLIQUE, CLIQUE)) - np.eye(CLIQUE)
    clique = sp.csr_matrix(dense)
    features = rng.normal(size=(CLIQUE, DIM))

    # GCN-style random-walk aggregation over N ∪ {v} (Eq. 1's inductive
    # variant), applied twice like the paper's 2-layer models.
    gcn_agg = row_normalize(clique + sp.eye(CLIQUE, format="csr"))
    once_agg = np.asarray(gcn_agg @ features)
    twice_agg = np.asarray(gcn_agg @ once_agg)

    # SAO over the same clique, two layers.
    layer1 = SAOLayer(DIM, DIM, att_dim=4, rng=rng)
    layer2 = SAOLayer(DIM, DIM, att_dim=4, rng=rng)
    sao_agg = neighbor_mean_matrix(clique)
    sao_out = layer2(layer1(Tensor(features), sao_agg), sao_agg).numpy()

    # Influence distribution of a 2-layer linear GCN on the clique: Theorem 1
    # predicts near-uniform 1/m mass per node.
    linear = Linear(DIM, DIM, rng, bias=False)
    forward = lambda x: spmm(gcn_agg, linear(spmm(gcn_agg, x)))
    gcn_influence = influence_distribution(forward, features, node=0)

    sao_forward = lambda x: layer2(layer1(x, sao_agg), sao_agg)
    sao_influence = influence_distribution(sao_forward, features, node=0)
    return {
        "input_spread": spread(features),
        "gcn_spread_2layers": spread(twice_agg),
        "sao_spread_2layers": spread(sao_out),
        "gcn_influence": gcn_influence,
        "sao_influence": sao_influence,
    }


def test_theorem1_oversmoothing(benchmark):
    result = once(benchmark, run_experiment)
    emit_header(f"Theorem 1 — over-smoothing on an m={CLIQUE} clique")
    emit(f"embedding spread: input {result['input_spread']:.2f}")
    emit(
        f"  after 2 GCN aggregations: {result['gcn_spread_2layers']:.4f}"
        f"  (collapse ratio {result['gcn_spread_2layers'] / result['input_spread']:.4f})"
    )
    emit(
        f"  after 2 SAO layers:       {result['sao_spread_2layers']:.4f}"
        f"  (ratio {result['sao_spread_2layers'] / result['input_spread']:.4f})"
    )
    uniform = 1.0 / CLIQUE
    gcn_dev = np.abs(result["gcn_influence"] - uniform).max()
    emit(
        f"influence distribution of node 0 (uniform would be {uniform:.2f}):"
    )
    emit(
        f"  GCN: self {result['gcn_influence'][0]:.3f}, max deviation from"
        f" uniform {gcn_dev:.3f}"
    )
    emit(f"  SAO: self {result['sao_influence'][0]:.3f}")
    emit()
    emit("Paper: Theorem 1 — GCN gives every clique node the same expected")
    emit("influence (1/m) and identical hidden features; SAO keeps self-identity.")

    # Shape 1: GCN collapses the clique far more than SAO does.
    assert result["gcn_spread_2layers"] < 0.2 * result["input_spread"]
    assert result["sao_spread_2layers"] > 2 * result["gcn_spread_2layers"]
    # Shape 2: GCN influence is near-uniform across the clique; SAO's
    # self-influence clearly exceeds the uniform share.
    assert gcn_dev < 0.1
    assert result["sao_influence"][0] > 1.5 * uniform
