"""E14 — Section VI-E: online A/B test against the production rule system.

Paper: over one month of live traffic, the test group (original risk system
+ Turbo at threshold 0.85) shows a fraud ratio 23.19 % lower than the
baseline group (original system alone); Turbo's online precision is 92.0 %
and recall 42.8 % (behind the rule system, on its survivors).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import default_scorecard
from repro.system import TurboConfig, deploy_turbo, run_ab_test

from _shared import SCALE, WINDOWS, d1_dataset, emit, emit_header, once


def run_replay():
    dataset = d1_dataset()
    turbo, data = deploy_turbo(
        dataset,
        TurboConfig(windows=WINDOWS, train_epochs=30, hidden=(32, 16), seed=0),
    )
    # Replay only held-out users' applications: the online system must not
    # be graded on users it trained on.
    test_uids = {data.nodes[i] for i in data.test_idx}
    transactions = [t for t in dataset.transactions if t.uid in test_uids]
    scorecard = default_scorecard(decision_threshold=0.6)
    result = run_ab_test(
        turbo, scorecard, dataset, transactions, np.random.default_rng(0)
    )
    return result


def test_sec6e_online_abtest(benchmark):
    result = once(benchmark, run_replay)
    emit_header(f"Section VI-E — online A/B test replay (scale={SCALE})")
    emit(
        f"  baseline group: {result.n_baseline} applications,"
        f" {result.baseline_accepted} accepted,"
        f" fraud ratio {100 * result.baseline_fraud_ratio:.2f}%"
    )
    emit(
        f"  test group:     {result.n_test} applications,"
        f" {result.test_accepted} accepted,"
        f" fraud ratio {100 * result.test_fraud_ratio:.2f}%"
    )
    emit(f"  fraud-ratio reduction: {100 * result.fraud_ratio_reduction:.1f}%")
    emit(
        f"  Turbo online precision {100 * result.online_precision:.1f}%,"
        f" recall {100 * result.online_recall:.1f}%"
    )
    emit()
    emit("Paper: fraud ratio reduced by 23.19%; online precision 92.0%,")
    emit("recall 42.8% (measured behind the production rule system).")

    # Shape 1: layering Turbo on the rule system reduces the accepted-set
    # fraud ratio by at least the paper's 23 %.
    assert result.fraud_ratio_reduction >= 0.23, result.fraud_ratio_reduction
    # Shape 2: at the high 0.85 threshold, precision stays high.
    assert result.online_precision >= 0.6
    # Shape 3: the baseline (rules only) still leaks fraud — the gap Turbo
    # exists to close.
    assert result.baseline_fraud_ratio > 0.0
