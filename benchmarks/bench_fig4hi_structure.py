"""E8 — Fig. 4h-i: structural difference between fraud and normal nodes.

Fig. 4h: the average degree of fraudster nodes' n-hop neighbours exceeds
normal nodes'; Fig. 4i: the gap widens when edge weights are considered.
"""

from __future__ import annotations

from repro.eval.empirical import hop_degrees
from repro.eval.reporting import format_series

from _shared import SCALE, d1_experiment, emit, emit_header, once

MAX_HOPS = 2


def run_structure():
    data = d1_experiment()
    labels = data.dataset.labels
    result = {}
    for weighted in (False, True):
        result[weighted] = {
            "fraud": hop_degrees(
                data.bn, labels, fraud=True, max_hops=MAX_HOPS, weighted=weighted
            ),
            "normal": hop_degrees(
                data.bn, labels, fraud=False, max_hops=MAX_HOPS, weighted=weighted
            ),
        }
    return result


def test_fig4hi_structure(benchmark):
    result = once(benchmark, run_structure)
    hops = list(range(MAX_HOPS + 1))
    emit_header(f"Fig. 4h — mean degree of n-hop neighbours (scale={SCALE})")
    for name, series in result[False].items():
        emit("  " + format_series(name, hops, series, precision=1))
    emit_header("Fig. 4i — mean weighted degree of n-hop neighbours")
    for name, series in result[True].items():
        emit("  " + format_series(name, hops, series, precision=1))
    emit()
    emit("Paper shape: fraud neighbourhoods have larger degrees; the gap is")
    emit("amplified under edge weights.")

    plain, weighted = result[False], result[True]
    # Shape 1: fraud nodes (hop 0) out-degree normal nodes, plain and
    # weighted.
    assert plain["fraud"][0] > plain["normal"][0]
    assert weighted["fraud"][0] > weighted["normal"][0]
    # Shape 2: the weighted gap holds up (the paper reports it *augmented*;
    # on synthetic data household evening co-presence accumulates long-run
    # weight, so we assert the weighted ratio stays within 75% of the plain
    # ratio rather than strictly above it — see EXPERIMENTS.md).
    plain_ratio = plain["fraud"][0] / max(plain["normal"][0], 1e-9)
    weighted_ratio = weighted["fraud"][0] / max(weighted["normal"][0], 1e-9)
    assert weighted_ratio > 0.75 * plain_ratio
    # Shape 3: the fraud 1-hop neighbourhood is denser than the normal one
    # under weights (ring cliques).
    assert weighted["fraud"][1] > weighted["normal"][1]
