"""Hot-path perf harness: BN export, k-hop sampling, induction, epoch time.

Times the vectorized BN→GNN fast path against the retained reference
implementations at a 50k-node synthetic scale and writes the results to
``BENCH_perf_hotpaths.json`` in the repository root, establishing the perf
trajectory for future PRs.

Two synthetic graphs are used, matching the two regimes the paper's BN
exhibits (Section III):

* a sparse random graph with public-resource-style hubs (WiFi/locations
  shared by hundreds of users) — stresses fanout capping and drives the
  sampling + induction workloads;
* a clique-community graph (implicit relations connect every pair of users
  sharing a resource, Theorem 1) — drives the training-epoch workload,
  where k-hop expansion keeps re-visiting mostly-seen clique members.

Run it either way::

    pytest -m slow benchmarks/bench_perf_hotpaths.py      # as a slow test
    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py   # as a script

Acceptance gates run through the uniform ``_shared.check_gates`` contract
(shared with ``bench_bn_ingest``): each gated ratio prints its delta
against the previously committed JSON and both modes exit nonzero when any
gate regresses — the ≥5× aggregate pipeline and ≥2× epoch targets plus
not-slower floors on every other vectorized path.  Scale knobs:

* ``REPRO_BENCH_HOTPATH_NODES`` — node count (default 50 000);
* ``REPRO_BENCH_HOTPATH_REPEATS`` — timing repeats (default 3, best-of).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp

from repro import nn
from repro.core import (
    HAG,
    induced_adjacencies,
    induced_adjacencies_reference,
    neighbor_mean_matrix,
    prepare_aggregators,
    sample_khop_nodes,
    sample_khop_nodes_reference,
)
from repro.datagen import BehaviorType
from repro.network import (
    BehaviorNetwork,
    typed_adjacency,
    typed_adjacency_reference,
)

from _shared import Gate, check_gates, emit, emit_header

N_NODES = int(os.environ.get("REPRO_BENCH_HOTPATH_NODES", "50000"))
REPEATS = int(os.environ.get("REPRO_BENCH_HOTPATH_REPEATS", "3"))
EDGE_TYPES = tuple(BehaviorType)[:3]
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf_hotpaths.json"

# Serving-style minibatch workloads (paper protocol: 2-hop computation
# subgraphs; the 3-hop variants document how the gap widens with depth).
MB_BATCH = 256
MB_BATCHES = 4
MB_FANOUT = 10
COHORT_SIZE = 4096

# Training-epoch workload on the clique-community graph.
EPOCH_CLIQUE = 8
EPOCH_CROSS_FRAC = 0.02
EPOCH_BATCH = 512
EPOCH_TRAIN = 2048
EPOCH_HOPS = 2
EPOCH_FANOUT = 5


def best_of(fn, repeats: int = REPEATS) -> float:
    """Best wall-clock of ``repeats`` runs (reduces scheduler noise)."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


# ----------------------------------------------------------------------
# Synthetic 50k-node workloads
# ----------------------------------------------------------------------
def synthetic_bn(n: int, seed: int = 0) -> BehaviorNetwork:
    """A BN with ``~3n`` typed pairs plus public-resource-style hubs."""
    rng = np.random.default_rng(seed)
    bn = BehaviorNetwork()
    for uid in range(n):
        bn.add_node(uid)
    for t_index, btype in enumerate(EDGE_TYPES):
        u = rng.integers(0, n, size=3 * n)
        v = rng.integers(0, n, size=3 * n)
        keep = u != v
        w = rng.random(keep.sum()) + 0.05
        ts = rng.random(keep.sum()) * 100.0
        for uu, vv, ww, tt in zip(u[keep], v[keep], w, ts):
            bn.add_weight(int(uu), int(vv), btype, float(ww), float(tt))
    return bn


def synthetic_adjacencies(
    n: int, seed: int = 0, hubs: int = 50, hub_degree: int = 400
) -> list[sp.csr_matrix]:
    """Per-type sparse CSR graphs with heavy hubs to stress the fanout.

    ``2n`` random explicit-relation pairs per type (the BN's person-to-person
    edges are sparse) plus ``hubs`` public-resource nodes of degree
    ``hub_degree`` whose rows exercise the wide-segment top-k path.
    """
    rng = np.random.default_rng(seed)
    matrices = []
    for t in range(len(EDGE_TYPES)):
        u = rng.integers(0, n, size=2 * n)
        v = rng.integers(0, n, size=2 * n)
        w = rng.random(len(u)) + 0.05
        hub_u = np.repeat(rng.choice(n, size=hubs, replace=False), hub_degree)
        hub_v = rng.integers(0, n, size=hubs * hub_degree)
        hub_w = rng.random(len(hub_u)) + 0.05
        rows = np.concatenate([u, hub_u])
        cols = np.concatenate([v, hub_v])
        data = np.concatenate([w, hub_w])
        a = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
        a.sum_duplicates()
        matrices.append(a)
    return matrices


def clique_adjacencies(
    n: int, g: int = EPOCH_CLIQUE, cross_frac: float = EPOCH_CROSS_FRAC, seed: int = 7
) -> list[sp.csr_matrix]:
    """Implicit-relation clique communities shared across edge types.

    Section III's implicit relations connect every pair of users who
    touched the same resource, so one shared resource yields the same
    clique under each relation type (with type-specific weights); a small
    fraction of cross-community pairs keeps the graph connected.
    """
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    rows, cols = [], []
    for start in range(0, n - g + 1, g):
        members = perm[start : start + g]
        r = np.repeat(members, g)
        c = np.tile(members, g)
        keep = r != c
        rows.append(r[keep])
        cols.append(c[keep])
    m = int(cross_frac * n)
    base_r = np.concatenate(rows)
    base_c = np.concatenate(cols)
    matrices = []
    for t in range(len(EDGE_TYPES)):
        cross_r = rng.integers(0, n, size=m)
        cross_c = rng.integers(0, n, size=m)
        r = np.concatenate([base_r, cross_r])
        c = np.concatenate([base_c, cross_c])
        w = rng.random(len(r)) + 0.05
        a = sp.coo_matrix((w, (r, c)), shape=(n, n)).tocsr()
        a.sum_duplicates()
        matrices.append(a)
    return matrices


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def bench_adjacency_export(bn: BehaviorNetwork) -> dict:
    nodes = bn.nodes()

    def vector_cold():
        bn._snapshot = None  # force a rebuild: cold = snapshot + export
        typed_adjacency(bn, nodes, EDGE_TYPES)

    reference_s = best_of(lambda: typed_adjacency_reference(bn, nodes, EDGE_TYPES))
    cold_s = best_of(vector_cold)
    warm_s = best_of(lambda: typed_adjacency(bn, nodes, EDGE_TYPES))
    return {
        "reference_s": reference_s,
        "vectorized_cold_s": cold_s,
        "vectorized_warm_s": warm_s,
        "speedup_cold": reference_s / cold_s,
        "speedup_warm": reference_s / warm_s,
    }


def bench_sampling_induction(adjacencies: list[sp.csr_matrix], rng) -> dict:
    """Sampling + induction pipeline across serving-style workloads.

    Each workload times the two hot-path stages separately and as a
    pipeline.  The ``aggregate`` entry pools all workloads (total reference
    pipeline time over total vectorized pipeline time) — that pooled ratio
    is the ISSUE's ≥5× acceptance gate.  Induction is near-parity by
    construction (the reference ``np.ix_`` path is already C-level scipy),
    so the pipeline ratios are sampling-driven.
    """
    seed_batches = [
        rng.choice(N_NODES, size=MB_BATCH, replace=False) for _ in range(MB_BATCHES)
    ]
    cohort = rng.choice(N_NODES, size=COHORT_SIZE, replace=False)
    workloads = {
        "minibatch_hop2": (seed_batches, 2, MB_FANOUT),
        "minibatch_hop3": (seed_batches, 3, MB_FANOUT),
        "cohort_hop2": ([cohort], 2, None),
        "cohort_hop3": ([cohort], 3, None),
    }

    results = {}
    totals = {"ref_sample": 0.0, "vec_sample": 0.0, "ref_induce": 0.0, "vec_induce": 0.0}
    for name, (batches, hops, fanout) in workloads.items():
        node_sets = [sample_khop_nodes(adjacencies, b, hops, fanout) for b in batches]

        def run_sample(fn):
            for b in batches:
                fn(adjacencies, b, hops, fanout)

        def run_induce(fn):
            for nodes in node_sets:
                fn(adjacencies, nodes)

        ref_sample = best_of(lambda: run_sample(sample_khop_nodes_reference))
        vec_sample = best_of(lambda: run_sample(sample_khop_nodes))
        ref_induce = best_of(lambda: run_induce(induced_adjacencies_reference))
        vec_induce = best_of(lambda: run_induce(induced_adjacencies))
        totals["ref_sample"] += ref_sample
        totals["vec_sample"] += vec_sample
        totals["ref_induce"] += ref_induce
        totals["vec_induce"] += vec_induce
        results[name] = {
            "hops": hops,
            "fanout": fanout,
            "subgraph_nodes": int(sum(len(nodes) for nodes in node_sets)),
            "sample_reference_s": ref_sample,
            "sample_vectorized_s": vec_sample,
            "sample_speedup": ref_sample / vec_sample,
            "induce_reference_s": ref_induce,
            "induce_vectorized_s": vec_induce,
            "pipeline_reference_s": ref_sample + ref_induce,
            "pipeline_vectorized_s": vec_sample + vec_induce,
            "pipeline_speedup": (ref_sample + ref_induce) / (vec_sample + vec_induce),
        }

    ref_pipeline = totals["ref_sample"] + totals["ref_induce"]
    vec_pipeline = totals["vec_sample"] + totals["vec_induce"]
    results["aggregate"] = {
        "sample_speedup": totals["ref_sample"] / totals["vec_sample"],
        "pipeline_reference_s": ref_pipeline,
        "pipeline_vectorized_s": vec_pipeline,
        "pipeline_speedup": ref_pipeline / vec_pipeline,
    }
    return results


def _make_model(in_dim: int) -> HAG:
    return HAG(
        in_dim,
        n_types=len(EDGE_TYPES),
        rng=np.random.default_rng(0),
        hidden=(8,),
        att_dim=4,
        cfo_att_dim=4,
        cfo_out_dim=4,
        mlp_hidden=(4,),
    )


def _run_epoch(
    model: HAG,
    adjacencies,
    features: np.ndarray,
    labels: np.ndarray,
    train_idx: np.ndarray,
    sampler,
    inducer,
    aggregator_factory,
) -> None:
    # Deterministic top-k fanout: the regime the vectorization targets.
    # (Weighted draws must consume the rng stream per oversized segment for
    # reference parity, so they stay loop-shaped on both paths; the
    # equivalence tests cover them.)
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    for start in range(0, len(train_idx), EPOCH_BATCH):
        batch = train_idx[start : start + EPOCH_BATCH]
        nodes = sampler(adjacencies, batch, EPOCH_HOPS, EPOCH_FANOUT, None)
        aggregators = aggregator_factory(inducer(adjacencies, nodes))
        x = nn.Tensor(features[nodes])
        optimizer.zero_grad()
        logits = model.forward(x, aggregators)
        loss = nn.bce_with_logits(
            logits.index_select(np.arange(len(batch))), labels[batch]
        )
        loss.backward()
        optimizer.step()


def bench_epoch(adjacencies: list[sp.csr_matrix], n: int) -> dict:
    rng = np.random.default_rng(3)
    features = rng.normal(size=(n, 8))
    labels = (rng.random(n) < 0.1).astype(np.float64)
    train_idx = rng.choice(n, size=EPOCH_TRAIN, replace=False)

    def reference_epoch():
        _run_epoch(
            _make_model(features.shape[1]),
            adjacencies,
            features,
            labels,
            train_idx,
            sample_khop_nodes_reference,
            induced_adjacencies_reference,
            lambda adjs: [neighbor_mean_matrix(a) for a in adjs],  # raw CSR path
        )

    def fast_epoch():
        _run_epoch(
            _make_model(features.shape[1]),
            adjacencies,
            features,
            labels,
            train_idx,
            sample_khop_nodes,
            induced_adjacencies,
            prepare_aggregators,
        )

    reference_s = best_of(reference_epoch)
    vectorized_s = best_of(fast_epoch)
    return {
        "clique_size": EPOCH_CLIQUE,
        "batch": EPOCH_BATCH,
        "train_nodes": EPOCH_TRAIN,
        "hops": EPOCH_HOPS,
        "fanout": EPOCH_FANOUT,
        "reference_s": reference_s,
        "vectorized_s": vectorized_s,
        "speedup": reference_s / vectorized_s,
    }


def bench_transpose_counter(adjacencies: list[sp.csr_matrix]) -> dict:
    """Pin the spmm transpose contract at benchmark scale."""
    n = adjacencies[0].shape[0]
    sub = induced_adjacencies(adjacencies, np.arange(min(n, 2000)))
    aggregators = prepare_aggregators(sub)
    model = _make_model(16)
    x = np.random.default_rng(0).normal(size=(sub[0].shape[0], 16))

    nn.reset_transpose_conversion_count()
    model.predict_proba(x, aggregators)
    no_grad_count = nn.transpose_conversion_count()

    nn.reset_transpose_conversion_count()
    for _ in range(3):  # three training steps reuse the same aggregators
        logits = model.forward(nn.Tensor(x), aggregators)
        logits.sum().backward()
    training_count = nn.transpose_conversion_count()
    nn.reset_transpose_conversion_count()
    return {
        "no_grad_conversions": no_grad_count,
        "training_conversions": training_count,
        "aggregators": len(aggregators),
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_harness() -> dict:
    emit_header(f"Hot-path perf harness — {N_NODES} nodes, {len(EDGE_TYPES)} types")
    rng = np.random.default_rng(0)

    emit("building synthetic BN + adjacencies ...")
    bn = synthetic_bn(min(N_NODES, 20000))  # BN build is Python-loop bound
    adjacencies = synthetic_adjacencies(N_NODES)

    sections = {}
    sections["adjacency_export"] = bench_adjacency_export(bn)
    emit(
        "adjacency export   ref {reference_s:.3f}s  cold {vectorized_cold_s:.3f}s "
        "({speedup_cold:.1f}x)  warm {vectorized_warm_s:.3f}s ({speedup_warm:.1f}x)".format(
            **sections["adjacency_export"]
        )
    )
    sections["sampling_induction"] = bench_sampling_induction(adjacencies, rng)
    for name, row in sections["sampling_induction"].items():
        if name == "aggregate":
            continue
        emit(
            f"{name:18s} sample {row['sample_reference_s'] * 1e3:7.1f}ms → "
            f"{row['sample_vectorized_s'] * 1e3:6.1f}ms ({row['sample_speedup']:.1f}x)  "
            f"pipeline {row['pipeline_speedup']:.1f}x"
        )
    agg = sections["sampling_induction"]["aggregate"]
    emit(
        "aggregate          sample {sample_speedup:.1f}x  pipeline "
        "{pipeline_reference_s:.3f}s → {pipeline_vectorized_s:.3f}s "
        "({pipeline_speedup:.1f}x)".format(**agg)
    )

    clique = clique_adjacencies(N_NODES)
    sections["epoch"] = bench_epoch(clique, N_NODES)
    emit(
        "sampled epoch      ref {reference_s:.3f}s  vec {vectorized_s:.3f}s "
        "({speedup:.1f}x)  [clique graph, g={clique_size}]".format(**sections["epoch"])
    )
    sections["spmm_transpose"] = bench_transpose_counter(adjacencies)
    emit(
        "spmm transposes    no_grad {no_grad_conversions}  "
        "training(3 steps) {training_conversions} (aggregators {aggregators})".format(
            **sections["spmm_transpose"]
        )
    )

    workload_rows = [
        row
        for name, row in sections["sampling_induction"].items()
        if name != "aggregate"
    ]
    result = {
        "n_nodes": N_NODES,
        "n_edge_types": len(EDGE_TYPES),
        "sections": sections,
    }
    gates = [
        Gate("aggregate_pipeline_speedup", agg["pipeline_speedup"], 5.0),
        Gate("epoch_speedup", sections["epoch"]["speedup"], 2.0),
        Gate(
            "adjacency_export_warm_not_slower",
            sections["adjacency_export"]["speedup_warm"],
            1.0,
        ),
        Gate(
            "workload_pipelines_not_slower",
            min(row["pipeline_speedup"] for row in workload_rows),
            1.0,
        ),
    ]
    gates_ok = check_gates(gates, result, RESULT_PATH)
    # Legacy summary flags (kept for downstream readers of the JSON).
    result["vectorized_not_slower"] = all(
        result["gates"][name]["passed"]
        for name in (
            "adjacency_export_warm_not_slower",
            "workload_pipelines_not_slower",
        )
    ) and result["gates"]["epoch_speedup"]["value"] >= 1.0
    result["issue1_targets_met"] = (
        result["gates"]["aggregate_pipeline_speedup"]["passed"]
        and result["gates"]["epoch_speedup"]["passed"]
    )
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


@pytest.mark.slow
def test_perf_hotpaths():
    result = run_harness()
    assert result["gates_met"], (
        "hot-path perf gates failed — see gate lines above: "
        f"{json.dumps(result['gates'], indent=2)}"
    )
    assert result["sections"]["spmm_transpose"]["no_grad_conversions"] == 0
    assert (
        result["sections"]["spmm_transpose"]["training_conversions"]
        <= result["sections"]["spmm_transpose"]["aggregators"]
    )


if __name__ == "__main__":
    outcome = run_harness()
    if not outcome["gates_met"]:
        emit("FAIL: hot-path perf gates not met")
        sys.exit(1)
    emit("OK")
