"""Full-graph lambda materialization perf harness: the sweep that scales.

Scales the lambda batch tier to shard-relevant size (default 120 000 users,
600 000 edge contributions streamed chunk-by-chunk via
:mod:`repro.datagen.scale`, never materialized) and measures the PR-9
materialization stack end to end.  Five sections, written to
``BENCH_lambda_fullgraph.json`` in the repository root:

* ``fullgraph_sweep`` — one :class:`~repro.network.sampled_graph.SampledGraph`
  build plus one :func:`~repro.core.lambda_infer.materialize_fullgraph`
  sweep over every covered user (the gated configuration must cover
  ≥ 100 000 users).  The sweep's scoring slices are executed one by one
  and timed individually — exactly the work one
  :class:`~repro.system.ShardWorkerPool` worker runs against the
  shared-memory inputs — and combined as the **deployment clock**:
  ``sampled-graph build + max(slice) + serial assemble`` (splice + layer
  pass).  The container pins this harness to one CPU, so wall-clock
  multi-process numbers would measure the scheduler, not the algorithm;
  per-slice work timed individually and combined as ``max(slices)`` is
  what 4 otherwise-idle cores execute (the same convention as
  ``bench_sharding``).  The ``pool_sweep`` section proves the real forked
  path bit-exact; the single-process wall clock is reported alongside;
* ``replay_baseline`` — the legacy per-user union replay
  (:func:`~repro.core.lambda_infer.materialize`) timed on a uniform target
  sample and extrapolated linearly to the full population.  The replay is
  the system the lambda tier actually ran before this change: one process,
  one union-frontier batch against the live BN object — it cannot be
  dispatched to pool workers, which hold shared-memory snapshots, not the
  BN;
* ``state_parity`` — the replay sample rerun through the full-graph path:
  every :class:`~repro.core.lambda_infer.HAGState` array (scores, subgraph
  CSR, every layer) must be **byte-identical**, and the big sweep's rows
  for those targets must equal the replay's bits (chunk/slice invariance
  at scale);
* ``pool_sweep`` — the same sweep sharded across 4 forked workers over
  shared memory (:func:`~repro.system.publish_materialize_inputs` +
  :func:`~repro.system.fullgraph_executor`): byte-identical to the
  in-process sweep, and the :class:`SampledGraph` built off the 4-shard
  merged index is byte-identical to the single-network build;
* ``incremental_refresh`` — a small random delta batch, then
  :func:`~repro.core.lambda_infer.rematerialize` against the big sweep's
  state: scores and subgraph CSR must be byte-equal a fresh full pass
  while only the affected cone is recomputed.

Run it either way::

    pytest -m slow benchmarks/bench_lambda_fullgraph.py          # slow test
    PYTHONPATH=src python benchmarks/bench_lambda_fullgraph.py   # script

Acceptance gates (uniform contract via ``_shared.check_gates``; both modes
exit nonzero when a gate regresses):

* covered users ≥ 100 000 (``covered_scale`` = covered / 100 000 ≥ 1);
* full-graph sweep deployment clock (sampled-graph build and the serial
  assemble included, scoring sharded over 4 worker slices) ≥ 5× faster
  than the linearly extrapolated single-process per-user replay;
* replay-vs-fullgraph state parity == 1.0 (bit-for-bit);
* 4-worker pool sweep parity == 1.0 (bit-for-bit);
* incremental work reduction ≥ 10× (covered rows / recomputed rows on the
  small delta);
* incremental parity == 1.0 (scores + subgraph CSR byte-equal the fresh
  full pass; layer rows equal within numerics, untouched rows byte-copied).

Scale knobs (environment variables): ``REPRO_BENCH_LFG_USERS``,
``REPRO_BENCH_LFG_EDGES``, ``REPRO_BENCH_LFG_CHUNK``,
``REPRO_BENCH_LFG_REPLAY_SAMPLE``, ``REPRO_BENCH_LFG_POOL_TARGETS``,
``REPRO_BENCH_LFG_DELTA_EDGES``.
"""

from __future__ import annotations

import gc
import os
import pickle
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import HAG, materialize
from repro.core.lambda_infer import (
    materialize_fullgraph,
    rematerialize,
    score_slice,
)
from repro.datagen import ScaleConfig, edge_stream
from repro.features.pipeline import StandardScaler
from repro.network import (
    BehaviorNetwork,
    ShardedBehaviorNetwork,
    build_sampled_graph,
)
from repro.system import (
    ShardRouter,
    ShardWorkerPool,
    fullgraph_executor,
    publish_materialize_inputs,
)

from _shared import Gate, check_gates, emit, emit_header

N_USERS = int(os.environ.get("REPRO_BENCH_LFG_USERS", "120000"))
N_EDGES = int(os.environ.get("REPRO_BENCH_LFG_EDGES", "600000"))
CHUNK_EDGES = int(os.environ.get("REPRO_BENCH_LFG_CHUNK", "200000"))
REPLAY_SAMPLE = int(os.environ.get("REPRO_BENCH_LFG_REPLAY_SAMPLE", "1024"))
POOL_TARGETS = int(os.environ.get("REPRO_BENCH_LFG_POOL_TARGETS", "2048"))
DELTA_EDGES = int(os.environ.get("REPRO_BENCH_LFG_DELTA_EDGES", "8"))
HOPS = 2
FANOUT = 10
FEATURE_DIM = 6
SCORE_CHUNK = 512
POOL_WORKERS = 4
POOL_SLICES = 8
#: the sweep must cover at least this many users for the gated run
COVERAGE_FLOOR = 100_000
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_lambda_fullgraph.json"


def workload_config() -> ScaleConfig:
    """The streamed workload under test (chunked, never materialized)."""
    return ScaleConfig(n_users=N_USERS, n_edges=N_EDGES, chunk_edges=CHUNK_EDGES)


def feature_matrix(config: ScaleConfig) -> np.ndarray:
    """Deterministic uid-indexed feature rows for the sweep."""
    rng = np.random.default_rng(np.random.SeedSequence([config.seed, 99]))
    return rng.standard_normal((config.n_users, FEATURE_DIM))


def model_bundle(config: ScaleConfig, features: np.ndarray) -> dict:
    """A seeded HAG + fitted scaler (inference cost equals a trained one)."""
    model = HAG(
        FEATURE_DIM,
        n_types=len(config.edge_types),
        rng=np.random.default_rng(0),
        hidden=(16, 8),
        att_dim=8,
        cfo_att_dim=8,
        cfo_out_dim=4,
        mlp_hidden=(8,),
    )
    scaler = StandardScaler().fit(features[: min(len(features), 50_000)])
    return {
        "model": model,
        "scaler": scaler,
        "edge_type_order": list(config.edge_types),
    }


def ingest_paired(config: ScaleConfig) -> tuple[BehaviorNetwork, ShardedBehaviorNetwork]:
    """Stream the workload into the single BN and the 4-shard BN at once."""
    bn = BehaviorNetwork()
    sharded = ShardedBehaviorNetwork(POOL_WORKERS)
    for chunk in edge_stream(config):
        for network in (bn, sharded):
            network.add_weights(
                chunk.lo,
                chunk.hi,
                chunk.codes,
                chunk.weights,
                chunk.timestamp,
                btype_table=config.edge_types,
            )
    return bn, sharded


class Sweep:
    """Everything one materialization call needs, bundled once."""

    def __init__(self, bn, config, bundle, features):
        self.bn = bn
        self.config = config
        self.model = bundle["model"]
        self.scaler = bundle["scaler"]
        self.types = bundle["edge_type_order"]
        self.features = features
        self.now = (config.span_days + 1.0) * 86_400.0

    def feature_fn(self, _k, nodes):
        return self.features[np.asarray(nodes, dtype=np.int64)]

    def rows(self, targets: np.ndarray) -> np.ndarray:
        """Scaled per-target feature rows (the layer pass input)."""
        return self.scaler.transform(self.features[targets])

    def ids(self, targets) -> tuple[list[int], list[int], list[float]]:
        targets = [int(t) for t in targets]
        return targets, [7 * t + 1 for t in targets], [self.now] * len(targets)

    def fullgraph(self, targets, **kwargs):
        uids, txn_ids, nows = self.ids(targets)
        return materialize_fullgraph(
            self.model, self.bn, uids, txn_ids, nows, self.feature_fn,
            hops=HOPS, fanout=FANOUT, edge_type_order=self.types,
            transform=self.scaler.transform, chunk=SCORE_CHUNK,
            layer_features=self.rows(np.asarray(uids, dtype=np.int64)),
            **kwargs,
        )

    def replay(self, targets):
        uids, txn_ids, nows = self.ids(targets)
        return materialize(
            self.model, self.bn, uids, txn_ids, nows, self.feature_fn,
            hops=HOPS, fanout=FANOUT, edge_type_order=self.types,
            transform=self.scaler.transform, chunk=SCORE_CHUNK,
            layer_features=self.rows(np.asarray(uids, dtype=np.int64)),
        )

    def incremental(self, prior, targets, sampled, touched):
        uids, txn_ids, nows = self.ids(targets)
        target_arr = np.asarray(uids, dtype=np.int64)

        def layer_row_fn(rows):
            return self.rows(target_arr[np.asarray(rows, dtype=np.int64)])

        return rematerialize(
            self.model, self.bn, prior, uids, txn_ids, nows, self.feature_fn,
            hops=HOPS, fanout=FANOUT, edge_type_order=self.types,
            transform=self.scaler.transform, chunk=SCORE_CHUNK,
            sampled=sampled, touched=touched, layer_row_fn=layer_row_fn,
        )


def timed_slice_executor(sweep: Sweep, sampled, targets, slice_s: list[float]):
    """Run each scoring slice in-process, timed individually.

    Executes exactly the work one pool worker performs against the
    shared-memory inputs (same :func:`score_slice`, same arguments the
    worker's ``materialize`` command passes), appending each slice's
    seconds to ``slice_s`` so the harness can combine them as the
    deployment clock (``max`` over slices = concurrent workers on
    otherwise-idle cores).
    """
    uids = np.asarray(targets, dtype=np.int64)
    mask = sampled.allowed_mask(None)

    def executor(bounds):
        out = []
        for lo, hi in bounds:
            start = time.perf_counter()
            out.append(
                score_slice(
                    sweep.model, sampled, uids,
                    np.arange(lo, hi, dtype=np.int64),
                    sweep.feature_fn,
                    hops=HOPS, edge_type_order=sweep.types,
                    allowed_mask=mask, transform=sweep.scaler.transform,
                    chunk=SCORE_CHUNK,
                )
            )
            slice_s.append(time.perf_counter() - start)
        return out

    return executor


def state_mismatches(got, want) -> list[str]:
    """Names of HAGState arrays that are not byte-identical."""
    got_arrays, want_arrays = got.to_arrays(), want.to_arrays()
    if got_arrays.keys() != want_arrays.keys():
        return ["<array-set>"]
    return [
        name
        for name in want_arrays
        if got_arrays[name].tobytes() != want_arrays[name].tobytes()
    ]


def bench_replay_and_parity(sweep: Sweep, big_state, targets, deploy_s) -> dict:
    """Time the legacy replay on a sample; pin bit-exactness both ways."""
    rng = np.random.default_rng(np.random.SeedSequence([sweep.config.seed, 7]))
    sample = np.sort(
        rng.choice(targets, size=min(REPLAY_SAMPLE, len(targets)), replace=False)
    )

    start = time.perf_counter()
    replay_state, replay_stats = sweep.replay(sample)
    replay_s = time.perf_counter() - start
    replay_est_s = replay_s * len(targets) / len(sample)

    sample_state, sample_stats, _ = sweep.fullgraph(sample)
    mismatched = state_mismatches(sample_state, replay_state)
    assert sample_stats == replay_stats, "sample stats diverged from replay"

    # The big sweep's rows for the sampled targets must carry the same bits
    # (per-target scores are chunk/slice invariant by construction).
    rows = np.searchsorted(big_state.node_ids, sample)
    if big_state.scores[rows].tobytes() != replay_state.scores.tobytes():
        mismatched.append("big-sweep scores")
    for row, k in zip(rows, range(len(sample))):
        lo, hi = big_state.subgraph_indptr[row], big_state.subgraph_indptr[row + 1]
        slo, shi = replay_state.subgraph_indptr[k], replay_state.subgraph_indptr[k + 1]
        big_nodes = big_state.subgraph_nodes[lo:hi]
        if big_nodes.tobytes() != replay_state.subgraph_nodes[slo:shi].tobytes():
            mismatched.append(f"big-sweep subgraph row {k}")
            break

    return {
        "sample": int(len(sample)),
        "replay_sample_s": replay_s,
        "replay_extrapolated_s": replay_est_s,
        "fullgraph_deploy_s": deploy_s,
        "speedup": replay_est_s / deploy_s,
        "mismatched_arrays": mismatched,
        "parity": 1.0 if not mismatched else 0.0,
    }


def bench_pool_sweep(sweep: Sweep, sharded, sampled, bundle, targets) -> dict:
    """Shard the sweep across real forked workers; byte-equal in-process."""
    rng = np.random.default_rng(np.random.SeedSequence([sweep.config.seed, 13]))
    pool_targets = np.sort(
        rng.choice(targets, size=min(POOL_TARGETS, len(targets)), replace=False)
    )

    # The sampled graph the workers score against must not depend on the
    # partitioning: the 4-shard merged-index build carries the same bytes.
    sharded_arrays, sharded_meta = build_sampled_graph(sharded, FANOUT).to_payload()
    base_arrays, base_meta = sampled.to_payload()
    sampled_parity = sharded_meta == base_meta and all(
        sharded_arrays[name].tobytes() == base_arrays[name].tobytes()
        for name in base_arrays
    )

    reference, reference_stats, _ = sweep.fullgraph(pool_targets, sampled=sampled)
    payload = pickle.dumps(
        {
            "model": bundle["model"],
            "scaler": bundle["scaler"],
            "edge_type_order": bundle["edge_type_order"],
        }
    )
    router = ShardRouter(sharded)
    try:
        router.ensure_published()
        handle = publish_materialize_inputs(
            router.store,
            "lambda-mat",
            sampled,
            pool_targets.astype(np.int64),
            sweep.features[sampled.node_ids],
            sweep.features[pool_targets.astype(np.int64)],
            hops=HOPS,
            chunk=SCORE_CHUNK,
        )
        with ShardWorkerPool(
            router.segments, n_workers=POOL_WORKERS, model_payload=payload
        ) as pool:
            attached = [
                pool.materialize_attach(wid, handle.segment)
                for wid in range(POOL_WORKERS)
            ]
            assert all(v == sampled.version for v in attached), (
                f"worker attach versions {attached} != sampled v{sampled.version}"
            )
            start = time.perf_counter()
            pooled, pooled_stats, mstats = sweep.fullgraph(
                pool_targets,
                sampled=sampled,
                executor=fullgraph_executor(pool),
                slices=POOL_SLICES,
            )
            pool_s = time.perf_counter() - start
            workers = pool.alive_count()
    finally:
        router.close()

    mismatched = state_mismatches(pooled, reference)
    assert pooled_stats == reference_stats, "pool sweep stats diverged"
    return {
        "targets": int(len(pool_targets)),
        "workers": workers,
        "slices": mstats.slices,
        "pool_sweep_s": pool_s,
        "sampled_graph_bitexact_across_shards": bool(sampled_parity),
        "mismatched_arrays": mismatched,
        "parity": (
            1.0 if not mismatched and sampled_parity and workers == POOL_WORKERS
            else 0.0
        ),
    }


def bench_incremental(sweep: Sweep, prior, targets) -> dict:
    """A small delta, then the incremental cone vs a fresh full pass."""
    config = sweep.config
    rng = np.random.default_rng(np.random.SeedSequence([config.seed, 21]))
    touched: dict[int, int] = {}
    delta_ts = (config.span_days + 0.5) * 86_400.0
    for _ in range(DELTA_EDGES):
        u = int(rng.integers(0, config.n_users))
        v = int(rng.integers(0, config.n_users - 1))
        v = v + 1 if v >= u else v
        btype = config.edge_types[int(rng.integers(0, len(config.edge_types)))]
        sweep.bn.add_weight(u, v, btype, float(rng.uniform(0.5, 2.0)), delta_ts)
        touched[u] = touched.get(u, 0) + 1
        touched[v] = touched.get(v, 0) + 1

    sampled = build_sampled_graph(sweep.bn, FANOUT)
    start = time.perf_counter()
    fresh, _, _ = sweep.fullgraph(targets, sampled=sampled)
    fresh_s = time.perf_counter() - start

    start = time.perf_counter()
    state, _, mstats = sweep.incremental(prior, targets, sampled, touched)
    incremental_s = time.perf_counter() - start

    mismatched = []
    if state.scores.tobytes() != fresh.scores.tobytes():
        mismatched.append("scores")
    if state.subgraph_indptr.tobytes() != fresh.subgraph_indptr.tobytes():
        mismatched.append("subgraph_indptr")
    if state.subgraph_nodes.tobytes() != fresh.subgraph_nodes.tobytes():
        mismatched.append("subgraph_nodes")
    # Layer rows: untouched rows are byte copies of the prior (pinned by the
    # core tests); against the *fresh* full pass they are equal within
    # numerics only — GEMM reduction order depends on batch shape.
    for name, want in fresh.layers.items():
        if not np.allclose(state.layers[name], want, rtol=1e-9, atol=1e-12):
            mismatched.append(f"layer:{name}")

    work_reduction = mstats.total_rows / max(1, mstats.rows_computed)
    return {
        "delta_edges": DELTA_EDGES,
        "touched_uids": len(touched),
        "rows_computed": mstats.rows_computed,
        "cone_rows": mstats.cone_rows,
        "layer_rows": mstats.layer_rows,
        "total_rows": mstats.total_rows,
        "fresh_fullpass_s": fresh_s,
        "incremental_s": incremental_s,
        "time_reduction": fresh_s / max(1e-9, incremental_s),
        "work_reduction": work_reduction,
        "mismatched_arrays": mismatched,
        "parity": 1.0 if not mismatched else 0.0,
    }


def run_harness(result_path: Path = RESULT_PATH) -> dict:
    config = workload_config()
    emit_header(
        f"lambda full-graph materialization — {config.n_users:,} users, "
        f"{config.n_edges:,} edge contributions, hops={HOPS} fanout={FANOUT}"
    )
    features = feature_matrix(config)
    bundle = model_bundle(config, features)

    ingest_start = time.perf_counter()
    bn, sharded = ingest_paired(config)
    emit(
        f"ingested {config.n_edges:,} contributions into 1 and "
        f"{POOL_WORKERS} shards in {time.perf_counter() - ingest_start:.1f}s"
    )
    sweep = Sweep(bn, config, bundle, features)
    targets = np.asarray(sorted(bn.nodes()), dtype=np.int64)
    covered = int(len(targets))

    # Cyclic GC off while measuring (timeit-style, as in bench_sharding):
    # the heap is acyclic, refcounting reclaims everything.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        sampled = build_sampled_graph(bn, FANOUT)
        sampled_s = time.perf_counter() - start
        slice_s: list[float] = []
        start = time.perf_counter()
        big_state, _, big_mstats = sweep.fullgraph(
            targets,
            sampled=sampled,
            executor=timed_slice_executor(sweep, sampled, targets, slice_s),
            slices=POOL_WORKERS,
        )
        wall_s = time.perf_counter() - start
        # Deployment clock: the 4 slices run concurrently on 4 workers
        # (bit-exactness of that path is pinned by pool_sweep below); the
        # sampled-graph build and the assemble (splice + full-graph layer
        # pass) stay serial.
        assemble_s = max(0.0, wall_s - sum(slice_s))
        deploy_s = sampled_s + max(slice_s) + assemble_s
        single_s = sampled_s + wall_s

        sections = {
            "fullgraph_sweep": {
                "covered_users": covered,
                "sampled_graph_s": sampled_s,
                "slice_s": slice_s,
                "assemble_s": assemble_s,
                "deploy_s": deploy_s,
                "single_process_s": single_s,
                "rows": big_mstats.rows_computed,
                "edges_touched": big_mstats.edges_touched,
                "rows_per_s": big_mstats.rows_computed / wall_s,
            }
        }
        emit(
            f"full sweep     {covered:,} users in {deploy_s:.1f}s deploy "
            f"({single_s:.1f}s single-process, {sampled_s:.1f}s sampled-graph "
            f"build, {len(slice_s)} slices, "
            f"{sections['fullgraph_sweep']['rows_per_s']:,.0f} rows/s, "
            f"{big_mstats.edges_touched:,} induced entries)"
        )

        replay = bench_replay_and_parity(sweep, big_state, targets, deploy_s)
        sections["replay_baseline"] = {
            k: replay[k]
            for k in (
                "sample", "replay_sample_s", "replay_extrapolated_s",
                "fullgraph_deploy_s", "speedup",
            )
        }
        sections["state_parity"] = {
            k: replay[k] for k in ("sample", "mismatched_arrays", "parity")
        }
        emit(
            "replay         {sample} sampled targets in {replay_sample_s:.1f}s "
            "-> {replay_extrapolated_s:.0f}s extrapolated "
            "({speedup:.1f}x the full-sweep deployment clock)".format(**replay)
        )
        emit(
            f"parity         replay vs full-graph: "
            f"{'bit-exact' if replay['parity'] == 1.0 else replay['mismatched_arrays']}"
        )

        sections["pool_sweep"] = bench_pool_sweep(
            sweep, sharded, sampled, bundle, targets
        )
        emit(
            "pool sweep     {targets} targets through {workers} forked workers "
            "({slices} slices, {pool_sweep_s:.1f}s) — "
            "{verdict}".format(
                verdict=(
                    "bit-exact"
                    if sections["pool_sweep"]["parity"] == 1.0
                    else sections["pool_sweep"]["mismatched_arrays"]
                ),
                **{
                    k: sections["pool_sweep"][k]
                    for k in ("targets", "workers", "slices", "pool_sweep_s")
                },
            )
        )
        del sharded
        gc.collect()

        sections["incremental_refresh"] = bench_incremental(
            sweep, big_state, targets
        )
        emit(
            "incremental    {delta_edges} delta edges ({touched_uids} uids) -> "
            "{rows_computed}/{total_rows} rows recomputed "
            "({work_reduction:.0f}x less work, {time_reduction:.0f}x faster, "
            "{incremental_s:.2f}s vs {fresh_fullpass_s:.1f}s)".format(
                **sections["incremental_refresh"]
            )
        )
    finally:
        if gc_was_enabled:
            gc.enable()

    result = {
        "n_users": config.n_users,
        "n_edges": config.n_edges,
        "hops": HOPS,
        "fanout": FANOUT,
        "score_chunk": SCORE_CHUNK,
        "coverage_floor": COVERAGE_FLOOR,
        "sections": sections,
    }
    gates = [
        Gate("covered_scale", covered / COVERAGE_FLOOR, 1.0),
        Gate("fullgraph_speedup", replay["speedup"], 5.0),
        Gate("replay_state_parity", sections["state_parity"]["parity"], 1.0),
        Gate("pool_sweep_parity", sections["pool_sweep"]["parity"], 1.0),
        Gate(
            "incremental_work_reduction",
            sections["incremental_refresh"]["work_reduction"],
            10.0,
        ),
        Gate(
            "incremental_parity", sections["incremental_refresh"]["parity"], 1.0
        ),
    ]
    check_gates(gates, result, result_path)
    return result


@pytest.mark.slow
@pytest.mark.sharding
def test_lambda_fullgraph_perf():
    result = run_harness()
    assert result["gates_met"], (
        "lambda full-graph gates failed — see gate lines above "
        f"(gates: {result['gates']})"
    )


if __name__ == "__main__":
    outcome = run_harness()
    if not outcome["gates_met"]:
        emit("FAIL: lambda full-graph gates not met")
        sys.exit(1)
    emit("OK")
