"""Design ablation — BN construction choices (DESIGN.md §5).

Two choices Algorithm 1 makes that the paper motivates but does not ablate:

* **inverse weight assignment** (``1/N`` per pair) vs uniform weights —
  without the inverse rule, public-resource cliques swamp ring edges;
* **hierarchical time windows** vs a single 1-day window — without the
  hierarchy, a minutes-apart co-occurrence weighs the same as a
  23-hours-apart one.

Measured effect: *edge certainty* — among the heaviest 2 % of (type-
normalized) edges, the fraction that connect two fraudsters.  The inverse
rule exists precisely to keep public-resource cliques from dominating the
heavy end of the weight distribution; the hierarchy exists to push
minute-scale (ring) co-occurrences above day-scale coincidences.
"""

from __future__ import annotations

import numpy as np

from repro.datagen import DAY
from repro.network import BNBuilder, FAST_WINDOWS
from repro.network.normalize import normalized_weight, type_weighted_degrees

from _shared import SCALE, d1_dataset, emit, emit_header, once

TOP_FRACTION = 0.02


def top_edge_purity(bn, labels) -> tuple[float, int]:
    """Fraud-pair share among the heaviest normalized edges."""
    weights, is_fraud_pair = [], []
    degrees = {t: type_weighted_degrees(bn, t) for t in bn.edge_types()}
    for u, v, t, record in bn.iter_edges():
        if u not in labels or v not in labels:
            continue
        w = normalized_weight(record.weight, degrees[t][u], degrees[t][v])
        weights.append(w)
        is_fraud_pair.append(labels[u] == 1 and labels[v] == 1)
    weights = np.asarray(weights)
    is_fraud_pair = np.asarray(is_fraud_pair)
    k = max(1, int(len(weights) * TOP_FRACTION))
    top = np.argsort(-weights)[:k]
    return float(is_fraud_pair[top].mean()), k


def run_ablation():
    dataset = d1_dataset()
    labels = dataset.labels
    variants = {
        "paper (inverse, hierarchy)": BNBuilder(windows=FAST_WINDOWS),
        "uniform weights": BNBuilder(windows=FAST_WINDOWS, weighting="uniform"),
        "single 1-day window": BNBuilder(windows=(DAY,)),
    }
    out = {}
    for name, builder in variants.items():
        bn = builder.build(dataset.logs)
        purity, k = top_edge_purity(bn, labels)
        out[name] = {"purity": purity, "k": k, "edges": bn.num_edges()}
    return out


def test_ablation_bn_design(benchmark):
    results = once(benchmark, run_ablation)
    emit_header(f"Ablation — BN construction design choices (scale={SCALE})")
    emit(f"{'variant':<28}{'top-2% fraud purity':>20}{'k':>7}{'edges':>9}")
    for name, row in results.items():
        emit(f"{name:<28}{row['purity']:>20.3f}{row['k']:>7}{row['edges']:>9}")
    emit()
    emit("Shape: the paper's inverse+hierarchical construction concentrates")
    emit("fraud pairs at the heavy end of the weight distribution more than")
    emit("either ablated variant.")

    paper = results["paper (inverse, hierarchy)"]["purity"]
    uniform = results["uniform weights"]["purity"]
    single = results["single 1-day window"]["purity"]
    assert paper > uniform
    assert paper > single
