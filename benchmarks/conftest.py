"""Make the shared benchmark helpers importable from any invocation dir."""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
