"""BN ingestion perf harness: window jobs, batch build, replay, TTL sweeps.

Times the vectorized BN *write* path against the pinned reference
implementations and writes the results to ``BENCH_bn_ingest.json`` in the
repository root.  Four sections:

* ``window_job`` — one just-closed epoch's job (the online BN server's unit
  of work): numpy pair enumeration + one ``add_weights`` batch vs the
  reference's nested pair loops of scalar ``add_weight`` calls.  This is
  the **pair-enumeration gate**: it times exactly the code path where the
  quadratic ``for i / for j`` loops used to live;
* ``batch_build`` — Algorithm 1 over a multi-day log history (every window
  re-enumerates every group);
* ``replay`` — the end-to-end online path: per-window epoch bucketing plus
  every window job plus the closing TTL sweep;
* ``ttl_sweep`` — indexed bucket expiry vs the full-graph scan on a
  standalone steady-state network (edge stamps spread over one TTL
  horizon), for both an expiring sweep and a no-op sweep.

The workload is community-structured, matching the paper's deposit-free
leasing regime: users share devices/Wi-Fi/addresses with the same small
community day after day, so the same user pairs co-occur across every
window of the hierarchy and the contribution stream is many times larger
than the distinct-edge set.  That duplication is precisely what the
columnar write path exploits (one reduced ``add_weights`` row per edge vs
one scalar ``add_weight`` call per contribution).

Every section first asserts **bit-exact** parity between the two sides
(identical edge sets, weights, timestamps, removal counts) — a benchmark
run that drifts from the reference fails before it times anything.

Run it either way::

    pytest -m slow benchmarks/bench_bn_ingest.py          # as a slow test
    PYTHONPATH=src python benchmarks/bench_bn_ingest.py   # as a script

Acceptance gates (uniform contract via ``_shared.check_gates``; both modes
exit nonzero when a gate regresses):

* pair enumeration (``window_job``) ≥ 5× the reference;
* end-to-end ``replay`` ≥ 3× the reference;
* ``batch_build`` and the expiring TTL sweep not slower than reference.

Scale knobs (environment variables):

* ``REPRO_BENCH_INGEST_USERS`` — distinct users (default 600);
* ``REPRO_BENCH_INGEST_DAYS`` — days of history (default 6);
* ``REPRO_BENCH_INGEST_REPEATS`` — timing repeats (default 3, best-of).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datagen import DAY, HOUR, BehaviorLog, BehaviorType
from repro.network import BehaviorNetwork, BNBuilder

from _shared import Gate, check_gates, emit, emit_header

N_USERS = int(os.environ.get("REPRO_BENCH_INGEST_USERS", "600"))
DAYS = int(os.environ.get("REPRO_BENCH_INGEST_DAYS", "6"))
REPEATS = int(os.environ.get("REPRO_BENCH_INGEST_REPEATS", "3"))
EDGE_TYPES = tuple(BehaviorType)[:3]
WINDOWS = (HOUR, 4 * HOUR, DAY)
TTL = 60 * DAY
COMMUNITY = 30  # users per community (well under max_clique_size)
VALUES_PER_TYPE = 20  # distinct shared resources per community per type
ATTEND_P = 0.95  # probability a member logs a given resource in a session
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_bn_ingest.json"


def best_of(fn, repeats: int | None = None) -> float:
    """Best wall-clock of ``repeats`` runs (reduces scheduler noise)."""
    times = []
    for _ in range(repeats if repeats is not None else REPEATS):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def timed_fresh(setup, op, repeats: int | None = None) -> float:
    """Best wall-clock of ``op`` over fresh ``setup()`` state per repeat.

    For destructive operations (TTL sweeps mutate the network), rebuilding
    the state outside the timed region beats deepcopy-and-subtract: the
    measurement contains nothing but the operation itself.
    """
    times = []
    for _ in range(repeats if repeats is not None else REPEATS):
        state = setup()
        start = time.perf_counter()
        op(state)
        times.append(time.perf_counter() - start)
    return min(times)


def community_logs(n_users: int, days: int, seed: int = 0) -> list[BehaviorLog]:
    """Community-structured synthetic logs (the paper's shared-resource regime).

    Users are partitioned into communities of :data:`COMMUNITY`.  Each
    community holds one session per day at a random hour; during the
    session every member logs each of the community's
    :data:`VALUES_PER_TYPE` resources per edge type with probability
    :data:`ATTEND_P`.  The same pairs therefore co-occur in the hourly,
    4-hourly and daily windows of every day — a contribution stream tens of
    times larger than the distinct-edge set, like production BN ingestion.
    """
    rng = np.random.default_rng(seed)
    community = min(COMMUNITY, n_users)
    n_comms = max(1, n_users // community)
    logs: list[BehaviorLog] = []
    for day in range(days):
        day_start = day * DAY
        hours = rng.integers(0, 24, size=n_comms)
        for c in range(n_comms):
            session = day_start + float(hours[c]) * HOUR
            members = np.arange(c * community, (c + 1) * community)
            for t_i, btype in enumerate(EDGE_TYPES):
                for k in range(VALUES_PER_TYPE):
                    mask = rng.random(community) < ATTEND_P
                    stamps = session + rng.uniform(0.0, HOUR, size=int(mask.sum()))
                    value = f"c{c}t{t_i}v{k}"
                    logs.extend(
                        BehaviorLog(int(uid), btype, value, float(ts))
                        for uid, ts in zip(members[mask], stamps)
                    )
    logs.sort(key=lambda log: log.timestamp)
    return logs


def edge_state(bn: BehaviorNetwork) -> dict:
    """Exact edge state — bit-level weights and timestamps — for parity."""
    return {
        (u, v, t): (record.weight, record.last_update)
        for u, v, t, record in bn.iter_edges()
    }


def assert_bit_exact(vec: BehaviorNetwork, ref: BehaviorNetwork, what: str) -> None:
    state_v, state_r = edge_state(vec), edge_state(ref)
    assert state_v == state_r, f"{what}: vectorized path diverged from reference"
    assert sorted(vec.nodes()) == sorted(ref.nodes()), f"{what}: node sets differ"
    assert vec.num_edges() == vec.num_edges_scan(), f"{what}: edge counter drifted"


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def bench_window_job(builder: BNBuilder, logs: list[BehaviorLog]) -> dict:
    """Day 0's daily job on a fresh BN: the pair-enumeration gate."""
    epoch_logs = [log for log in logs if log.timestamp <= DAY]
    bn_v, bn_r = BehaviorNetwork(ttl=TTL), BehaviorNetwork(ttl=TTL)
    contributions = builder.run_window_job(bn_v, epoch_logs, DAY, job_end=DAY)
    ref_contributions = builder.run_window_job_reference(
        bn_r, epoch_logs, DAY, job_end=DAY
    )
    assert contributions == ref_contributions, "window job contribution counts differ"
    assert_bit_exact(bn_v, bn_r, "window_job")

    vec_s = best_of(
        lambda: builder.run_window_job(
            BehaviorNetwork(ttl=TTL), epoch_logs, DAY, job_end=DAY
        )
    )
    ref_s = best_of(
        lambda: builder.run_window_job_reference(
            BehaviorNetwork(ttl=TTL), epoch_logs, DAY, job_end=DAY
        )
    )
    return {
        "epoch_logs": len(epoch_logs),
        "contributions": contributions,
        "reference_s": ref_s,
        "vectorized_s": vec_s,
        "speedup": ref_s / vec_s,
        "contributions_per_s": contributions / vec_s,
    }


def bench_batch_build(builder: BNBuilder, logs: list[BehaviorLog]) -> dict:
    """Algorithm 1 over the full history as one columnar batch per type."""
    assert_bit_exact(builder.build(logs), builder.build_reference(logs), "build")
    vec_s = best_of(lambda: builder.build(logs))
    ref_s = best_of(lambda: builder.build_reference(logs))
    return {
        "logs": len(logs),
        "reference_s": ref_s,
        "vectorized_s": vec_s,
        "speedup": ref_s / vec_s,
        "logs_per_s": len(logs) / vec_s,
    }


def bench_replay(builder: BNBuilder, logs: list[BehaviorLog], span: float) -> dict:
    """End-to-end online path: bucketing + every window job + TTL sweep."""
    assert_bit_exact(
        builder.replay(logs, until=span),
        builder.replay_reference(logs, until=span),
        "replay",
    )
    vec_s = best_of(lambda: builder.replay(logs, until=span))
    ref_s = best_of(lambda: builder.replay_reference(logs, until=span))
    return {
        "logs": len(logs),
        "reference_s": ref_s,
        "vectorized_s": vec_s,
        "speedup": ref_s / vec_s,
        "logs_per_s": len(logs) / vec_s,
    }


def make_ttl_network(n_edges: int, now: float, seed: int = 3) -> BehaviorNetwork:
    """A steady-state BN: ``n_edges`` edges with stamps spread over one TTL."""
    rng = np.random.default_rng(seed)
    n_users = int(np.sqrt(n_edges * 4.0)) + 2
    u = rng.integers(0, n_users, size=n_edges * 2)
    v = rng.integers(0, n_users, size=n_edges * 2)
    keep = u != v
    lo, hi = np.minimum(u[keep], v[keep]), np.maximum(u[keep], v[keep])
    _, first = np.unique(lo * n_users + hi, return_index=True)
    first = first[:n_edges]
    lo, hi = lo[first], hi[first]
    stamps = rng.uniform(now - TTL, now, size=len(lo))
    bn = BehaviorNetwork(ttl=TTL)
    bn.add_weights(lo, hi, EDGE_TYPES[0], np.ones(len(lo)), stamps)
    return bn


def bench_ttl_sweep(n_edges: int) -> dict:
    """Indexed bucket expiry vs the pinned full-graph scan, steady state.

    The expiring sweep advances time by ``TTL / 32`` past the horizon, so a
    few percent of edges fall due: the index visits only the due time
    buckets while the scan walks every record.  The no-op sweep expires at
    the horizon itself (nothing due) — the common steady-state case.
    """
    now = TTL
    sweep_at = now + TTL / 32.0

    indexed = make_ttl_network(n_edges, now)
    scanned = make_ttl_network(n_edges, now)
    edges_before = indexed.num_edges()
    removed = indexed.expire_edges(sweep_at)
    removed_scan = scanned._expire_edges_scan(sweep_at)
    assert removed == removed_scan, "expiry removal counts differ"
    assert removed > 0, "TTL workload produced nothing to expire"
    assert_bit_exact(indexed, scanned, "ttl_sweep")

    vec_s = timed_fresh(
        lambda: make_ttl_network(n_edges, now),
        lambda bn: bn.expire_edges(sweep_at),
    )
    ref_s = timed_fresh(
        lambda: make_ttl_network(n_edges, now),
        lambda bn: bn._expire_edges_scan(sweep_at),
    )

    noop = make_ttl_network(n_edges, now)
    noop_vec_s = best_of(lambda: noop.expire_edges(now))
    noop_ref_s = best_of(lambda: noop._expire_edges_scan(now))
    return {
        "edges_before": edges_before,
        "removed": removed,
        "reference_s": ref_s,
        "vectorized_s": vec_s,
        "speedup": ref_s / vec_s,
        "noop_reference_s": noop_ref_s,
        "noop_vectorized_s": noop_vec_s,
        "noop_speedup": noop_ref_s / noop_vec_s,
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_harness(result_path: Path = RESULT_PATH) -> dict:
    span = DAYS * DAY
    ttl_edges = 250 * N_USERS
    emit_header(
        f"BN ingest perf harness — {N_USERS} users, {DAYS} days, "
        f"{len(EDGE_TYPES)} types, windows {[int(w) for w in WINDOWS]}"
    )
    builder = BNBuilder(windows=WINDOWS, edge_types=EDGE_TYPES, ttl=TTL)
    logs = community_logs(N_USERS, DAYS)
    emit(f"workload: {len(logs)} community-structured logs")

    sections = {}
    sections["window_job"] = bench_window_job(builder, logs)
    emit(
        "window job     ref {reference_s:.3f}s  vec {vectorized_s:.3f}s "
        "({speedup:.1f}x)  {contributions} contributions, "
        "{contributions_per_s:,.0f}/s".format(**sections["window_job"])
    )
    sections["batch_build"] = bench_batch_build(builder, logs)
    emit(
        "batch build    ref {reference_s:.3f}s  vec {vectorized_s:.3f}s "
        "({speedup:.1f}x)  {logs_per_s:,.0f} logs/s".format(
            **sections["batch_build"]
        )
    )
    sections["replay"] = bench_replay(builder, logs, span)
    emit(
        "replay         ref {reference_s:.3f}s  vec {vectorized_s:.3f}s "
        "({speedup:.1f}x)  {logs_per_s:,.0f} logs/s".format(**sections["replay"])
    )
    sections["ttl_sweep"] = bench_ttl_sweep(ttl_edges)
    emit(
        "ttl sweep      ref {reference_s:.4f}s  vec {vectorized_s:.4f}s "
        "({speedup:.1f}x)  removed {removed}/{edges_before}; "
        "no-op {noop_reference_s:.4f}s → {noop_vectorized_s:.4f}s "
        "({noop_speedup:.1f}x)".format(**sections["ttl_sweep"])
    )

    result = {
        "n_users": N_USERS,
        "days": DAYS,
        "n_logs": len(logs),
        "n_edge_types": len(EDGE_TYPES),
        "windows_s": list(WINDOWS),
        "span_s": span,
        "ttl_s": TTL,
        "ttl_edges": ttl_edges,
        "sections": sections,
    }
    gates = [
        Gate("pair_enumeration_speedup", sections["window_job"]["speedup"], 5.0),
        Gate("replay_speedup", sections["replay"]["speedup"], 3.0),
        Gate("batch_build_not_slower", sections["batch_build"]["speedup"], 1.0),
        Gate("ttl_sweep_not_slower", sections["ttl_sweep"]["speedup"], 1.0),
    ]
    check_gates(gates, result, result_path)
    return result


@pytest.mark.slow
def test_bn_ingest_perf():
    result = run_harness()
    assert result["gates_met"], (
        "BN ingest perf gates failed — see gate lines above "
        f"(gates: {result['gates']})"
    )


if __name__ == "__main__":
    outcome = run_harness()
    if not outcome["gates_met"]:
        emit("FAIL: BN ingest perf gates not met")
        sys.exit(1)
    emit("OK")
