"""Parallel training engine perf harness: presampling + data-parallel workers.

Trains a small HAG on a dense synthetic two-type behavior graph (average
degree ≈ 15× the fanout, so per-epoch neighbour re-selection is the
dominant assembly cost — the regime the presampling optimization targets)
and measures the two speedups the engine ships:

* **presample** — the epoch-presampled path
  (:class:`~repro.core.train_engine.PresampledGraph`: sample the k-hop
  structure once per run, slice per-batch induced subgraphs from trimmed
  incidence CSRs) against per-epoch resampling (``presample=False``:
  ``sample_khop_nodes`` + ``induced_adjacencies`` per batch per epoch).
  Both paths are the deterministic ``rng=None`` fanout policy, so their
  optimizer trajectories are asserted **bit-identical** before anything
  is gated.  The prefetch pipeline variant (``prefetch=True``) is
  reported alongside: on this single-CPU container thread overlap cannot
  reduce wall time, so its row documents the pipeline's bookkeeping cost,
  and the per-stage profile shows where an extra core would overlap
  (``prefetch`` wait ≈ assembly time hidden behind compute).

* **parallel** — per-minibatch gradients fanned out to forked
  :class:`~repro.system.train_workers.TrainWorkerPool` workers reading
  the published shared-memory inputs, reduced by the engine's
  fixed-fold-order barrier.  The container pins the harness to one CPU,
  so multi-process wall clock would measure the scheduler, not the
  algorithm; as in ``bench_sharding`` the harness dispatches serially
  (``serialize_dispatch=True``), times each worker's busy span in-child
  and uncontended, and gates the **deployment clock**: an epoch on N
  otherwise-idle cores costs ``wall - workers_busy + workers_critical``
  (parent bookkeeping plus the slowest worker's span).  Worker counts
  {1, 2, 4} run the identical trajectory — asserted bit-equal against
  the in-process engine — so the speedup compares the same float
  trajectory, not merely similar work.

Each configuration trains ``EPOCHS`` epochs and is gated on its **best**
epoch (host-speed drift on a shared container can only slow an epoch
down, never speed it up); cyclic GC is disabled while measuring, as in
the other harnesses.

Run it either way::

    pytest -m slow benchmarks/bench_train_parallel.py
    PYTHONPATH=src python benchmarks/bench_train_parallel.py

Acceptance gates (uniform contract via ``_shared.check_gates``; both
modes exit nonzero on regression): presampled epochs ≥ 2× per-epoch
resampling; 4-worker deployment-clock epochs ≥ 3× single-worker; both
parity checks exactly 1.0 (bit-exact).

Scale knobs (environment variables): ``REPRO_BENCH_TRAIN_NODES``,
``REPRO_BENCH_TRAIN_DEGREE``, ``REPRO_BENCH_TRAIN_EPOCHS``.
"""

from __future__ import annotations

import gc
import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import HAG, ParallelTrainConfig, train_parallel
from repro.obs.profiling import TrainProfiler

from _shared import Gate, check_gates, emit, emit_header

N_NODES = int(os.environ.get("REPRO_BENCH_TRAIN_NODES", "4000"))
AVG_DEGREE = int(os.environ.get("REPRO_BENCH_TRAIN_DEGREE", "150"))
EPOCHS = int(os.environ.get("REPRO_BENCH_TRAIN_EPOCHS", "3"))
N_TYPES = 2
FEATURE_DIM = 6
HOPS = 2
FANOUT = 10
TRAIN_FRACTION = 0.75
#: phase A (in-process presample comparison) uses large batches — few,
#: assembly-heavy steps; phase B (worker fan-out) uses small batches so a
#: sync group divides evenly across 4 workers.
BATCH_A = 1024
BATCH_B = 192
SYNC_B = 16
WORKER_COUNTS = (1, 2, 4)
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_train_parallel.json"


def build_problem() -> tuple[list[sp.csr_matrix], np.ndarray, np.ndarray, np.ndarray]:
    """A dense two-type graph + features + labels + train split."""
    rng = np.random.default_rng(0)
    adjacencies = []
    for _ in range(N_TYPES):
        m = N_NODES * AVG_DEGREE
        rows = rng.integers(0, N_NODES, size=m)
        cols = rng.integers(0, N_NODES, size=m)
        weights = rng.random(m) + 0.01
        a = sp.coo_matrix(
            (weights, (rows, cols)), shape=(N_NODES, N_NODES)
        ).tocsr()
        a.sum_duplicates()
        adjacencies.append(a)
    features = rng.normal(size=(N_NODES, FEATURE_DIM))
    labels = (rng.random(N_NODES) < 0.3).astype(np.float64)
    train_idx = np.random.default_rng(1).permutation(N_NODES)[
        : int(TRAIN_FRACTION * N_NODES)
    ]
    return adjacencies, features, labels, train_idx


def fresh_model() -> HAG:
    """Identically-initialized small model for every configuration."""
    return HAG(
        FEATURE_DIM,
        N_TYPES,
        np.random.default_rng(1),
        hidden=(4,),
        att_dim=4,
        cfo_att_dim=4,
        cfo_out_dim=2,
        mlp_hidden=(4,),
        use_sao=False,
    )


def run_config(
    problem, config: ParallelTrainConfig
) -> tuple[dict[str, np.ndarray], TrainProfiler]:
    """Train one configuration from the shared init; returns (state, profile)."""
    adjacencies, features, labels, train_idx = problem
    model = fresh_model()
    profiler = TrainProfiler()
    train_parallel(
        model,
        adjacencies,
        features,
        labels,
        train_idx,
        config=config,
        hops=HOPS,
        fanout=FANOUT,
        profiler=profiler,
    )
    return model.state_dict(), profiler


def states_equal(a: dict, b: dict) -> bool:
    return a.keys() == b.keys() and all(
        np.array_equal(a[key], b[key]) for key in a
    )


def profile_row(profiler: TrainProfiler) -> dict:
    """Best epoch wall + deployment clock + per-stage totals for the report."""
    deploys = [
        p.seconds
        - p.stages.get("workers_busy", 0.0)
        + p.stages.get("workers_critical", 0.0)
        for p in profiler.epochs
    ]
    return {
        "epochs": len(profiler.epochs),
        "best_epoch_s": min(p.seconds for p in profiler.epochs),
        "best_deploy_s": min(deploys),
        "epoch_s": [p.seconds for p in profiler.epochs],
        "deploy_s": deploys,
        "stage_totals_s": profiler.stage_totals(),
    }


def run_harness(result_path: Path = RESULT_PATH) -> dict:
    emit_header(
        f"Parallel training perf harness — {N_NODES:,} nodes × {N_TYPES} types, "
        f"avg degree {AVG_DEGREE}, fanout {FANOUT}, hops {HOPS}, "
        f"{EPOCHS} epochs/config, workers {WORKER_COUNTS}"
    )
    problem = build_problem()
    emit(
        f"train split: {len(problem[3]):,} seeds  "
        f"(phase A batches of {BATCH_A}, phase B batches of {BATCH_B} "
        f"in sync groups of {SYNC_B})"
    )

    def config_a(**overrides) -> ParallelTrainConfig:
        base = dict(
            epochs=EPOCHS, batch_size=BATCH_A, min_epochs=1, patience=EPOCHS + 1
        )
        base.update(overrides)
        return ParallelTrainConfig(**base)

    def config_b(**overrides) -> ParallelTrainConfig:
        base = dict(
            epochs=EPOCHS,
            batch_size=BATCH_B,
            sync_batches=SYNC_B,
            min_epochs=1,
            patience=EPOCHS + 1,
            serialize_dispatch=True,
        )
        base.update(overrides)
        return ParallelTrainConfig(**base)

    # GC off while measuring (the other harnesses' convention): a gen-2
    # pass over the CSR-heavy heap lands in whichever epoch is running.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        # Phase A — in-process epoch cost: per-epoch resampling vs the
        # presampled slicer, plus the prefetch pipeline variant.
        started = time.perf_counter()
        legacy_state, legacy_prof = run_config(
            problem, config_a(presample=False, prefetch=False)
        )
        pre_state, pre_prof = run_config(
            problem, config_a(presample=True, prefetch=False)
        )
        pipe_state, pipe_prof = run_config(
            problem, config_a(presample=True, prefetch=True)
        )
        emit(f"phase A (presample) measured in {time.perf_counter() - started:.1f}s")

        # Phase B — worker fan-out under the deployment clock, anchored
        # on an in-process run of the identical configuration.
        started = time.perf_counter()
        anchor_state, anchor_prof = run_config(problem, config_b(workers=0))
        pooled: dict[int, tuple[dict, TrainProfiler]] = {}
        for workers in WORKER_COUNTS:
            pooled[workers] = run_config(problem, config_b(workers=workers))
        emit(f"phase B (workers) measured in {time.perf_counter() - started:.1f}s")
    finally:
        if gc_was_enabled:
            gc.enable()

    # Parity before any gate: every variant must have walked the exact
    # same float trajectory.
    presample_parity = states_equal(legacy_state, pre_state) and states_equal(
        pre_state, pipe_state
    )
    parallel_parity = all(
        states_equal(anchor_state, state) for state, _ in pooled.values()
    )
    emit(
        f"parity: presample={'bit-exact' if presample_parity else 'DIVERGED'}  "
        f"parallel={'bit-exact' if parallel_parity else 'DIVERGED'}"
    )

    rows_a = {
        "resample": profile_row(legacy_prof),
        "presample": profile_row(pre_prof),
        "presample_prefetch": profile_row(pipe_prof),
    }
    presample_speedup = (
        rows_a["resample"]["best_epoch_s"] / rows_a["presample"]["best_epoch_s"]
    )
    presample_build_s = pre_prof.run_stages.get("presample", 0.0)
    for name, row in rows_a.items():
        stages = row["stage_totals_s"]
        emit(
            f"A {name:<18} best epoch {row['best_epoch_s']:.3f}s  "
            f"(sampling {stages.get('sampling', 0.0):.3f}s, "
            f"induction {stages.get('induction', 0.0):.3f}s, "
            f"prefetch wait {stages.get('prefetch', 0.0):.3f}s)"
        )
    emit(
        f"A presample build {presample_build_s:.3f}s (once per run)  "
        f"epoch speedup {presample_speedup:.2f}x"
    )

    rows_b = {0: profile_row(anchor_prof)}
    for workers, (_, prof) in pooled.items():
        rows_b[workers] = profile_row(prof)
    base_deploy = rows_b[WORKER_COUNTS[0]]["best_deploy_s"]
    for workers in (0, *WORKER_COUNTS):
        row = rows_b[workers]
        row["speedup"] = (
            base_deploy / row["best_deploy_s"] if workers else 1.0
        )
        stages = row["stage_totals_s"]
        emit(
            f"B workers={workers}  deploy {row['best_deploy_s']:.3f}s"
            + (
                f"  (wall {row['best_epoch_s']:.3f}s, busy "
                f"{stages.get('workers_busy', 0.0):.3f}s, critical "
                f"{stages.get('workers_critical', 0.0):.3f}s)  "
                f"speedup {row['speedup']:.2f}x"
                if workers
                else "  (in-process parity anchor)"
            )
        )
    parallel_speedup_4w = rows_b[4]["speedup"] if 4 in rows_b else 0.0

    result = {
        "n_nodes": N_NODES,
        "n_types": N_TYPES,
        "avg_degree": AVG_DEGREE,
        "feature_dim": FEATURE_DIM,
        "hops": HOPS,
        "fanout": FANOUT,
        "epochs_per_config": EPOCHS,
        "batch_size_presample": BATCH_A,
        "batch_size_parallel": BATCH_B,
        "sync_batches_parallel": SYNC_B,
        "worker_counts": list(WORKER_COUNTS),
        "presample_build_s": presample_build_s,
        "presample_phase": rows_a,
        "parallel_phase": {str(k): v for k, v in rows_b.items()},
    }
    gates = [
        Gate("presample_epoch_speedup", presample_speedup, 2.0),
        Gate("parallel_epoch_speedup_4w", parallel_speedup_4w, 3.0),
        Gate("presample_parity", 1.0 if presample_parity else 0.0, 1.0),
        Gate("parallel_parity", 1.0 if parallel_parity else 0.0, 1.0),
    ]
    check_gates(gates, result, result_path)
    return result


@pytest.mark.slow
@pytest.mark.train_parallel
def test_train_parallel_perf():
    result = run_harness()
    assert result["gates_met"], (
        "parallel training perf gates failed — see gate lines above "
        f"(gates: {result['gates']})"
    )


if __name__ == "__main__":
    outcome = run_harness()
    if not outcome["gates_met"]:
        emit("FAIL: parallel training perf gates not met")
        sys.exit(1)
    emit("OK")
