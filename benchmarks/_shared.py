"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The expensive
artifacts (datasets, BN, trained models) are prepared once per session and
memoized here so the per-bench timing reflects the operation being measured,
not repeated setup.

Scale knobs (environment variables):

* ``REPRO_BENCH_SCALE`` — dataset scale factor (default ``0.6`` ≈ 2 400
  users).  Raise toward ``1.0`` for tighter numbers, lower for speed.
* ``REPRO_BENCH_SEEDS`` — comma-separated seeds for multi-seed tables
  (default ``0,1,2``).

Output goes through :func:`emit`, which bypasses pytest's capture so the
regenerated tables always appear in ``pytest benchmarks/`` output.
"""

from __future__ import annotations

import functools
import os
import sys

import numpy as np

from repro.datagen import Dataset, make_d1, make_d2
from repro.eval.runner import ExperimentData, prepare_experiment
from repro.network import FAST_WINDOWS

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.6"))
SEEDS = tuple(
    int(s) for s in os.environ.get("REPRO_BENCH_SEEDS", "0,1,2").split(",")
)

#: benchmarks build BN with the reduced hierarchy for speed; switch to
#: ``repro.network.PAPER_WINDOWS`` to match the paper's 13 windows exactly.
WINDOWS = FAST_WINDOWS


def emit(text: str = "") -> None:
    """Print to the real stdout, bypassing pytest capture."""
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()


def emit_header(title: str) -> None:
    emit()
    emit("=" * 72)
    emit(title)
    emit("=" * 72)


@functools.lru_cache(maxsize=4)
def d1_dataset(scale: float = SCALE, seed: int = 7) -> Dataset:
    return make_d1(scale=scale, seed=seed)


@functools.lru_cache(maxsize=4)
def d2_dataset(scale: float = SCALE, seed: int = 11) -> Dataset:
    return make_d2(scale=scale, seed=seed)


@functools.lru_cache(maxsize=4)
def d1_experiment(scale: float = SCALE, seed: int = 0) -> ExperimentData:
    return prepare_experiment(d1_dataset(scale), windows=WINDOWS, seed=seed)


@functools.lru_cache(maxsize=4)
def d2_experiment(scale: float = SCALE, seed: int = 0) -> ExperimentData:
    return prepare_experiment(d2_dataset(scale), windows=WINDOWS, seed=seed)


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def repeat_over_splits(name: str, method, seeds=SEEDS, experiment=d1_experiment):
    """Average a method over several train/test splits *and* training seeds.

    At laptop scale the test set holds only a few dozen positives, so
    split-to-split variance dwarfs the paper's 1–2-point gaps; averaging
    over full pipeline replicates (new split + new initialization per seed)
    is what makes the reported means meaningful.  Returns a
    :class:`repro.eval.runner.MethodResult`.
    """
    from repro.eval.metrics import ClassificationReport
    from repro.eval.runner import MethodResult, run_method

    reports = []
    scores = None
    for seed in seeds:
        data = experiment(seed=seed)
        report, scores = run_method(method, data, seed=seed)
        reports.append(report)
    aucs = np.asarray([r.auc for r in reports])
    mean = ClassificationReport(
        precision=float(np.mean([r.precision for r in reports])),
        recall=float(np.mean([r.recall for r in reports])),
        f1=float(np.mean([r.f1 for r in reports])),
        f2=float(np.mean([r.f2 for r in reports])),
        auc=float(aucs.mean()),
    )
    variance = float(aucs.var()) if len(aucs) > 1 else 0.0
    return MethodResult(name=name, report=mean, auc_variance=variance, scores=scores)
