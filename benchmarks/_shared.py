"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The expensive
artifacts (datasets, BN, trained models) are prepared once per session and
memoized here so the per-bench timing reflects the operation being measured,
not repeated setup.

Scale knobs (environment variables):

* ``REPRO_BENCH_SCALE`` — dataset scale factor (default ``0.6`` ≈ 2 400
  users).  Raise toward ``1.0`` for tighter numbers, lower for speed.
* ``REPRO_BENCH_SEEDS`` — comma-separated seeds for multi-seed tables
  (default ``0,1,2``).

Output goes through :func:`emit`, which bypasses pytest's capture so the
regenerated tables always appear in ``pytest benchmarks/`` output.
"""

from __future__ import annotations

import functools
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.datagen import Dataset, make_d1, make_d2
from repro.eval.runner import ExperimentData, prepare_experiment
from repro.network import FAST_WINDOWS

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.6"))
SEEDS = tuple(
    int(s) for s in os.environ.get("REPRO_BENCH_SEEDS", "0,1,2").split(",")
)

#: benchmarks build BN with the reduced hierarchy for speed; switch to
#: ``repro.network.PAPER_WINDOWS`` to match the paper's 13 windows exactly.
WINDOWS = FAST_WINDOWS


def emit(text: str = "") -> None:
    """Print to the real stdout, bypassing pytest capture."""
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()


@dataclass(frozen=True)
class Gate:
    """One acceptance ratio a perf benchmark must clear (``value >= minimum``)."""

    name: str
    value: float
    minimum: float

    @property
    def passed(self) -> bool:
        return self.value >= self.minimum


def load_previous_result(result_path: str | os.PathLike) -> dict | None:
    """Load the previously committed ``BENCH_*.json`` (None if absent/bad)."""
    path = Path(result_path)
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def check_gates(
    gates: list[Gate], result: dict, result_path: str | os.PathLike
) -> bool:
    """Evaluate acceptance gates, attach them to ``result``, write the JSON.

    The uniform regression contract for every gated perf benchmark
    (``bench_perf_hotpaths``, ``bench_bn_ingest``):

    * the previously committed ``result_path`` (if any) is loaded so each
      gated ratio prints its delta against the last run;
    * one line is emitted per gate plus a PASS/FAIL summary line;
    * ``result`` gains a ``gates`` section (per-gate value/minimum/passed)
      and a top-level ``gates_met`` flag, then is written to
      ``result_path``;
    * returns True iff every gate cleared — callers ``sys.exit(1)`` /
      fail the test on False, so regressions exit nonzero everywhere.
    """
    previous = load_previous_result(result_path) or {}
    rows: dict[str, dict] = {}
    ok = True
    for gate in gates:
        prev = previous.get("gates", {}).get(gate.name, {}).get("value")
        delta = (
            f"  (prev {prev:.2f}x)" if isinstance(prev, (int, float)) else ""
        )
        status = "ok  " if gate.passed else "FAIL"
        emit(
            f"gate {status} {gate.name}: {gate.value:.2f}x"
            f" >= {gate.minimum:.2f}x{delta}"
        )
        rows[gate.name] = {
            "value": gate.value,
            "minimum": gate.minimum,
            "passed": gate.passed,
        }
        ok = ok and gate.passed
    result["gates"] = rows
    result["gates_met"] = ok
    Path(result_path).write_text(json.dumps(result, indent=2) + "\n")
    emit(f"wrote {result_path}")
    met = sum(1 for row in rows.values() if row["passed"])
    emit(f"gates {'PASS' if ok else 'FAIL'}: {met}/{len(rows)} met")
    return ok


def emit_header(title: str) -> None:
    emit()
    emit("=" * 72)
    emit(title)
    emit("=" * 72)


@functools.lru_cache(maxsize=4)
def d1_dataset(scale: float = SCALE, seed: int = 7) -> Dataset:
    return make_d1(scale=scale, seed=seed)


@functools.lru_cache(maxsize=4)
def d2_dataset(scale: float = SCALE, seed: int = 11) -> Dataset:
    return make_d2(scale=scale, seed=seed)


@functools.lru_cache(maxsize=4)
def d1_experiment(scale: float = SCALE, seed: int = 0) -> ExperimentData:
    return prepare_experiment(d1_dataset(scale), windows=WINDOWS, seed=seed)


@functools.lru_cache(maxsize=4)
def d2_experiment(scale: float = SCALE, seed: int = 0) -> ExperimentData:
    return prepare_experiment(d2_dataset(scale), windows=WINDOWS, seed=seed)


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def repeat_over_splits(name: str, method, seeds=SEEDS, experiment=d1_experiment):
    """Average a method over several train/test splits *and* training seeds.

    At laptop scale the test set holds only a few dozen positives, so
    split-to-split variance dwarfs the paper's 1–2-point gaps; averaging
    over full pipeline replicates (new split + new initialization per seed)
    is what makes the reported means meaningful.  Returns a
    :class:`repro.eval.runner.MethodResult`.
    """
    from repro.eval.metrics import ClassificationReport
    from repro.eval.runner import MethodResult, run_method

    reports = []
    scores = None
    for seed in seeds:
        data = experiment(seed=seed)
        report, scores = run_method(method, data, seed=seed)
        reports.append(report)
    aucs = np.asarray([r.auc for r in reports])
    mean = ClassificationReport(
        precision=float(np.mean([r.precision for r in reports])),
        recall=float(np.mean([r.recall for r in reports])),
        f1=float(np.mean([r.f1 for r in reports])),
        f2=float(np.mean([r.f2 for r in reports])),
        auc=float(aucs.mean()),
    )
    variance = float(aucs.var()) if len(aucs) > 1 else 0.0
    return MethodResult(name=name, report=mean, auc_variance=variance, scores=scores)
