"""E11 — Fig. 8b: scalability of the graph computing operations.

The paper scales BN up and reports: full-graph training time grows linearly
with BN size, while per-request subgraph sampling and prediction latencies
grow slowly — the property that makes the inductive design deployable.

Since the batched-serving PR the table also carries batched-mode columns:
the same request set sampled through ``computation_subgraphs_batch`` (union
frontier, shared neighbour rankings) and scored through one packed
``predict_subgraphs`` forward, amortized per request.  The batched results
are asserted bit-for-bit equal to the scalar ones at every scale.

Since the sharding PR the table additionally carries a shard-count column:
the same requests served data-parallel off a hash-partitioned BN facade
(``SHARDS`` request partitions over one merged shard index), reported on
the deployment clock (slowest partition — partitions run on separate
cores in production).  Sharded results are asserted bit-for-bit equal to
the batched ones at every scale.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import HAG, TrainConfig, prepare_aggregators, train_node_classifier
from repro.datagen import make_d1
from repro.eval.runner import prepare_experiment
from repro.network import (
    BNBuilder,
    ShardedBehaviorNetwork,
    computation_subgraph,
    computation_subgraphs_batch,
    shard_of,
)
from repro.system import index_sample_batch

from _shared import SCALE, WINDOWS, emit, emit_header, once

SCALES = (0.15, 0.3, 0.6)
SHARDS = 2


def measure_at_scale(scale: float) -> dict[str, float]:
    dataset = make_d1(scale=scale, seed=7)

    # BN ingestion throughput: full Algorithm 1 (vectorized columnar write
    # path) over the dataset's log history — the paper's "BN update" cost,
    # which must also scale gracefully for the online system to keep up.
    start = time.perf_counter()
    BNBuilder(windows=WINDOWS).build(dataset.logs)
    ingest_seconds = time.perf_counter() - start

    data = prepare_experiment(dataset, windows=WINDOWS, seed=0)
    aggregators = prepare_aggregators([data.adjacencies[t] for t in data.edge_types])
    model = HAG(
        data.features.shape[1],
        n_types=len(data.edge_types),
        rng=np.random.default_rng(0),
        hidden=(32, 16),
        att_dim=16,
        cfo_att_dim=16,
        cfo_out_dim=4,
        mlp_hidden=(8,),
    )
    start = time.perf_counter()
    train_node_classifier(
        model,
        lambda x: model.forward(x, aggregators),
        data.features,
        data.labels,
        data.train_idx,
        None,
        TrainConfig(epochs=5, lr=5e-3, patience=5, min_epochs=5),
    )
    train_seconds = (time.perf_counter() - start) / 5  # per epoch

    rng = np.random.default_rng(1)
    allowed = set(data.nodes)
    index = {uid: i for i, uid in enumerate(data.nodes)}
    uids = [int(uid) for uid in rng.choice(data.nodes, size=20, replace=False)]
    sample_times, predict_times, sizes = [], [], []
    scalar_probs = []
    for uid in uids:
        start = time.perf_counter()
        # Sampler default = sorted type order — the canonical order the
        # merged shard index also uses, so all three serving modes expand
        # frontiers identically (prediction still packs per
        # ``data.edge_types``).
        subgraph = computation_subgraph(
            data.bn, uid, hops=2, fanout=10, allowed=allowed
        )
        sample_times.append(time.perf_counter() - start)
        features = data.features[[index[v] for v in subgraph.nodes]]
        start = time.perf_counter()
        scalar_probs.append(
            model.predict_subgraph(subgraph, features, edge_type_order=data.edge_types)
        )
        predict_times.append(time.perf_counter() - start)
        sizes.append(subgraph.num_nodes)

    # Batched mode: the same request set through the union-frontier sampler
    # and one packed forward, amortized per request — bit-exact by contract.
    start = time.perf_counter()
    batch_subgraphs, _stats = computation_subgraphs_batch(
        data.bn, uids, hops=2, fanout=10, allowed=allowed
    )
    batch_sample_s = time.perf_counter() - start
    batch_features = [
        data.features[[index[v] for v in sg.nodes]] for sg in batch_subgraphs
    ]
    start = time.perf_counter()
    batch_probs = model.predict_subgraphs(
        batch_subgraphs, batch_features, edge_type_order=data.edge_types
    )
    batch_predict_s = time.perf_counter() - start
    assert batch_probs == scalar_probs, "batched predictions diverged from scalar"

    # Sharded mode: the same requests partitioned by owner shard over one
    # merged shard index, each partition sampled + scored independently.
    # Deployment clock = slowest partition; bit-exact vs the batched path.
    sharded = ShardedBehaviorNetwork.from_network(data.bn, SHARDS)
    shard_index = sharded.index()
    owners = shard_of(np.asarray(uids, dtype=np.int64), SHARDS)
    partition_s = []
    sharded_probs: dict[int, float] = {}
    for shard_id in range(SHARDS):
        member = np.flatnonzero(owners == shard_id)
        if not len(member):
            partition_s.append(0.0)
            continue
        part_uids = [uids[i] for i in member]
        start = time.perf_counter()
        part_subgraphs, _pstats = index_sample_batch(
            shard_index, part_uids, hops=2, fanout=10, allowed=allowed
        )
        part_features = [
            data.features[[index[v] for v in sg.nodes]] for sg in part_subgraphs
        ]
        part_probs = model.predict_subgraphs(
            part_subgraphs, part_features, edge_type_order=data.edge_types
        )
        partition_s.append(time.perf_counter() - start)
        for j, i in enumerate(member):
            assert_sub = part_subgraphs[j]
            assert assert_sub.nodes == batch_subgraphs[i].nodes
            sharded_probs[int(i)] = part_probs[j]
    assert [sharded_probs[i] for i in range(len(uids))] == batch_probs, (
        "sharded predictions diverged from batched"
    )
    shard_serve_s = max(partition_s)
    return {
        "nodes": float(len(data.nodes)),
        "edges": float(data.bn.num_edges()),
        "logs": float(len(dataset.logs)),
        "ingest_s": ingest_seconds,
        "ingest_logs_per_s": len(dataset.logs) / ingest_seconds,
        "train_s_per_epoch": train_seconds,
        "sample_ms": 1000 * float(np.mean(sample_times)),
        "predict_ms": 1000 * float(np.mean(predict_times)),
        "batch_sample_ms": 1000 * batch_sample_s / len(uids),
        "batch_predict_ms": 1000 * batch_predict_s / len(uids),
        "shards": float(SHARDS),
        "shard_serve_ms": 1000 * shard_serve_s / len(uids),
        "subgraph_nodes": float(np.mean(sizes)),
    }


def run_sweep():
    return {scale: measure_at_scale(scale) for scale in SCALES}


def test_fig8b_scalability(benchmark):
    sweep = once(benchmark, run_sweep)
    emit_header("Fig. 8b — scalability of graph computing operations (wall clock)")
    emit(
        f"{'scale':>6}{'nodes':>8}{'edges':>9}{'ingest s':>10}{'logs/s':>9}"
        f"{'train s/ep':>12}{'sample ms':>11}{'predict ms':>12}"
        f"{'b.sample':>10}{'b.predict':>11}{'shards':>8}{'sh.serve':>10}"
        f"{'|G_v|':>8}"
    )
    for scale, row in sweep.items():
        emit(
            f"{scale:>6}{row['nodes']:>8.0f}{row['edges']:>9.0f}"
            f"{row['ingest_s']:>10.2f}{row['ingest_logs_per_s']:>9.0f}"
            f"{row['train_s_per_epoch']:>12.2f}{row['sample_ms']:>11.1f}"
            f"{row['predict_ms']:>12.1f}{row['batch_sample_ms']:>10.1f}"
            f"{row['batch_predict_ms']:>11.1f}{row['shards']:>8.0f}"
            f"{row['shard_serve_ms']:>10.1f}{row['subgraph_nodes']:>8.0f}"
        )
    emit()
    emit("Paper shape: training cost grows with BN size; per-request sampling")
    emit("and prediction latencies grow slowly (inductive, subgraph-bounded).")
    emit("b.sample / b.predict: the same 20 requests through the batched path")
    emit("(union-frontier sampling, one packed forward), amortized per request.")
    emit("sh.serve: the same requests partitioned across BN shards and served")
    emit("data-parallel off the merged shard index, deployment clock (slowest")
    emit("partition), amortized per request — bit-exact vs the batched path.")

    small, large = sweep[SCALES[0]], sweep[SCALES[-1]]
    population_growth = large["nodes"] / small["nodes"]
    # Shape 1: training cost grows with the graph.
    assert large["train_s_per_epoch"] > small["train_s_per_epoch"]
    # Shape 2: per-request prediction grows sublinearly vs the population
    # (it is bounded by the sampled subgraph, not the whole BN).
    predict_growth = large["predict_ms"] / max(small["predict_ms"], 1e-9)
    assert predict_growth < population_growth, (predict_growth, population_growth)
