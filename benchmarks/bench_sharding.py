"""Sharded BN perf harness: partitioned ingest + data-parallel serving.

Scales the Behavior Network to shard-relevant size (default 10⁶ users,
10⁷ edge contributions streamed chunk-by-chunk, never materialized) and
sweeps shard counts, measuring the two paths the sharding layer
parallelizes:

* **ingest** — every chunk is routed by owner shard
  (:meth:`~repro.network.sharding.ShardedBehaviorNetwork.route_weights`)
  and the router tier also runs the stateless batch preparation
  (:func:`~repro.network.bn.prepare_weight_groups`: canonicalize, group,
  segment-fold, box keys) for every owner, so each shard's apply is only
  the state-mutation walk over its disjoint dict partition.  A deployment
  pipelines the two tiers: the router streams prepared groups into
  per-shard queues while every shard drains its own queue on its own
  core — the cross-shard version barrier is a metadata bump once all
  shards ack a batch, not an inter-shard rendezvous.  The router's
  per-chunk stage is a fraction of a shard's (``route_chunk_max_s`` vs
  ``shard_chunk_min_s`` in the report), so routing overlaps the previous
  chunk's applies and only the first chunk's routing is exposed as
  pipeline fill.  The deployment clock is therefore ``route_fill_s`` plus
  the *slowest shard's total apply time* (the pipeline's critical path);
  the total routing stream (``route_s``) and the fully serial per-chunk
  rendezvous makespan (``barrier_deploy_s``) are recorded but not gated.
  The single-shard baseline is the plain single-process
  ``BehaviorNetwork.add_weights`` wall clock — the system without the
  router tier;
* **serve** — the batched request stream is partitioned by the owner shard
  of each target and every partition runs the full read path (frontier
  sampling against the published
  :class:`~repro.network.sharding.ShardIndex` + one packed HAG forward).
  Workers share the read-only index (shared-memory CSR snapshots), so the
  deployment clock is the slowest partition.

Why the deployment clock: the container pins this harness to one CPU, so
wall-clock multi-process numbers would measure the scheduler, not the
algorithm.  Per-shard work is timed individually and combined as
``max(shards)`` — exactly what N otherwise-idle cores execute.  A real
``ShardWorkerPool`` of forked processes additionally serves a verification
slice through shared memory, asserted bit-equal (correctness of the true
multi-process path is checked; its wall clock is not gated).

Measurements that form a ratio are **paired in time**: a single chunk
stream feeds every shard count back-to-back (chunk *k* into 1, 2, then 4
shards), and the serve phase runs every configuration in each of
``SERVE_ROUNDS`` adjacent rounds, gating each config's best round.  On a
shared host whose effective CPU speed drifts over a minutes-long run,
sequential per-config measurement bakes that drift into the speedups;
pairing cancels it.

Bit-exactness is asserted before anything is timed, at every shard count:

* the merged shard index snapshot is digest-identical to the unsharded
  ``BehaviorNetwork.to_arrays()`` export (same node order, same per-type
  edge order, same weights);
* every sampled subgraph (node list + per-type CSR) and every served
  probability equals the unsharded baseline bit-for-bit.

Run it either way::

    pytest -m slow benchmarks/bench_sharding.py          # as a slow test
    PYTHONPATH=src python benchmarks/bench_sharding.py   # as a script

Acceptance gates (uniform contract via ``_shared.check_gates``; both modes
exit nonzero when a gate regresses): ingest and batched-serve deployment
throughput ≥ 2× at 2 shards and ≥ 3× at 4 shards vs the single-network
baseline.

Scale knobs (environment variables): ``REPRO_BENCH_SHARD_USERS``,
``REPRO_BENCH_SHARD_EDGES``, ``REPRO_BENCH_SHARD_CHUNK``,
``REPRO_BENCH_SHARD_REQUESTS``, ``REPRO_BENCH_SHARD_POOL_SLICE``.
"""

from __future__ import annotations

import gc
import hashlib
import os
import pickle
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import HAG
from repro.datagen import ScaleConfig, edge_stream, sample_targets
from repro.features.pipeline import StandardScaler
from repro.network import (
    BehaviorNetwork,
    ShardedBehaviorNetwork,
    computation_subgraphs_batch,
    shard_of,
)
from repro.system import ShardRouter, ShardWorkerPool, index_sample_batch

from _shared import Gate, check_gates, emit, emit_header

N_USERS = int(os.environ.get("REPRO_BENCH_SHARD_USERS", "1000000"))
N_EDGES = int(os.environ.get("REPRO_BENCH_SHARD_EDGES", "10000000"))
CHUNK_EDGES = int(os.environ.get("REPRO_BENCH_SHARD_CHUNK", "500000"))
N_REQUESTS = int(os.environ.get("REPRO_BENCH_SHARD_REQUESTS", "256"))
POOL_SLICE = int(os.environ.get("REPRO_BENCH_SHARD_POOL_SLICE", "24"))
SERVE_ROUNDS = int(os.environ.get("REPRO_BENCH_SHARD_SERVE_ROUNDS", "3"))
SHARD_COUNTS = (1, 2, 4)
HOPS = 2
FANOUT = 25
FEATURE_DIM = 6
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sharding.json"


def workload_config() -> ScaleConfig:
    """The streamed workload under test (chunked, never materialized)."""
    return ScaleConfig(n_users=N_USERS, n_edges=N_EDGES, chunk_edges=CHUNK_EDGES)


def feature_matrix(config: ScaleConfig) -> np.ndarray:
    """Deterministic uid-indexed feature rows for the serve phase."""
    rng = np.random.default_rng(np.random.SeedSequence([config.seed, 99]))
    return rng.standard_normal((config.n_users, FEATURE_DIM))


def model_bundle(config: ScaleConfig, features: np.ndarray) -> dict:
    """A seeded HAG + fitted scaler (inference cost equals a trained one)."""
    model = HAG(
        FEATURE_DIM,
        n_types=len(config.edge_types),
        rng=np.random.default_rng(0),
        hidden=(16, 8),
        att_dim=8,
        cfo_att_dim=8,
        cfo_out_dim=4,
        mlp_hidden=(8,),
    )
    scaler = StandardScaler().fit(features[: min(len(features), 50_000)])
    return {
        "model": model,
        "scaler": scaler,
        "edge_type_order": list(config.edge_types),
    }


def snapshot_digest(snapshot) -> str:
    """Order-sensitive digest of a BN export (node + per-type edge arrays)."""
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(snapshot.node_ids).tobytes())
    for btype in sorted(snapshot.edges, key=lambda t: t.value):
        arrays = snapshot.edges[btype]
        digest.update(btype.value.encode())
        for column in (arrays.rows, arrays.cols, arrays.weights, arrays.last_update):
            digest.update(np.ascontiguousarray(column).tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Ingest
# ----------------------------------------------------------------------
class _IngestState:
    """One shard-count configuration fed chunk-by-chunk.

    The harness interleaves every configuration over a single chunk
    stream (chunk *k* goes to 1, 2, then 4 shards back-to-back), so the
    timings that form a speedup ratio are adjacent in time — host-speed
    drift over the minutes-long run cancels out of the ratios instead of
    corrupting them.

    For ``n_shards > 1`` each shard's ``apply_weight_groups`` is timed
    individually (instance-level wrapper, facade bookkeeping untouched);
    everything else inside the facade call — owner masking plus the
    stateless batch preparation the router tier runs for every shard —
    is the routing stage.  The deployment clock is the pipeline's
    critical path: the router stays ahead of the workers (its per-chunk
    stage is a fraction of a shard apply), so in steady state routing
    overlaps the previous chunk's applies and only the first chunk's
    routing is exposed as pipeline fill.  ``deploy_s`` is therefore
    ``route_fill_s + max(total_shard_s)``; the total routing stream is
    recorded as ``route_s`` (readers can check it stays far below the
    slowest shard, i.e. the router is never the bottleneck), and the
    fully serial chunk-rendezvous makespan (all routing plus per-chunk
    ``max`` over shards) is reported alongside as ``barrier_deploy_s``.
    """

    def __init__(self, config: ScaleConfig, n_shards: int):
        self.config = config
        self.n_shards = n_shards
        self.wall_s = 0.0
        if n_shards == 1:
            self.network: object = BehaviorNetwork()
            return
        self.network = ShardedBehaviorNetwork(n_shards)
        self.chunk_shard_s = [0.0] * n_shards
        self.total_shard_s = [0.0] * n_shards
        self.barrier_deploy_s = 0.0
        self.route_s = 0.0
        self.route_chunks: list[float] = []
        self.min_shard_chunk_s = 0.0

        def instrument(shard_id: int, original):
            def timed(*args, **kwargs):
                start = time.perf_counter()
                out = original(*args, **kwargs)
                elapsed = time.perf_counter() - start
                self.chunk_shard_s[shard_id] += elapsed
                self.total_shard_s[shard_id] += elapsed
                return out

            return timed

        for shard_id, shard in enumerate(self.network.shards):
            shard.apply_weight_groups = instrument(
                shard_id, shard.apply_weight_groups
            )

    def feed(self, chunk) -> None:
        if self.n_shards == 1:
            start = time.perf_counter()
            self.network.add_weights(
                chunk.lo,
                chunk.hi,
                chunk.codes,
                chunk.weights,
                chunk.timestamp,
                btype_table=self.config.edge_types,
            )
            self.wall_s += time.perf_counter() - start
            return
        for shard_id in range(self.n_shards):
            self.chunk_shard_s[shard_id] = 0.0
        start = time.perf_counter()
        self.network.add_weights(
            chunk.lo,
            chunk.hi,
            chunk.codes,
            chunk.weights,
            chunk.timestamp,
            btype_table=self.config.edge_types,
        )
        chunk_wall = time.perf_counter() - start
        chunk_route = max(0.0, chunk_wall - sum(self.chunk_shard_s))
        self.wall_s += chunk_wall
        self.route_s += chunk_route
        self.route_chunks.append(chunk_route)
        slowest = max(self.chunk_shard_s)
        if len(self.route_chunks) == 1 or slowest < self.min_shard_chunk_s:
            self.min_shard_chunk_s = slowest
        self.barrier_deploy_s += chunk_route + slowest

    def finish(self) -> dict:
        if self.n_shards == 1:
            return {
                "wall_s": self.wall_s,
                "deploy_s": self.wall_s,
                "route_s": 0.0,
                "shard_rows": (self.config.n_edges,),
            }
        for shard in self.network.shards:
            del shard.apply_weight_groups  # drop the wrapper, restore the method
        routed = self.network.drain_route_stats()
        route_fill = self.route_chunks[0] if self.route_chunks else 0.0
        return {
            "wall_s": self.wall_s,
            # Pipeline critical path: shards drain disjoint prepared-group
            # queues concurrently while the router (which is never the
            # bottleneck — see ``route_s`` vs the slowest shard) prepares
            # the next chunk; only the first chunk's routing is exposed.
            "deploy_s": route_fill + max(self.total_shard_s),
            "barrier_deploy_s": self.barrier_deploy_s,
            "route_s": self.route_s,
            "route_fill_s": route_fill,
            "route_chunk_max_s": max(self.route_chunks, default=0.0),
            "shard_chunk_min_s": self.min_shard_chunk_s,
            "shard_apply_s": tuple(self.total_shard_s),
            "shard_rows": routed["shard_rows"],
            "cross_shard_rows": routed["cross_shard"],
        }


def ingest_paired(config: ScaleConfig, shard_counts) -> dict[int, tuple[object, dict]]:
    """Stream the workload into every shard count at once, chunk-paired."""
    states = [_IngestState(config, n) for n in shard_counts]
    for chunk in edge_stream(config):
        for state in states:
            state.feed(chunk)
    return {state.n_shards: (state.network, state.finish()) for state in states}


# ----------------------------------------------------------------------
# Serve
# ----------------------------------------------------------------------
def serve_baseline(bn, config, targets, bundle, features) -> tuple[dict, dict]:
    """Unsharded batched serving: one union-frontier sample + one forward."""
    start = time.perf_counter()
    subgraphs, _stats = computation_subgraphs_batch(
        bn, targets, hops=HOPS, fanout=FANOUT, edge_types=config.edge_types
    )
    scaled = [
        bundle["scaler"].transform(features[np.asarray(sg.nodes, dtype=np.int64)])
        for sg in subgraphs
    ]
    probabilities = bundle["model"].predict_subgraphs(
        subgraphs, scaled, edge_type_order=bundle["edge_type_order"]
    )
    seconds = time.perf_counter() - start
    baseline = {"subgraphs": subgraphs, "probabilities": probabilities}
    return baseline, {"deploy_s": seconds, "wall_s": seconds}


def serve_sharded(sbn, targets, bundle, features) -> tuple[dict, dict]:
    """Data-parallel serving: per-shard request partitions over one index.

    Every partition runs sampling + packed inference exactly as one worker
    process does against the shared snapshot; the deployment clock is the
    slowest partition (workers run concurrently on separate cores).
    """
    index_start = time.perf_counter()
    index = sbn.index()
    index_s = time.perf_counter() - index_start
    owners = shard_of(np.asarray(targets, dtype=np.int64), sbn.n_shards)
    subgraphs = [None] * len(targets)
    probabilities = [None] * len(targets)
    partition_s = []
    partition_sizes = []
    for shard_id in range(sbn.n_shards):
        member = np.flatnonzero(owners == shard_id)
        if not len(member):
            partition_s.append(0.0)
            partition_sizes.append(0)
            continue
        part_targets = [targets[i] for i in member]
        start = time.perf_counter()
        part_subgraphs, _stats = index_sample_batch(
            index, part_targets, hops=HOPS, fanout=FANOUT
        )
        scaled = [
            bundle["scaler"].transform(features[np.asarray(sg.nodes, dtype=np.int64)])
            for sg in part_subgraphs
        ]
        part_probs = bundle["model"].predict_subgraphs(
            part_subgraphs, scaled, edge_type_order=bundle["edge_type_order"]
        )
        partition_s.append(time.perf_counter() - start)
        partition_sizes.append(len(member))
        for j, i in enumerate(member):
            subgraphs[i] = part_subgraphs[j]
            probabilities[i] = part_probs[j]
    served = {"subgraphs": subgraphs, "probabilities": probabilities}
    row = {
        "index_build_s": index_s,
        "deploy_s": max(partition_s),
        "wall_s": sum(partition_s),
        "partition_s": partition_s,
        "partition_sizes": partition_sizes,
    }
    return served, row


def assert_serve_parity(baseline: dict, served: dict, label: str) -> None:
    """Sharded results must equal the unsharded baseline bit-for-bit."""
    assert served["probabilities"] == baseline["probabilities"], (
        f"{label}: served probabilities diverged from unsharded baseline"
    )
    for ref, got in zip(baseline["subgraphs"], served["subgraphs"]):
        assert got is not None and ref.nodes == got.nodes, (
            f"{label}: subgraph node list diverged for target {ref.target}"
        )
        assert set(ref.adjacency) == set(got.adjacency), (
            f"{label}: adjacency type set diverged for target {ref.target}"
        )
        for btype, matrix in ref.adjacency.items():
            other = got.adjacency[btype]
            same = (
                np.array_equal(matrix.data, other.data)
                and np.array_equal(matrix.indices, other.indices)
                and np.array_equal(matrix.indptr, other.indptr)
            )
            assert same, f"{label}: {btype} CSR diverged for target {ref.target}"


def verify_process_pool(sbn, targets, bundle, features, baseline) -> dict:
    """Serve a slice through real forked workers over shared memory.

    Bit-equal against the in-process baseline; proves the shm publish /
    attach / predict plumbing end to end (its wall clock is not gated —
    one pinned CPU would time the scheduler, not the shards).
    """
    router = ShardRouter(sbn, use_shm=True)
    pool = None
    try:
        index = router.ensure_published()
        handle = router.store.publish(
            "features", {"features": features}, version=index.version
        )
        shared = router.store.attachable and handle.shared
        pool = ShardWorkerPool(
            router.segments,
            n_workers=min(sbn.n_shards, 2),
            model_payload=pickle.dumps(
                {
                    "model": bundle["model"],
                    "scaler": bundle["scaler"],
                    "edge_type_order": bundle["edge_type_order"],
                }
            ),
        )
        sliced = targets[:POOL_SLICE]
        wire_features = handle.segment if shared else features
        out = pool.predict(0, sliced, wire_features, hops=HOPS, fanout=FANOUT)
        assert out is not None, "pool worker died during the verification slice"
        pool_probs, _stats = out
        assert pool_probs == baseline["probabilities"][: len(sliced)], (
            "process-pool probabilities diverged from the in-process baseline"
        )
        return {
            "slice": len(sliced),
            "workers": pool.alive_count(),
            "shared_memory": bool(shared),
            "segments": len(router.segments),
        }
    finally:
        if pool is not None:
            pool.close()
        router.close()


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_harness(result_path: Path = RESULT_PATH) -> dict:
    config = workload_config()
    emit_header(
        f"Sharded BN perf harness — {config.n_users:,} users, "
        f"{config.n_edges:,} edge contributions in chunks of "
        f"{config.chunk_edges:,}, {N_REQUESTS} requests, shards {SHARD_COUNTS}"
    )
    targets = sample_targets(config, N_REQUESTS)
    features = feature_matrix(config)
    bundle = model_bundle(config, features)

    # Cyclic GC off while measuring (timeit-style): a gen-2 pass over the
    # tens-of-millions-of-objects graph heap costs ~10s and lands in
    # whichever config's timer happens to be running — a lottery tax that
    # once skewed per-shard apply times 1.4× on perfectly balanced rows.
    # The heap is acyclic (dicts/tuples/arrays), so refcounting reclaims
    # everything; GC is re-enabled before gate evaluation.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        # Phase 1 — paired ingest: one chunk stream feeds every shard
        # count back-to-back, so each speedup ratio compares timings
        # taken seconds (not minutes) apart.
        ingested = ingest_paired(config, SHARD_COUNTS)

        # Phase 2 — bit-exactness (untimed; also builds + memoizes each
        # configuration's read index, so the serve phase times serving,
        # not snapshot construction — matching the unsharded baseline,
        # whose snapshot is version-memoized by the digest pass too).
        baseline_digest = snapshot_digest(ingested[1][0].to_arrays())
        for n_shards in SHARD_COUNTS[1:]:
            digest = snapshot_digest(ingested[n_shards][0].to_arrays())
            assert digest == baseline_digest, (
                f"{n_shards}-shard merged snapshot diverged from unsharded export"
            )

        # Phase 3 — interleaved serve rounds: every configuration serves
        # the same request stream in each round, adjacent in time; a
        # config's gated number is its best round (host-speed drift can
        # only slow a round down, never speed it up).
        baseline = None
        serve_rows: dict[int, dict] = {}
        for round_id in range(SERVE_ROUNDS):
            for n_shards in SHARD_COUNTS:
                network = ingested[n_shards][0]
                if n_shards == 1:
                    base_out, serve_row = serve_baseline(
                        network, config, targets, bundle, features
                    )
                    if baseline is None:
                        baseline = base_out
                else:
                    served, serve_row = serve_sharded(
                        network, targets, bundle, features
                    )
                    if round_id == 0:
                        assert_serve_parity(baseline, served, f"{n_shards} shards")
                best = serve_rows.get(n_shards)
                rounds = (best["round_deploy_s"] if best else []) + [
                    serve_row["deploy_s"]
                ]
                if best is None or serve_row["deploy_s"] < best["deploy_s"]:
                    best = serve_row
                best["round_deploy_s"] = rounds
                serve_rows[n_shards] = best

        pool_check = verify_process_pool(
            ingested[SHARD_COUNTS[-1]][0], targets, bundle, features, baseline
        )
    finally:
        if gc_was_enabled:
            gc.enable()

    sweep: dict[int, dict] = {}
    for n_shards in SHARD_COUNTS:
        ingest_row = ingested[n_shards][1]
        serve_row = serve_rows[n_shards]
        rows = np.asarray(ingest_row["shard_rows"], dtype=np.float64)
        sweep[n_shards] = {
            "ingest": dict(
                ingest_row,
                edges_per_s=config.n_edges / ingest_row["deploy_s"],
                balance=float(rows.max() / rows.mean()),
            ),
            "serve": dict(
                serve_row, requests_per_s=len(targets) / serve_row["deploy_s"]
            ),
        }
        emit(
            f"shards={n_shards}  ingest {ingest_row['deploy_s']:.2f}s deploy "
            f"({ingest_row['wall_s']:.2f}s wall, "
            f"{sweep[n_shards]['ingest']['edges_per_s']:,.0f} edges/s)  "
            f"serve {serve_row['deploy_s']:.2f}s deploy "
            f"({sweep[n_shards]['serve']['requests_per_s']:,.0f} req/s)"
        )
    del ingested
    gc.collect()

    base = sweep[1]
    for n_shards in SHARD_COUNTS[1:]:
        row = sweep[n_shards]
        row["ingest"]["speedup"] = base["ingest"]["deploy_s"] / row["ingest"]["deploy_s"]
        row["serve"]["speedup"] = base["serve"]["deploy_s"] / row["serve"]["deploy_s"]
        emit(
            f"shards={n_shards}  ingest speedup {row['ingest']['speedup']:.2f}x  "
            f"serve speedup {row['serve']['speedup']:.2f}x  "
            f"(balance {row['ingest']['balance']:.2f})"
        )
    if pool_check is not None:
        emit(
            f"process pool: {pool_check['slice']} requests bit-equal through "
            f"{pool_check['workers']} forked workers "
            f"(shared memory: {pool_check['shared_memory']}, "
            f"{pool_check['segments']} segments)"
        )

    result = {
        "n_users": config.n_users,
        "n_edges": config.n_edges,
        "chunk_edges": config.chunk_edges,
        "n_requests": N_REQUESTS,
        "hops": HOPS,
        "fanout": FANOUT,
        "shard_counts": list(SHARD_COUNTS),
        "snapshot_digest": baseline_digest,
        "pool_check": pool_check,
        "sweep": {str(k): v for k, v in sweep.items()},
    }
    gates = [
        Gate("ingest_speedup_2_shards", sweep[2]["ingest"]["speedup"], 2.0),
        Gate("serve_speedup_2_shards", sweep[2]["serve"]["speedup"], 2.0),
        Gate("ingest_speedup_4_shards", sweep[4]["ingest"]["speedup"], 3.0),
        Gate("serve_speedup_4_shards", sweep[4]["serve"]["speedup"], 3.0),
    ] if set(SHARD_COUNTS) >= {1, 2, 4} else [
        Gate(
            f"ingest_speedup_{n}_shards", sweep[n]["ingest"]["speedup"], 1.0
        )
        for n in SHARD_COUNTS[1:]
    ]
    check_gates(gates, result, result_path)
    return result


@pytest.mark.slow
@pytest.mark.sharding
def test_sharding_perf():
    result = run_harness()
    assert result["gates_met"], (
        "sharding perf gates failed — see gate lines above "
        f"(gates: {result['gates']})"
    )


if __name__ == "__main__":
    outcome = run_harness()
    if not outcome["gates_met"]:
        emit("FAIL: sharding perf gates not met")
        sys.exit(1)
    emit("OK")
