"""E4 — Table V: effect of the SAO and CFO operators.

Paper (%): SAO(-) 80.1/72.6/76.2/74.0/82.4 — CFO(-) 80.7/73.1/76.7/74.5/82.7
— Both(-) 79.4/71.9/75.4/73.3/81.9 — HAG 81.3/74.8/77.9/76.0/83.1.

Shape: removing either operator costs performance; removing both costs the
most; the full HAG is best.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import METHODS
from repro.eval.reporting import format_table

from _shared import SCALE, SEEDS, emit, emit_header, once, repeat_over_splits

VARIANTS = ["HAG-SAO(-)", "HAG-CFO(-)", "HAG-Both(-)", "HAG"]


def run_table5():
    return {
        name: repeat_over_splits(name, METHODS[name], seeds=SEEDS)
        for name in VARIANTS
    }


def test_table5_operator_ablation(benchmark):
    results = once(benchmark, run_table5)
    rows = {name: result.row() for name, result in results.items()}
    emit_header(f"Table V — effect of SAO and CFO (%)  (scale={SCALE}, seeds={SEEDS})")
    emit(format_table(rows, columns=["Precision", "Recall", "F1", "F2", "AUC"]))
    emit()
    emit("Paper: SAO(-) 82.4 AUC, CFO(-) 82.7, Both(-) 81.9, HAG 83.1")

    auc = {name: results[name].report.auc for name in VARIANTS}
    f1 = {name: results[name].report.f1 for name in VARIANTS}
    combined = {name: auc[name] + f1[name] for name in VARIANTS}
    # Shape 1: the full model is competitive with every ablation on the
    # combined (F1 + AUC) criterion.  The paper's per-operator deltas are
    # 0.5–2.5 points; at laptop scale the split-level standard error is of
    # the same order, so the tolerance is 4 combined points.
    for variant in ("HAG-SAO(-)", "HAG-CFO(-)", "HAG-Both(-)"):
        assert combined["HAG"] >= combined[variant] - 0.04, (variant, combined)
    # Shape 2: the full model beats the mean of its ablations (the operators
    # help on average), and the double ablation does not win the table.
    ablation_mean = (
        combined["HAG-SAO(-)"] + combined["HAG-CFO(-)"] + combined["HAG-Both(-)"]
    ) / 3.0
    assert combined["HAG"] >= ablation_mean - 0.01, (combined, ablation_mean)
    assert max(combined, key=combined.get) != "HAG-Both(-)"
