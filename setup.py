"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` uses PEP 660 editable wheels, which require ``wheel``
for setuptools < 70; offline environments may lack it.  ``python setup.py
develop`` (or the .pth fallback below) provides the same editable install.
"""
from setuptools import setup

setup()
