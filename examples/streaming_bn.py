#!/usr/bin/env python3
"""Stream behavior logs through the BN server's window jobs.

Shows the time-evolving side of BN (Section V): logs arrive hour by hour,
periodic jobs close epochs and add inverse-weighted edges, the TTL sweep
prunes stale relations, and the graph around an emerging fraud ring can be
watched densifying in real time.
"""

from __future__ import annotations

import numpy as np

from repro import make_d1
from repro.datagen import DAY, HOUR
from repro.network import BNBuilder, FAST_WINDOWS
from repro.system import BNServer, InMemoryCache, LatencyModel


def main() -> None:
    dataset = make_d1(scale=0.15, seed=13)
    labels = dataset.labels
    fraudsters = {uid for uid, label in labels.items() if label}

    latency = LatencyModel(seed=0)
    builder = BNBuilder(windows=FAST_WINDOWS, ttl=60 * DAY)
    server = BNServer(builder, latency, cache=InMemoryCache(latency))

    logs = dataset.logs  # already time-sorted
    print(f"Streaming {len(logs)} logs over {dataset.end_time / DAY:.0f} days ...")

    # Feed the stream in 6-hour batches, running due jobs after each batch —
    # exactly how the production scheduler interleaves ingestion and edge
    # construction.
    step = 6 * HOUR
    cursor = 0
    report_every = 30 * DAY
    next_report = report_every
    for now in np.arange(step, dataset.end_time + step, step):
        batch = []
        while cursor < len(logs) and logs[cursor].timestamp <= now:
            batch.append(logs[cursor])
            cursor += 1
        server.ingest(batch)
        server.run_due_jobs(float(now))
        if now >= next_report:
            bn = server.bn
            fraud_edges = sum(
                1
                for u, v, _t, _rec in bn.iter_edges()
                if u in fraudsters and v in fraudsters
            )
            print(
                f"  day {now / DAY:5.0f}:  nodes={bn.num_nodes():5d}"
                f"  typed edges={bn.num_edges():6d}"
                f"  fraud-fraud edges={fraud_edges:5d}"
                f"  jobs run={server.jobs_run}"
            )
            next_report += report_every

    bn = server.bn
    print("\nFinal network:")
    print(f"  {bn.num_nodes()} nodes, {bn.num_edges()} typed edges")
    print(f"  edge types: {sorted(t.value for t in bn.edge_types())}")

    # The hierarchical windows gave short-interval co-occurrences more
    # weight: compare mean fraud-fraud vs normal-normal edge weight.
    fraud_weights, normal_weights = [], []
    for u, v, _t, record in bn.iter_edges():
        if u in fraudsters and v in fraudsters:
            fraud_weights.append(record.weight)
        elif u not in fraudsters and v not in fraudsters:
            normal_weights.append(record.weight)
    if fraud_weights:
        print(
            f"  mean edge weight: fraud-fraud {np.mean(fraud_weights):.2f}"
            f" vs normal-normal {np.mean(normal_weights):.2f}"
        )
    else:
        print(
            "  no fraud-fraud edges remain: every ring finished its burst more"
            " than 60 days before the end, so the TTL sweep pruned them —"
            " exactly the bounded-growth behavior of Section V"
        )

    # Sample the neighbourhood of the most recently active fraudster from
    # the live graph (older rings have been TTL-pruned).
    last_app: dict[int, float] = {}
    for txn in dataset.transactions:
        if txn.uid in fraudsters:
            last_app[txn.uid] = max(last_app.get(txn.uid, 0.0), txn.created_at)
    target = max(last_app, key=last_app.get)
    subgraph, seconds = server.sample(target, now=dataset.end_time, allowed=set(labels))
    fraud_share = np.mean([v in fraudsters for v in subgraph.nodes])
    print(
        f"  live sample around fraudster {target}"
        f" (applied day {last_app[target] / DAY:.0f}): {subgraph.num_nodes} nodes,"
        f" {100 * fraud_share:.0f}% fraudulent, served in {1000 * seconds:.0f} ms"
        f" (simulated)"
    )


if __name__ == "__main__":
    main()
