#!/usr/bin/env python3
"""Concept drift and daily retraining with the model manager.

Demonstrates the arms race the paper's introduction describes: fraud crews
rotate hardware and improve identity packaging, frozen rule-based defenses
decay, and Turbo stays effective because HAG is "retrained offline on a
daily basis" (Section II-C) and hot-swapped through the model manager —
with rollback if a new model regresses.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import Blocklist
from repro.core import HAG, TrainConfig, prepare_aggregators, train_node_classifier
from repro.datagen import GeneratorConfig, generate_drift_scenario
from repro.eval import prepare_experiment, roc_auc_score
from repro.eval.metrics import classification_report
from repro.network import FAST_WINDOWS
from repro.system import ModelManager


def train_hag_on(data, seed: int = 0) -> tuple[HAG, float]:
    model = HAG(
        data.features.shape[1],
        n_types=len(data.edge_types),
        rng=np.random.default_rng(seed),
        hidden=(32, 16),
        att_dim=16,
        cfo_att_dim=16,
        cfo_out_dim=4,
        mlp_hidden=(8,),
    )
    aggregators = prepare_aggregators([data.adjacencies[t] for t in data.edge_types])
    result = train_node_classifier(
        model,
        lambda x: model.forward(x, aggregators),
        data.features,
        data.labels,
        data.train_idx,
        data.val_idx,
        TrainConfig(
            epochs=60, lr=5e-3, patience=15, seed=seed, pos_weight=data.pos_weight() ** 2
        ),
    )
    probs = model.predict_proba(data.features, aggregators)
    report = classification_report(
        data.labels[data.test_idx], probs[data.test_idx]
    )
    return model, report.auc


def main() -> None:
    print("Generating a 2-period drift scenario ...")
    scenario = generate_drift_scenario(
        GeneratorConfig(n_users=1000, fraud_rate=0.1), n_periods=2, seed=9
    )

    # A frozen block-list, fit once on the training period.
    train_labels = scenario.train.labels
    blocklist = Blocklist().fit(
        scenario.train.logs, {u for u, l in train_labels.items() if l}
    )
    print(f"Block-list learned {len(blocklist)} burned identifiers.")

    # The model manager holds one HAG version per (re)training day.
    manager: ModelManager | None = None
    previous_auc = -1.0
    for period in scenario.periods:
        dataset = period.dataset
        print(f"\n== period {period.index} (drift level {period.drift_level:.2f}) ==")
        data = prepare_experiment(dataset, windows=FAST_WINDOWS, seed=0)

        # Frozen defense: score every user by block-list hits.
        labels = dataset.labels
        uids = sorted(labels)
        bl_scores = blocklist.predict_proba(dataset.logs, uids)
        y = np.asarray([labels[u] for u in uids])
        bl_auc = roc_auc_score(y, bl_scores)
        print(f"  frozen block-list AUC: {bl_auc:.3f}")

        # Adaptive defense: retrain HAG on this period's labeled window and
        # register it; roll back if it regresses vs the active version.
        model, auc = train_hag_on(data, seed=period.index)
        print(f"  retrained HAG AUC:     {auc:.3f}")
        if manager is None:
            manager = ModelManager(
                lambda: HAG(
                    data.features.shape[1],
                    n_types=len(data.edge_types),
                    rng=np.random.default_rng(0),
                    hidden=(32, 16),
                    att_dim=16,
                    cfo_att_dim=16,
                    cfo_out_dim=4,
                    mlp_hidden=(8,),
                )
            )
        version = manager.register(
            model.state_dict(),
            trained_at=float(period.index),
            metrics={"auc": auc},
        )
        if auc < previous_auc - 0.05:
            restored = manager.rollback()
            print(
                f"  new version v{version} regressed"
                f" ({auc:.3f} < {previous_auc:.3f}) -> rolled back to v{restored}"
            )
        else:
            print(f"  activated model version v{version}")
            previous_auc = auc

    print("\nRegistered model versions:")
    assert manager is not None
    for version in manager.versions():
        active = " (active)" if version.version == manager.active_version else ""
        print(
            f"  v{version.version}: trained_at={version.trained_at:.0f}"
            f" auc={version.metrics.get('auc', float('nan')):.3f}{active}"
        )


if __name__ == "__main__":
    main()
