#!/usr/bin/env python3
"""Investigate a fraud ring: empirical patterns + influence analysis.

Walks through the analyses of Section III-B and the Fig. 9 case study on a
synthetic dataset: find the ring with the most members, examine its temporal
and topological footprint in BN, train a small HAG, and compute the
influence distribution across the ring's computation subgraph.
"""

from __future__ import annotations

import numpy as np

from repro import HAG, make_d1, prepare_aggregators, prepare_experiment
from repro.core import TrainConfig, train_node_classifier
from repro.core.influence import influence_distribution
from repro.datagen import DAY
from repro.eval.empirical import hop_fraud_ratios, time_burst_summary
from repro.network import FAST_WINDOWS, computation_subgraph


def main() -> None:
    dataset = make_d1(scale=0.25, seed=21)
    data = prepare_experiment(dataset, windows=FAST_WINDOWS, seed=0)
    labels = dataset.labels

    # ------------------------------------------------------------------
    # 1. Empirical patterns (Section III-B)
    # ------------------------------------------------------------------
    fraud_burst = time_burst_summary(dataset, fraud=True)
    normal_burst = time_burst_summary(dataset, fraud=False)
    print("Time-burst pattern (Fig. 4a-b):")
    print(
        f"  fraudsters: {100 * fraud_burst.near_application_fraction:.0f}% of logs"
        f" within 3 days of application (std {fraud_burst.mean_std_days:.1f} d)"
    )
    print(
        f"  normal:     {100 * normal_burst.near_application_fraction:.0f}%"
        f" (std {normal_burst.mean_std_days:.1f} d)"
    )

    fraud_hops = hop_fraud_ratios(data.bn, labels, fraud=True, max_hops=3)
    normal_hops = hop_fraud_ratios(data.bn, labels, fraud=False, max_hops=3)
    print("Homophily (Fig. 4d): fraud ratio around fraud vs normal seeds")
    for hop, (f, n) in enumerate(zip(fraud_hops, normal_hops), start=1):
        print(f"  hop {hop}:  fraud-seeded {f:.3f}   normal-seeded {n:.3f}")

    # ------------------------------------------------------------------
    # 2. Pick the biggest ring and inspect its footprint
    # ------------------------------------------------------------------
    rings: dict[int, list[int]] = {}
    for user in dataset.users:
        if user.ring_id is not None:
            rings.setdefault(user.ring_id, []).append(user.uid)
    ring_id, members = max(rings.items(), key=lambda kv: len(kv[1]))
    apps = [
        t.created_at
        for t in dataset.transactions
        if t.uid in set(members)
    ]
    print(
        f"\nLargest ring #{ring_id}: {len(members)} members, applications span"
        f" {(max(apps) - min(apps)) / DAY:.1f} days"
    )
    member = members[0]
    subgraph = computation_subgraph(
        data.bn, member, hops=2, fanout=None, allowed=set(data.nodes),
        edge_types=data.edge_types,
    )
    in_ring = sum(1 for v in subgraph.nodes if v in set(members))
    print(
        f"  computation subgraph of member {member}: {subgraph.num_nodes} nodes,"
        f" {in_ring} of them co-ring"
    )

    # ------------------------------------------------------------------
    # 3. Train a small HAG and compute influence (Fig. 9)
    # ------------------------------------------------------------------
    print("\nTraining HAG for the influence case study ...")
    model = HAG(
        data.features.shape[1],
        n_types=len(data.edge_types),
        rng=np.random.default_rng(0),
        hidden=(16, 8),
        att_dim=8,
        cfo_att_dim=8,
        cfo_out_dim=4,
        mlp_hidden=(8,),
    )
    aggregators = prepare_aggregators([data.adjacencies[t] for t in data.edge_types])
    train_node_classifier(
        model,
        lambda x: model.forward(x, aggregators),
        data.features,
        data.labels,
        data.train_idx,
        data.val_idx,
        TrainConfig(epochs=40, lr=5e-3, patience=15, pos_weight=data.pos_weight() ** 2),
    )

    index = {uid: i for i, uid in enumerate(data.nodes)}
    sub_features = data.features[[index[v] for v in subgraph.nodes]]
    sub_aggs = prepare_aggregators([subgraph.adjacency[t] for t in data.edge_types])
    node_pos = {uid: i for i, uid in enumerate(subgraph.nodes)}
    ring_positions = [node_pos[v] for v in subgraph.nodes if v in set(members)]

    from repro.nn import Tensor

    forward = lambda x: model.embeddings(x, sub_aggs)
    dist = influence_distribution(forward, sub_features, node=node_pos[member])
    ring_influence = dist[ring_positions].sum()
    print(
        f"Influence on member {member}'s embedding: {100 * ring_influence:.0f}% comes"
        f" from co-ring nodes ({len(ring_positions)}/{subgraph.num_nodes} of the subgraph)"
    )
    top = np.argsort(-dist)[:5]
    print("  top influencers (node, share, is_ring):")
    for position in top:
        uid = subgraph.nodes[position]
        print(
            f"    {uid:>6}  {dist[position]:.3f}  {uid in set(members)}"
        )


if __name__ == "__main__":
    main()
