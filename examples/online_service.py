#!/usr/bin/env python3
"""Run the full Turbo online system and replay an application stream.

Demonstrates the Fig. 2 architecture end-to-end: deploy the trained system
(BN server + feature module + prediction server behind a simulated MySQL +
Redis substrate), serve real-time detection requests with per-module latency
accounting, compare cached vs uncached deployments, and finish with the
Section VI-E A/B test against the rule-based scorecard.
"""

from __future__ import annotations

import numpy as np

from repro import make_d1
from repro.baselines import default_scorecard
from repro.network import FAST_WINDOWS
from repro.system import TurboConfig, deploy_turbo, run_ab_test


def percentile_line(name: str, millis: np.ndarray) -> str:
    return (
        f"  {name:<10} mean={millis.mean():6.0f}ms  p50={np.percentile(millis, 50):6.0f}ms"
        f"  p99={np.percentile(millis, 99):6.0f}ms"
    )


def main() -> None:
    dataset = make_d1(scale=0.25, seed=5)
    print("Deploying Turbo (training HAG + standing up servers) ...")
    turbo, data = deploy_turbo(
        dataset,
        TurboConfig(windows=FAST_WINDOWS, train_epochs=40, hidden=(32, 16), seed=0),
    )

    # Serve detection requests for the held-out users' applications.
    test_uids = {data.nodes[i] for i in data.test_idx}
    latest = {t.uid: t for t in data.feature_manager.latest_transactions()}
    requests = [latest[uid] for uid in sorted(test_uids)][:150]

    print(f"Serving {len(requests)} real-time detection requests ...")
    for txn in requests:
        turbo.handle_request(txn, now=txn.audit_at)

    responses = turbo.responses
    sampling = np.array([r.breakdown.sampling for r in responses]) * 1000
    features = np.array([r.breakdown.features for r in responses]) * 1000
    prediction = np.array([r.breakdown.prediction for r in responses]) * 1000
    total = sampling + features + prediction
    print("Latency per module (cached deployment, cf. Fig. 8a):")
    print(percentile_line("sampling", sampling))
    print(percentile_line("features", features))
    print(percentile_line("predict", prediction))
    print(percentile_line("total", total))

    # The same stream without the Redis-style cache (Section V's 6.8 s path).
    print("\nRedeploying without the in-memory cache ...")
    slow, _ = deploy_turbo(
        dataset,
        TurboConfig(
            windows=FAST_WINDOWS,
            use_cache=False,
            train_epochs=40,
            hidden=(32, 16),
            seed=0,
        ),
        data=data,
    )
    for txn in requests[:60]:
        slow.handle_request(txn, now=txn.audit_at)
    slow_total = np.array([r.breakdown.total for r in slow.responses]) * 1000
    print(percentile_line("total", slow_total))
    print(
        f"  cache reduces the mean request by"
        f" {100 * (1 - total.mean() / slow_total.mean()):.0f}%"
    )

    # Online A/B test: scorecard alone vs scorecard + Turbo (threshold 0.85).
    print("\nOnline A/B test (Section VI-E):")
    scorecard = default_scorecard(decision_threshold=0.6)
    txns = [t for t in dataset.transactions if t.uid in test_uids]
    result = run_ab_test(turbo, scorecard, dataset, txns, np.random.default_rng(0))
    print(
        f"  baseline group: {result.baseline_accepted} accepted,"
        f" fraud ratio {100 * result.baseline_fraud_ratio:.2f}%"
    )
    print(
        f"  test group:     {result.test_accepted} accepted,"
        f" fraud ratio {100 * result.test_fraud_ratio:.2f}%"
    )
    print(
        f"  fraud-ratio reduction {100 * result.fraud_ratio_reduction:.1f}%"
        f"  (Turbo online precision {100 * result.online_precision:.0f}%,"
        f" recall {100 * result.online_recall:.0f}%)"
    )


if __name__ == "__main__":
    main()
