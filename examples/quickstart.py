#!/usr/bin/env python3
"""Quickstart: generate data, build BN, train HAG, evaluate, predict online.

Runs in about a minute on a laptop::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    computation_subgraph,
    get_method,
    make_d1,
    prepare_experiment,
    run_method,
)
from repro.network import FAST_WINDOWS


def main() -> None:
    # 1. A synthetic deposit-free leasing platform (Jimi-data substitute):
    #    normal users, households, fraud rings, public resources.
    print("Generating synthetic leasing platform data ...")
    dataset = make_d1(scale=0.25, seed=7)
    labels = dataset.labels
    print(
        f"  users={len(dataset.users)}  transactions={len(dataset.transactions)}"
        f"  behavior logs={len(dataset.logs)}  fraudsters={sum(labels.values())}"
    )

    # 2. Build the Behavior Network (Algorithm 1) + features + UID split.
    print("Building BN and features ...")
    data = prepare_experiment(dataset, windows=FAST_WINDOWS, seed=0)
    print(
        f"  BN: {data.bn.num_nodes()} nodes, {data.bn.num_edges()} typed edges,"
        f" {len(data.bn.edge_types())} edge types"
    )

    # 3. Train HAG and a couple of baselines; evaluate on held-out users.
    for name in ("LR", "GBDT", "HAG"):
        report, _scores = run_method(get_method(name), data, seed=0)
        row = report.as_percentages()
        print(
            f"  {name:<6} precision={row['Precision']:5.1f}  recall={row['Recall']:5.1f}"
            f"  F1={row['F1']:5.1f}  AUC={row['AUC']:5.1f}"
        )

    # 4. Inductive prediction: score one user from their sampled
    #    computation subgraph, exactly like the online BN server does.
    target = data.nodes[int(data.test_idx[0])]
    subgraph = computation_subgraph(
        data.bn, target, hops=2, fanout=25, allowed=set(data.nodes),
        edge_types=data.edge_types,
    )
    print(
        f"Sampled computation subgraph for user {target}: "
        f"{subgraph.num_nodes} nodes"
    )


if __name__ == "__main__":
    main()
